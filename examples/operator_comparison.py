#!/usr/bin/env python3
"""Compare the VOS statistical operator with design-time approximate adders.

The paper's Section II argues that voltage over-scaling gives a *dynamic*
energy/accuracy knob, whereas design-time approximate adders fix their error
profile when the netlist is built.  This example puts both side by side on an
8-bit adder:

* three operating points of ONE VOS-characterized RCA (runtime knob), and
* three configurations each of the LSB-truncated, lower-OR, speculative and
  pruned static adders (a different netlist per point),

reporting BER and mean-squared error against the exact sum for identical
input data.

Run with ``python examples/operator_comparison.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    ApproximateAdderModel,
    CharacterizationFlow,
    PatternConfig,
    bit_error_rate,
    calibrate_probability_table,
    mean_squared_error,
)
from repro.baselines import BASELINE_ADDERS, build_baseline
from repro.simulation.patterns import generate_patterns

WIDTH = 8


def main() -> None:
    flow = CharacterizationFlow.for_benchmark("rca", WIDTH)
    characterization = flow.run(
        pattern=PatternConfig(n_vectors=3000, width=WIDTH, kind="carry_balanced")
    )
    faulty = sorted(
        (e for e in characterization.results if e.ber > 0.01), key=lambda e: e.ber
    )
    operating_points = [faulty[0], faulty[len(faulty) // 2], faulty[-1]]

    test_in1, test_in2 = generate_patterns(
        PatternConfig(n_vectors=4000, width=WIDTH, seed=123)
    )
    exact = test_in1 + test_in2

    print("== One VOS adder, three runtime operating points ==")
    print(f"{'operating point':<30}{'saving %':>10}{'BER %':>8}{'MSE':>10}")
    for index, entry in enumerate(operating_points):
        measurement = characterization.measurement_for(entry.triad)
        table = calibrate_probability_table(
            measurement.in1, measurement.in2, measurement.latched_words, WIDTH
        ).table
        model = ApproximateAdderModel(WIDTH, table, seed=index)
        output = model.add(test_in1, test_in2)
        print(
            f"{entry.label():<30}"
            f"{characterization.energy_efficiency_of(entry) * 100:>10.1f}"
            f"{bit_error_rate(exact, output, WIDTH + 1) * 100:>8.2f}"
            f"{mean_squared_error(exact, output):>10.1f}"
        )

    print("\n== Design-time approximate adders (one netlist per row) ==")
    print(f"{'configuration':<30}{'BER %':>8}{'MSE':>10}")
    for name in sorted(BASELINE_ADDERS):
        for parameter in (2, 3, 4):
            adder = build_baseline(name, WIDTH, parameter)
            output = adder.add(test_in1, test_in2)
            print(
                f"{f'{name} (k={parameter})':<30}"
                f"{bit_error_rate(exact, output, WIDTH + 1) * 100:>8.2f}"
                f"{mean_squared_error(exact, output):>10.1f}"
            )

    print(
        "\nThe VOS operator moves across its error range by changing the triad at"
        "\nrun time; the static designs would each need a different circuit.  Its"
        "\nerrors are rare but value-heavy (carry chains cut near the MSBs), which"
        "\nis why the paper models them with the carry-chain probability table."
    )


if __name__ == "__main__":
    main()
