#!/usr/bin/env python3
"""Error-resilient image filtering on VOS approximate adders.

Characterizes a 16-bit ripple-carry adder, trains approximate-adder models at
three different energy/accuracy operating points, and runs a box blur and a
Sobel edge detector on a synthetic image with each model.  The output shows
how circuit-level BER translates into application-level PSNR -- the trade the
paper's "error-resilient applications" argument relies on.

Run with ``python examples/image_filtering.py``.
"""

from __future__ import annotations

from repro import (
    ApproximateAdderModel,
    CharacterizationFlow,
    PatternConfig,
    calibrate_probability_table,
)
from repro.apps import box_blur, psnr_db, sobel_magnitude, synthetic_gradient_image


def main() -> None:
    width = 16
    flow = CharacterizationFlow.for_benchmark("rca", width)
    characterization = flow.run(
        pattern=PatternConfig(n_vectors=2000, width=width, kind="carry_balanced")
    )

    # Pick three operating points: error free, mild errors, aggressive.
    error_free = max(
        (e for e in characterization.results if e.ber == 0.0),
        key=characterization.energy_efficiency_of,
    )
    mild = max(
        (e for e in characterization.results if 0.0 < e.ber <= 0.05),
        key=characterization.energy_efficiency_of,
    )
    aggressive = max(
        (e for e in characterization.results if 0.05 < e.ber <= 0.25),
        key=characterization.energy_efficiency_of,
        default=mild,
    )

    image = synthetic_gradient_image(24, 24)
    exact_blur = box_blur(image)
    exact_edges = sobel_magnitude(image)

    print("== Image filtering quality vs operating triad (16-bit RCA) ==")
    print(f"{'triad':<26}{'BER %':>8}{'saving %':>10}{'blur PSNR dB':>14}{'sobel PSNR dB':>15}")
    print(f"{error_free.label():<26}{0.0:>8.2f}"
          f"{characterization.energy_efficiency_of(error_free) * 100:>10.1f}"
          f"{'inf':>14}{'inf':>15}")

    for entry in (mild, aggressive):
        measurement = characterization.measurement_for(entry.triad)
        calibration = calibrate_probability_table(
            measurement.in1, measurement.in2, measurement.latched_words, width, metric="mse"
        )
        model = ApproximateAdderModel(width=width, table=calibration.table, seed=11)
        approx_blur = box_blur(image, adder=model)
        model.reseed(12)
        approx_edges = sobel_magnitude(image, adder=model)
        print(
            f"{entry.label():<26}{entry.ber_percent:>8.2f}"
            f"{characterization.energy_efficiency_of(entry) * 100:>10.1f}"
            f"{psnr_db(exact_blur, approx_blur):>14.1f}"
            f"{psnr_db(exact_edges, approx_edges):>15.1f}"
        )

    print("\nHigher BER buys more energy saving at the cost of PSNR; the blur")
    print("degrades gracefully because accumulation errors average out, while")
    print("the edge detector is more sensitive (differences amplify errors).")


if __name__ == "__main__":
    main()
