#!/usr/bin/env python3
"""Fixed-point FIR filtering with a VOS approximate accumulator.

A low-pass FIR filter processes a noisy two-tone signal.  The accumulations
run either exactly or through approximate-adder models trained at two VOS
operating points of a 16-bit Brent-Kung adder.  The script reports the output
SNR of the filtered signal for each operating point, next to the energy
saving the corresponding triad provides.

Run with ``python examples/fir_filter.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    ApproximateAdderModel,
    CharacterizationFlow,
    PatternConfig,
    calibrate_probability_table,
)
from repro.apps import FirFilter, low_pass_coefficients, output_snr_db


def make_test_signal(n_samples: int = 256, seed: int = 3) -> np.ndarray:
    """Two tones (one in the pass band, one in the stop band) plus noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples)
    signal = (
        60.0 * np.sin(2 * np.pi * 0.05 * t)
        + 40.0 * np.sin(2 * np.pi * 0.45 * t)
        + rng.normal(0.0, 4.0, n_samples)
    )
    return np.clip(np.round(signal + 128), 0, 255).astype(np.int64)


def main() -> None:
    width = 16
    flow = CharacterizationFlow.for_benchmark("bka", width)
    characterization = flow.run(
        pattern=PatternConfig(n_vectors=2000, width=width, kind="carry_balanced")
    )
    mild = max(
        (e for e in characterization.results if 0.0 < e.ber <= 0.05),
        key=characterization.energy_efficiency_of,
    )
    aggressive = max(
        (e for e in characterization.results if 0.05 < e.ber <= 0.25),
        key=characterization.energy_efficiency_of,
        default=mild,
    )

    coefficients = low_pass_coefficients(taps=9, scale=16)
    samples = make_test_signal()
    exact_filter = FirFilter(coefficients)
    exact_output = exact_filter.filter(samples)

    print("== FIR filtering on a 16-bit Brent-Kung VOS adder ==")
    print(f"{'operating point':<28}{'BER %':>8}{'saving %':>10}{'output SNR dB':>15}")
    print(f"{'exact (nominal triad)':<28}{0.0:>8.2f}{0.0:>10.1f}{'inf':>15}")
    for entry in (mild, aggressive):
        measurement = characterization.measurement_for(entry.triad)
        calibration = calibrate_probability_table(
            measurement.in1, measurement.in2, measurement.latched_words, width, metric="mse"
        )
        model = ApproximateAdderModel(width=width, table=calibration.table, seed=5)
        approx_filter = FirFilter(coefficients, adder=model)
        approx_output = approx_filter.filter(samples)
        snr = output_snr_db(exact_output, approx_output)
        print(
            f"{entry.label():<28}{entry.ber_percent:>8.2f}"
            f"{characterization.energy_efficiency_of(entry) * 100:>10.1f}{snr:>15.1f}"
        )


if __name__ == "__main__":
    main()
