#!/usr/bin/env python3
"""Dynamic speculation: runtime triad switching under an error margin.

The paper proposes switching the operating triad at run time based on a
monitored error rate and a user-defined tolerance.  This example:

1. characterizes an 8-bit RCA over the matched Table III grid,
2. builds a :class:`DynamicSpeculationController` with a 10% BER margin,
3. replays a workload whose observed error rate drifts (emulating data and
   temperature dependence), and
4. prints every triad switch together with the energy saving of the newly
   selected triad.

Run with ``python examples/dynamic_speculation.py``.
"""

from __future__ import annotations

import numpy as np

from repro import CharacterizationFlow, DynamicSpeculationController, PatternConfig


def drifting_ber_trace(controller_ber: float, n_windows: int = 60, seed: int = 9) -> list[float]:
    """Synthetic per-window BER observations drifting around the offline value."""
    rng = np.random.default_rng(seed)
    drift = np.concatenate(
        [
            np.linspace(0.0, 0.06, n_windows // 3),
            np.linspace(0.06, -0.02, n_windows // 3),
            np.zeros(n_windows - 2 * (n_windows // 3)),
        ]
    )
    noise = rng.normal(0.0, 0.01, n_windows)
    return [float(np.clip(controller_ber + d + n, 0.0, 1.0)) for d, n in zip(drift, noise)]


def main() -> None:
    flow = CharacterizationFlow.for_benchmark("rca", 8)
    characterization = flow.run(pattern=PatternConfig(n_vectors=2000, width=8))

    controller = DynamicSpeculationController(characterization, error_margin=0.10)
    accurate = controller.accurate_mode()
    approximate = controller.approximate_mode()
    print("== Dynamic speculation on an 8-bit RCA, 10% BER margin ==")
    print(
        f"accurate mode   : {accurate.label():<24} BER {accurate.ber_percent:5.2f}% "
        f"saving {characterization.energy_efficiency_of(accurate) * 100:5.1f}%"
    )
    print(
        f"approximate mode: {approximate.label():<24} BER {approximate.ber_percent:5.2f}% "
        f"saving {characterization.energy_efficiency_of(approximate) * 100:5.1f}%"
    )

    print("\nRuntime trace (only windows with a triad switch are shown):")
    trace = drifting_ber_trace(controller.current_entry().ber)
    total_saving = 0.0
    for window, observed in enumerate(trace):
        decision = controller.observe(observed)
        total_saving += decision.energy_efficiency
        if decision.switched:
            print(
                f"window {window:3d}: observed BER {observed * 100:5.2f}% -> "
                f"switch to {decision.triad.label():<24} "
                f"(saving {decision.energy_efficiency * 100:5.1f}%)"
            )
    print(
        f"\naverage energy saving over the trace: {total_saving / len(trace) * 100:.1f}% "
        f"(margin never exceeded: {controller.estimated_ber <= 0.10 + 1e-9})"
    )


if __name__ == "__main__":
    main()
