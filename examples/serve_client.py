"""Submit a job to a running ``repro serve`` instance and print the result.

Quick start (terminal 1, then terminal 2)::

    PYTHONPATH=src python -m repro.cli serve --port 8765 --cache-dir /tmp/store
    python examples/serve_client.py --port 8765

The client is stdlib-only (``urllib``): it POSTs one job document to
``/v1/jobs``, follows the progress stream, polls ``/v1/jobs/<id>`` until
the job is terminal, and prints the batch accounting plus the rendered
result document.  The final accounting line always contains
``"N simulated"`` -- a warm resubmission against the same store must print
``0 simulated`` (or be served from the hot tier without running at all),
which is exactly what the CI smoke job asserts.

By default it submits a small ``characterize`` job; pass ``--job-file``
to submit any JSON job document ``repro batch`` would accept.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def _request(url: str, data: bytes | None = None, client: str = "example") -> dict:
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json", "X-Client": client},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", "replace").strip()
        raise SystemExit(f"{url} -> HTTP {error.code}: {detail}")
    except urllib.error.URLError as error:
        raise SystemExit(f"cannot reach {url}: {error.reason}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--job-file",
        default=None,
        help="JSON file with one job document (default: a small rca8 "
        "characterization)",
    )
    parser.add_argument(
        "--client", default="example", help="client identity (X-Client header)"
    )
    parser.add_argument(
        "--timeout-s", type=float, default=300.0, help="polling budget"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the rendered result body"
    )
    args = parser.parse_args(argv)

    if args.job_file:
        with open(args.job_file, encoding="utf-8") as handle:
            job = json.load(handle)
    else:
        job = {
            "type": "characterize",
            "operator": "rca8",
            "pattern": {"vectors": 2000},
        }

    base = f"http://{args.host}:{args.port}"
    submitted = _request(
        f"{base}/v1/jobs", json.dumps(job, sort_keys=True).encode("utf-8"), args.client
    )
    job_id = submitted["id"]
    print(f"submitted {job.get('type', '?')} as {job_id} (hot={submitted['hot']})")

    deadline = time.monotonic() + args.timeout_s
    while True:
        status = _request(f"{base}/v1/jobs/{job_id}", client=args.client)
        if status["status"] in ("done", "failed"):
            break
        if time.monotonic() > deadline:
            raise SystemExit(f"job {job_id} still {status['status']} after budget")
        time.sleep(0.2)

    if status["status"] == "failed":
        raise SystemExit(f"job {job_id} failed: {status.get('error')}")

    batch = status.get("batch")
    if batch is not None:
        print(
            f"window: {batch['jobs']} job(s), {batch['planned_units']} planned, "
            f"{batch['deduped_units']} deduped, {batch['cache_hits']} warm, "
            f"{batch['simulated_units']} simulated"
        )
    else:
        # Served from the hot result tier: nothing ran anywhere.
        print("window: hot result tier, 0 simulated")
    if not args.quiet:
        print(json.dumps(status["result"], indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
