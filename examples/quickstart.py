#!/usr/bin/env python3
"""Quickstart: characterize an 8-bit ripple-carry adder under VOS.

The script walks the three steps of the paper's flow:

1. build and synthesize the adder (Table II style report),
2. characterize it over the matched Table III triad grid (BER and energy per
   operation per triad, the data behind Fig. 8a),
3. train the statistical model on one approximate triad (Algorithm 1) and use
   it as a drop-in approximate adder.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    ApproximateAdderModel,
    CharacterizationFlow,
    PatternConfig,
    bit_error_rate,
    calibrate_probability_table,
    synthesize,
)
from repro.circuits import build_adder


def main() -> None:
    # 1. Build and synthesize the adder.
    adder = build_adder("rca", 8)
    report = synthesize(adder.netlist)
    print("== Synthesis (Table II style) ==")
    print(
        f"{report.design_name}: {report.gate_count} gates, "
        f"{report.area_um2:.1f} um^2, {report.total_power_uw:.1f} uW, "
        f"critical path {report.critical_path_ns:.3f} ns"
    )

    # 2. Characterize over the matched Table III triad grid.
    flow = CharacterizationFlow(adder)
    characterization = flow.run(pattern=PatternConfig(n_vectors=2000, width=8))
    print("\n== Characterization (Fig. 8a style, best 10 triads by energy) ==")
    print(f"{'triad':<24}{'BER %':>8}{'E/op pJ':>10}{'saving %':>10}")
    for entry in characterization.sorted_by_energy()[-10:]:
        saving = characterization.energy_efficiency_of(entry) * 100
        print(
            f"{entry.label():<24}{entry.ber_percent:>8.2f}"
            f"{entry.energy_per_operation_pj:>10.4f}{saving:>10.1f}"
        )

    # 3. Train the statistical model on the most aggressive triad within 10% BER.
    candidates = [e for e in characterization.results if 0.0 < e.ber <= 0.10]
    target = max(candidates, key=characterization.energy_efficiency_of)
    measurement = characterization.measurement_for(target.triad)
    calibration = calibrate_probability_table(
        measurement.in1, measurement.in2, measurement.latched_words, width=8, metric="mse"
    )
    model = ApproximateAdderModel(width=8, table=calibration.table, seed=7)

    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, 5000)
    b = rng.integers(0, 256, 5000)
    approx = model.add(a, b)
    exact = a + b
    print("\n== Statistical model trained on", target.label(), "==")
    print(f"hardware BER at that triad : {target.ber_percent:.2f} %")
    print(f"model BER vs exact         : {bit_error_rate(exact, approx, 9) * 100:.2f} %")
    print(f"energy saving at that triad: {characterization.energy_efficiency_of(target) * 100:.1f} %")


if __name__ == "__main__":
    main()
