"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so editable installs work on environments
whose setuptools predates the bundled ``bdist_wheel`` command (no ``wheel``
package available offline).
"""

from setuptools import setup

# numpy >= 2.0: the fault simulator counts error bits with np.bitwise_count,
# which NumPy added in 2.0.
setup(install_requires=["numpy>=2.0"])
