"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so editable installs work on environments
whose setuptools predates the bundled ``bdist_wheel`` command (no ``wheel``
package available offline).
"""

from setuptools import setup

setup()
