"""Design-space exploration: successive halving vs exhaustive search.

Beyond the paper: the exploration subsystem answers "which operator
configuration is energy-optimal under a BER budget" over the Table III
subspace (RCA/BKA at 8 and 16 bits, each on its matched 43-triad grid).
The claim demonstrated here is the subsystem's acceptance criterion:

* successive halving screens every candidate at reduced stimulus and
  promotes only the candidates near the screening Pareto frontier, yet
* its final frontier is *identical* to the exhaustive strategy's (the
  promoted candidates' paper-fidelity payloads come bit-identical out of
  the shared result store), while
* it runs measurably fewer paper-fidelity candidate evaluations.

The 16-bit adders burn roughly twice the energy of their 8-bit siblings at
comparable BER, so screening prunes them and the full-fidelity stage only
re-simulates the 8-bit candidates.
"""

from __future__ import annotations

from _bench_utils import Metric, bench_vectors, write_metrics, write_output
from conftest import bench_jobs, bench_store

from repro.analysis.figures import frontier_series, render_frontier
from repro.analysis.tables import ranked_configurations, render_ranked_configurations
from repro.explore import CandidateEvaluator, DesignSpace, run_search
from repro.explore.search import default_screen_vectors

#: Stimulus size below which the two quantitative claims are not asserted:
#: at a few hundred vectors the screening BERs are noisy enough that the
#: promotion margin can legitimately promote every candidate (no pruning) or
#: screen out a true frontier contributor (frontier mismatch).  What holds
#: at any size -- and is always asserted -- is that the *promoted*
#: candidates' paper-fidelity payloads are bit-identical to the exhaustive
#: strategy's (they come from the same store keys), i.e. the halving
#: frontier never contains a point the exhaustive frontier contradicts.
QUANTITATIVE_VECTORS = 2000


def _run(strategy: str, space: DesignSpace, full_vectors: int):
    evaluator = CandidateEvaluator(
        space, jobs=bench_jobs(), store=bench_store(), seed=2017
    )
    result = run_search(
        space, strategy, evaluator, seed=2017, full_vectors=full_vectors
    )
    return result, evaluator


def test_successive_halving_matches_exhaustive(benchmark):
    """Frontier parity + pruning on the Table III subspace; time the search."""
    space = DesignSpace.table3_subspace()
    full_vectors = bench_vectors()

    exhaustive, _ = _run("exhaustive", space, full_vectors)
    halving, halving_evaluator = _run("successive-halving", space, full_vectors)

    # Always true: every promoted candidate's points were answered from the
    # same store keys the exhaustive pass wrote, so the halving frontier can
    # never disagree with the exhaustive evaluation of those candidates.
    exhaustive_points = {
        point for point in exhaustive.frontier if point.operator_name
        in set(halving.evaluated_candidates)
    }
    assert exhaustive_points.issubset(set(halving.frontier.points))
    assert halving.screening_evaluations == len(space)
    assert halving.full_evaluations <= exhaustive.full_evaluations
    if full_vectors >= QUANTITATIVE_VECTORS:
        # The acceptance criterion at meaningful fidelity: identical frontier
        # from measurably fewer paper-fidelity evaluations.
        assert halving.frontier == exhaustive.frontier
        assert halving.full_evaluations < exhaustive.full_evaluations

    lines = [
        "Design-space exploration: successive halving vs exhaustive "
        "(Table III subspace)",
        f"candidates              : {', '.join(c.name for c in space)}",
        f"screening stimulus      : {default_screen_vectors(full_vectors)} vectors",
        f"paper-fidelity stimulus : {full_vectors} vectors",
        f"exhaustive evaluations  : {exhaustive.full_evaluations} full",
        f"halving evaluations     : {halving.screening_evaluations} screened, "
        f"{halving.full_evaluations} full "
        f"({', '.join(halving.evaluated_candidates)})",
        f"frontiers identical     : {halving.frontier == exhaustive.frontier}",
        "",
        render_frontier(frontier_series(halving.frontier)),
        "",
        "Ranked configurations within a 10% BER budget:",
        render_ranked_configurations(
            ranked_configurations(halving.frontier, max_ber=0.10)
        ),
    ]
    text = "\n".join(lines)
    print("\n=== Design-space exploration (this substrate) ===")
    print(text)
    write_output("explore_successive_halving.txt", text)
    write_metrics(
        "explore",
        [
            Metric(
                "full_evaluation_saving",
                exhaustive.full_evaluations / max(halving.full_evaluations, 1),
                "x",
                kind="ratio",
            ),
            Metric(
                "screening_evaluations",
                halving.screening_evaluations,
                "candidates",
                kind="count",
            ),
            Metric(
                "full_evaluations",
                halving.full_evaluations,
                "candidates",
                kind="count",
            ),
        ],
        vectors=full_vectors,
        jobs=bench_jobs(),
    )

    # Timing: a fully warm successive-halving pass (screening + promotion
    # decisions + frontier maintenance; simulation answered by reuse).
    def warm_search():
        run_search(
            space,
            "successive-halving",
            halving_evaluator,
            seed=2017,
            full_vectors=full_vectors,
        )

    benchmark(warm_search)
