"""Dynamic speculation (Section V narrative): accurate-to-approximate mode
switching under a user error margin.

Paper claims to reproduce: switching the 8-bit adders from their accurate
mode (~0.5 V, forward body bias, 0% BER) to the approximate mode (~0.4 V)
buys roughly an extra 10 percentage points of energy efficiency at a BER
below ~10-16%; the 16-bit adders gain ~24 points within ~9% BER.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import Metric, bench_vectors, write_metrics, write_output

from repro.core.speculation import DynamicSpeculationController

#: Stimulus size below which the paper's quantitative efficiency-gain claim
#: is not asserted.  The approximate-mode selection keys on measured BER; at
#: a few hundred vectors the BER estimate of a 43-triad grid is noisy enough
#: that a borderline triad (true BER just inside the margin) can measure
#: outside it, which legitimately shrinks the gain (observed on bka16 at 500
#: vectors).  Structural properties (gain >= 0, margin honoured) hold at any
#: size and are always asserted.
QUANTITATIVE_GAIN_VECTORS = 2000


def _render(rows) -> str:
    lines = [
        "Dynamic speculation: accurate vs approximate operating modes",
        f"{'adder':<8}{'accurate triad':<22}{'acc. saving %':>14}"
        f"{'approx triad':<24}{'appr. saving %':>15}{'appr. BER %':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['adder']:<8}{row['accurate']:<22}{row['accurate_saving']:>14.1f}"
            f"{row['approximate']:<24}{row['approximate_saving']:>15.1f}"
            f"{row['approximate_ber']:>12.2f}"
        )
    return "\n".join(lines)


def test_dynamic_speculation_modes(benchmark, benchmark_characterizations):
    """Regenerate the accurate/approximate mode comparison; time the control loop."""
    rows = []
    for name, characterization in benchmark_characterizations.items():
        controller = DynamicSpeculationController(characterization, error_margin=0.16)
        accurate = controller.accurate_mode()
        approximate = controller.approximate_mode()
        rows.append(
            {
                "adder": name,
                "accurate": accurate.label(),
                "accurate_saving": characterization.energy_efficiency_of(accurate) * 100,
                "approximate": approximate.label(),
                "approximate_saving": characterization.energy_efficiency_of(approximate)
                * 100,
                "approximate_ber": approximate.ber_percent,
            }
        )
        # The paper's headline: the approximate mode adds a double-digit-ish
        # efficiency jump at a bounded BER.
        gain = (
            characterization.energy_efficiency_of(approximate)
            - characterization.energy_efficiency_of(accurate)
        )
        assert gain >= 0.0, name
        if bench_vectors() >= QUANTITATIVE_GAIN_VECTORS:
            assert gain > 0.05, name
        assert accurate.ber == 0.0
        assert approximate.ber <= 0.16

    text = _render(rows)
    print("\n=== Dynamic speculation modes (this substrate) ===")
    print(text)
    write_output("speculation_modes.txt", text)
    write_metrics(
        "speculation",
        [
            Metric(
                f"mode_gain_{row['adder']}_pp",
                row["approximate_saving"] - row["accurate_saving"],
                "pp",
                kind="quality",
            )
            for row in rows
        ],
        vectors=bench_vectors(),
    )

    characterization = benchmark_characterizations["rca8"]
    observations = list(np.clip(np.random.default_rng(0).normal(0.05, 0.02, 200), 0, 1))

    def run_controller():
        controller = DynamicSpeculationController(characterization, error_margin=0.10)
        controller.run_trace(observations)

    benchmark(run_controller)
