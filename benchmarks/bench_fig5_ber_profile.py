"""Fig. 5: distribution of BER over the output bits of the 8-bit RCA under
voltage over-scaling (clock fixed at the nominal Table III period, no body
bias, Vdd swept 0.8 / 0.7 / 0.6 / 0.5 V).

Paper shape to reproduce: the LSBs stay clean, errors appear in the upper
bits just below the error-free supply, and at deep over-scaling the middle /
upper bits carry large error probabilities.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import Metric, bench_vectors, write_metrics, write_output

from repro.analysis.figures import fig5_ber_per_bit

SUPPLY_VOLTAGES = (0.8, 0.7, 0.6, 0.5)


def _render(series) -> str:
    lines = ["Fig. 5: BER [%] per output bit of the 8-bit RCA (LSB -> MSB)"]
    header = "Vdd " + "".join(f"  bit{i:>2}" for i in range(9))
    lines.append(header)
    for entry in series:
        row = f"{entry.vdd:0.1f} " + "".join(
            f"{value * 100:7.1f}" for value in entry.ber_per_bit
        )
        lines.append(row)
    return "\n".join(lines)


def test_fig5_ber_distribution(benchmark):
    """Regenerate the Fig. 5 per-bit BER profiles and time one profile run."""
    series = fig5_ber_per_bit(
        supply_voltages=SUPPLY_VOLTAGES, n_vectors=bench_vectors(), seed=2017
    )
    text = _render(series)
    print("\n=== Fig. 5 (this substrate) ===")
    print(text)
    write_output("fig5_ber_profile.txt", text)
    write_metrics(
        "fig5_ber_profile",
        [
            Metric(
                f"mean_ber_vdd_{entry.vdd:0.1f}".replace(".", "p"),
                entry.mean_ber,
                "fraction",
                kind="quality",
                higher_is_better=False,
            )
            for entry in series
        ],
        vectors=bench_vectors(),
    )

    by_vdd = {entry.vdd: entry for entry in series}
    # Mean BER grows monotonically as the supply is over-scaled.
    means = [by_vdd[v].mean_ber for v in SUPPLY_VOLTAGES]
    assert all(later >= earlier for earlier, later in zip(means, means[1:]))
    # The LSB never depends on a carry and stays clean; upper bits fail.
    deepest = by_vdd[0.5].ber_per_bit
    assert deepest[0] == 0.0
    assert deepest[4:].max() > 0.05
    # Just below the error-free supply, only the upper bits see errors.
    onset = by_vdd[0.7].ber_per_bit
    assert onset[:3].max() <= onset[5:].max() + 1e-9

    benchmark(
        lambda: fig5_ber_per_bit(supply_voltages=(0.6,), n_vectors=500, seed=1)
    )
