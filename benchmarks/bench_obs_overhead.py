"""Tracing overhead: a traced characterization sweep vs an untraced one.

The observability layer (:mod:`repro.obs`) promises a near-free disabled
path and a cheap enabled path: spans are plain ``__enter__``/``__exit__``
objects, attributes are kwargs, and the JSONL writer appends one line per
*finished* span.  This benchmark runs the same characterization sweep with
and without an active :class:`~repro.obs.trace.Tracer` and gates on the
wall-time ratio.

The gated metric is ``tracing_overhead`` (traced / untraced best-of-N wall
time, lower is better).  Its committed baseline carries an absolute
``cap`` of 1.05, so CI fails outright if tracing ever costs more than 5%
-- even if a slow baseline were committed.  Runs alternate traced and
untraced so host-load drift hits both arms equally, and each arm keeps its
best (minimum) time.

``REPRO_BENCH_VECTORS`` sizes the stimulus (default 4000);
``REPRO_BENCH_RELAXED=1`` widens the in-bench assertion for shared/noisy
runners (the perf-gate cap still applies to the committed baseline flow).
"""

from __future__ import annotations

import gc
import os
import tempfile
import time

from _bench_utils import Metric, bench_vectors, write_metrics, write_output
from conftest import bench_jobs

from repro.core.characterization import CharacterizationFlow
from repro.obs.report import load_trace, validate_trace
from repro.obs.trace import Tracer, activated
from repro.simulation.patterns import PatternConfig

#: In-bench ceiling on the traced/untraced wall-time ratio.  The perf gate
#: additionally enforces the 1.05 ``cap`` on the committed baseline.
OVERHEAD_CEILING = 1.05
RELAXED_OVERHEAD_CEILING = 1.25

_REPEATS = 7


def _overhead_ceiling() -> float:
    if os.environ.get("REPRO_BENCH_RELAXED", "") not in ("", "0"):
        return RELAXED_OVERHEAD_CEILING
    return OVERHEAD_CEILING


def _timed(function) -> float:
    gc.collect()
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def test_tracing_overhead(tmp_path):
    """Gate the traced/untraced wall-time ratio of a characterization."""
    n_vectors = bench_vectors()
    pattern = PatternConfig(n_vectors=n_vectors, width=8, seed=2017)

    def run_sweep():
        # A fresh flow per run keeps the engine's timing cache cold, so the
        # per-triad engine.pass spans actually fire on every repetition.
        flow = CharacterizationFlow.for_benchmark("rca", 8)
        flow.run(pattern=pattern, jobs=bench_jobs(), store=None)

    run_sweep()  # warm imports, allocator, and engine caches off the clock

    traces: list = []
    best_untraced = best_traced = float("inf")
    for repeat in range(_REPEATS):
        best_untraced = min(best_untraced, _timed(run_sweep))
        trace_path = tmp_path / f"trace-{repeat}.jsonl"
        tracer = Tracer(trace_path)
        with activated(tracer):
            best_traced = min(best_traced, _timed(run_sweep))
        tracer.close()
        traces = load_trace(trace_path)

    overhead = best_traced / best_untraced
    assert traces, "the traced arm must emit spans"
    assert validate_trace(traces) == [], "emitted spans must satisfy the schema"

    lines = [
        f"stimulus:        {n_vectors} vectors, rca8, jobs={bench_jobs()}",
        f"untraced best:   {best_untraced * 1e3:8.2f} ms",
        f"traced best:     {best_traced * 1e3:8.2f} ms "
        f"({len(traces)} span(s)/run)",
        f"overhead:        {overhead:.4f}x (ceiling {_overhead_ceiling():.2f}x)",
    ]
    text = "\n".join(lines)
    print("\n=== Tracing overhead ===")
    print(text)
    write_output("bench_obs_overhead.txt", text)
    write_metrics(
        "obs",
        [
            Metric(
                "tracing_overhead",
                overhead,
                "x",
                kind="ratio",
                higher_is_better=False,
            ),
            Metric("untraced_s", best_untraced, "s", kind="time"),
            Metric("traced_s", best_traced, "s", kind="time"),
            Metric("spans_per_run", len(traces), "spans", kind="count"),
        ],
        vectors=n_vectors,
        jobs=bench_jobs(),
    )

    assert overhead <= _overhead_ceiling(), (
        f"tracing overhead {overhead:.4f}x exceeds {_overhead_ceiling():.2f}x"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as scratch:
        import pathlib

        test_tracing_overhead(pathlib.Path(scratch))
