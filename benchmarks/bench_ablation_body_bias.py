"""Ablation: the contribution of body biasing to the paper's results.

The paper attributes much of the error-free energy saving to FDSOI forward
body biasing.  This ablation re-runs the 8-bit RCA characterization with the
body-bias axis disabled (Vbb = 0 only) and compares the reachable savings
with the full grid, quantifying exactly how much of the benefit body biasing
provides at 0% and at 10% BER.
"""

from __future__ import annotations

from _bench_utils import Metric, bench_vectors, write_metrics, write_output

from repro.core.characterization import CharacterizationFlow
from repro.core.energy import best_triad_within_ber
from repro.simulation.patterns import PatternConfig


def test_ablation_body_bias_contribution(benchmark, benchmark_characterizations):
    """Quantify the energy-saving contribution of the body-bias axis."""
    full = benchmark_characterizations["rca8"]

    flow = CharacterizationFlow.for_benchmark("rca", 8)
    no_bias_grid = flow.default_triad_grid().filter(vbb_values=(0.0,))
    config = PatternConfig(n_vectors=bench_vectors(), width=8, seed=2017)
    no_bias = flow.run(triads=no_bias_grid, pattern=config, keep_measurements=False)

    rows = []
    for margin in (0.0, 0.10):
        full_best = full.energy_efficiency_of(best_triad_within_ber(full, margin))
        reduced_best = no_bias.energy_efficiency_of(
            best_triad_within_ber(no_bias, margin)
        )
        rows.append((margin, full_best, reduced_best))

    lines = [
        "Ablation: body-bias contribution (8-bit RCA)",
        f"{'BER budget':<12}{'with Vbb saving %':>19}{'Vbb=0 only saving %':>21}"
        f"{'delta (pp)':>12}",
    ]
    for margin, full_best, reduced_best in rows:
        lines.append(
            f"{margin * 100:<12.0f}{full_best * 100:>19.1f}{reduced_best * 100:>21.1f}"
            f"{(full_best - reduced_best) * 100:>12.1f}"
        )
    text = "\n".join(lines)
    print("\n=== Ablation: body-bias contribution ===")
    print(text)
    write_output("ablation_body_bias.txt", text)
    write_metrics(
        "ablation_body_bias",
        [
            Metric(
                f"saving_{'with' if with_bias else 'without'}_vbb_at_"
                f"{margin * 100:.0f}pct_ber",
                value,
                "fraction",
                kind="quality",
            )
            for margin, full_best, reduced_best in rows
            for with_bias, value in ((True, full_best), (False, reduced_best))
        ],
        vectors=bench_vectors(),
    )

    # At 0% BER the body-biased grid must reach strictly better savings:
    # forward body bias is what keeps the adder error-free at low Vdd.
    zero_margin = rows[0]
    assert zero_margin[1] > zero_margin[2]

    benchmark(lambda: best_triad_within_ber(full, 0.10))
