"""Ablation: training-set size and stimulus type for Algorithm 1.

The paper trains its probability tables with 20 K carry-balanced patterns.
This ablation measures how the model quality (SNR against the hardware on a
*held-out* uniform test set) varies with the training-set size and with the
stimulus generator used for training.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import Metric, write_metrics, write_output

from repro.core.calibration import calibrate_probability_table
from repro.core.characterization import CharacterizationFlow
from repro.core.metrics import signal_to_noise_ratio_db
from repro.core.modified_adder import ApproximateAdderModel
from repro.core.triad import OperatingTriad
from repro.simulation.patterns import PatternConfig, generate_patterns

TRAINING_SIZES = (250, 1000, 4000)
TRAINING_KINDS = ("uniform", "carry_balanced", "correlated")


def test_ablation_training_configuration(benchmark):
    """Sweep training size and stimulus kind; evaluate on held-out data."""
    flow = CharacterizationFlow.for_benchmark("rca", 8)
    grid = flow.default_triad_grid()
    # A deep over-scaling triad with the nominal clock and no body bias.
    nominal_clock = sorted({t.tclk for t in grid})[-2]
    triad = OperatingTriad(tclk=nominal_clock, vdd=0.6, vbb=0.0)

    test_in1, test_in2 = generate_patterns(
        PatternConfig(n_vectors=4000, width=8, kind="uniform", seed=99)
    )
    test_hw = flow.testbench.run_triad(
        test_in1, test_in2, tclk=triad.tclk, vdd=triad.vdd, vbb=triad.vbb
    )

    lines = [
        f"Ablation: Algorithm 1 training configuration (triad {triad.label()})",
        f"{'training kind':<18}{'size':>8}{'held-out SNR (dB)':>20}",
    ]
    results = {}
    for kind in TRAINING_KINDS:
        for size in TRAINING_SIZES:
            train_in1, train_in2 = generate_patterns(
                PatternConfig(n_vectors=size, width=8, kind=kind, seed=7)
            )
            train_hw = flow.testbench.run_triad(
                train_in1, train_in2, tclk=triad.tclk, vdd=triad.vdd, vbb=triad.vbb
            )
            calibration = calibrate_probability_table(
                train_in1, train_in2, train_hw.latched_words, 8, metric="mse"
            )
            model = ApproximateAdderModel(8, calibration.table, seed=21)
            snr = signal_to_noise_ratio_db(
                test_hw.latched_words, model.add(test_in1, test_in2)
            )
            results[(kind, size)] = snr
            lines.append(f"{kind:<18}{size:>8}{snr:>20.1f}")

    text = "\n".join(lines)
    print("\n=== Ablation: training configuration ===")
    print(text)
    write_output("ablation_training.txt", text)
    write_metrics(
        "ablation_training",
        [
            Metric(f"snr_{kind}_{size}_db", snr, "dB", kind="quality")
            for (kind, size), snr in results.items()
        ],
        vectors=4000,
    )

    # Every configuration produces a usable model on held-out data.
    assert min(results.values()) > 0.0
    # The largest carry-balanced training set is not worse than the smallest
    # uniform one (the paper's choice of stimulus is at least as good).
    assert results[("carry_balanced", 4000)] >= results[("uniform", 250)] - 1.0

    small_in1, small_in2 = generate_patterns(
        PatternConfig(n_vectors=500, width=8, kind="carry_balanced", seed=7)
    )
    small_hw = flow.testbench.run_triad(
        small_in1, small_in2, tclk=triad.tclk, vdd=triad.vdd, vbb=triad.vbb
    )
    benchmark(
        lambda: calibrate_probability_table(
            small_in1, small_in2, small_hw.latched_words, 8, metric="mse"
        )
    )
