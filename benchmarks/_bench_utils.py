"""Helpers shared by the benchmark modules (output persistence, sizing).

Besides the rendered text tables, every benchmark persists a
machine-readable ``BENCH_<name>.json`` via :func:`write_metrics`.  The
documents all carry the same schema, so the CI perf gate
(``benchmarks/perf_gate.py``) can diff any run against the committed
baselines without knowing the individual benchmarks:

.. code-block:: json

    {
      "bench": "store",
      "schema": 1,
      "git_sha": "...",        // REPRO_GIT_SHA or GITHUB_SHA, else "unknown"
      "timestamp": 1700000000, // REPRO_BENCH_TIMESTAMP/SOURCE_DATE_EPOCH wins
      "vectors": 4000,
      "jobs": 1,
      "metrics": [
        {"name": "warm_read_speedup", "value": 5.1, "unit": "x",
         "kind": "ratio", "higher_is_better": true}
      ]
    }

Metric ``kind`` decides how the perf gate treats it: ``ratio`` and
``quality`` metrics are machine-independent and *gated* (a relative change
past the tolerance in the bad direction fails CI); ``time`` and ``count``
metrics are informational -- recorded for trend lines, never compared
across machines.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Any, Sequence

from repro.obs import clock

#: Stimulus size used by the harness.  The paper uses 20 000 vectors; 4 000
#: keeps the full harness fast while preserving the qualitative shapes.
#: Override with the REPRO_BENCH_VECTORS environment variable.
DEFAULT_BENCH_VECTORS = 4000

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Metric kinds the perf gate compares against the baselines.
GATED_KINDS = frozenset({"ratio", "quality"})

_KINDS = frozenset({"time", "ratio", "count", "quality"})

#: Default gate direction per kind (``None`` = informational either way).
_KIND_DIRECTION = {"ratio": True, "quality": True, "time": False, "count": None}


def bench_vectors() -> int:
    """Number of stimulus vectors used by the harness."""
    return int(os.environ.get("REPRO_BENCH_VECTORS", DEFAULT_BENCH_VECTORS))


def write_output(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table/figure under ``benchmarks/output/``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path


@dataclasses.dataclass(frozen=True)
class Metric:
    """One named measurement inside a ``BENCH_<name>.json`` document.

    ``kind`` is one of ``time`` (seconds-scale durations, informational),
    ``ratio`` (machine-independent speedups/fractions, gated), ``count``
    (sizes, informational) and ``quality`` (accuracy-style scores, gated).
    ``higher_is_better`` defaults from the kind and only matters for gated
    metrics.
    """

    name: str
    value: float
    unit: str
    kind: str = "time"
    higher_is_better: bool | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown metric kind {self.kind!r}; "
                f"available: {', '.join(sorted(_KINDS))}"
            )

    def direction(self) -> bool | None:
        """Gate direction: ``True`` = bigger is better, ``None`` = ungated."""
        if self.higher_is_better is not None:
            return self.higher_is_better
        return _KIND_DIRECTION[self.kind]

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value": float(self.value),
            "unit": self.unit,
            "kind": self.kind,
            "higher_is_better": self.direction(),
        }


def _git_sha() -> str:
    for variable in ("REPRO_GIT_SHA", "GITHUB_SHA"):
        value = os.environ.get(variable, "").strip()
        if value:
            return value
    return "unknown"


def _timestamp() -> float:
    for variable in ("REPRO_BENCH_TIMESTAMP", "SOURCE_DATE_EPOCH"):
        value = os.environ.get(variable, "").strip()
        if value:
            return float(value)
    return clock.wall_time()


def write_metrics(
    bench: str,
    metrics: Sequence[Metric],
    *,
    vectors: int | None = None,
    jobs: int | None = None,
) -> pathlib.Path:
    """Persist ``BENCH_<bench>.json`` under ``benchmarks/output/``.

    Metric names must be unique within a document -- the perf gate joins
    baseline and current runs on ``(bench, metric name)``.
    """
    names = [metric.name for metric in metrics]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate metric names in bench {bench!r}: {names}")
    document = {
        "bench": bench,
        "schema": 1,
        "git_sha": _git_sha(),
        "timestamp": _timestamp(),
        "vectors": vectors,
        "jobs": jobs,
        "metrics": [metric.to_json() for metric in metrics],
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{bench}.json"
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
