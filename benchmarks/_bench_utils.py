"""Helpers shared by the benchmark modules (output persistence, sizing)."""

from __future__ import annotations

import os
import pathlib

#: Stimulus size used by the harness.  The paper uses 20 000 vectors; 4 000
#: keeps the full harness fast while preserving the qualitative shapes.
#: Override with the REPRO_BENCH_VECTORS environment variable.
DEFAULT_BENCH_VECTORS = 4000

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_vectors() -> int:
    """Number of stimulus vectors used by the harness."""
    return int(os.environ.get("REPRO_BENCH_VECTORS", DEFAULT_BENCH_VECTORS))


def write_output(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table/figure under ``benchmarks/output/``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
