"""Application-level benchmark: circuit BER versus application quality.

The paper motivates VOS approximation with error-resilient applications but
evaluates only at the operator level.  This bench closes that loop: the
image box blur and the FIR filter run on approximate-adder models trained at
increasingly aggressive triads of the 16-bit RCA, reporting application
quality (PSNR / output SNR) next to the circuit-level BER and energy saving.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import Metric, write_metrics, write_output

from repro.apps import (
    FirFilter,
    box_blur,
    low_pass_coefficients,
    output_snr_db,
    psnr_db,
    synthetic_gradient_image,
)
from repro.core.calibration import calibrate_probability_table
from repro.core.characterization import CharacterizationFlow
from repro.core.modified_adder import ApproximateAdderModel
from repro.simulation.patterns import PatternConfig


def test_application_quality_vs_ber(benchmark):
    """Sweep operating points and report application quality per BER level."""
    width = 16
    flow = CharacterizationFlow.for_benchmark("rca", width)
    characterization = flow.run(
        pattern=PatternConfig(n_vectors=1500, width=width, kind="carry_balanced", seed=3)
    )
    faulty = sorted(
        (e for e in characterization.results if e.ber > 0.002),
        key=lambda entry: entry.ber,
    )
    # Low / medium / high BER operating points.
    selected = [faulty[0], faulty[len(faulty) // 2], faulty[-1]]

    image = synthetic_gradient_image(20, 20)
    exact_blur = box_blur(image)
    coefficients = low_pass_coefficients(9, scale=16)
    rng = np.random.default_rng(5)
    samples = rng.integers(0, 256, 160)
    exact_fir = FirFilter(coefficients).filter(samples)

    lines = [
        "Application quality vs circuit BER (16-bit RCA operating points)",
        f"{'triad':<26}{'BER %':>8}{'saving %':>10}{'blur PSNR dB':>14}"
        f"{'FIR SNR dB':>12}",
    ]
    qualities = []
    for index, entry in enumerate(selected):
        measurement = characterization.measurement_for(entry.triad)
        calibration = calibrate_probability_table(
            measurement.in1, measurement.in2, measurement.latched_words, width, metric="mse"
        )
        model = ApproximateAdderModel(width, calibration.table, seed=30 + index)
        blur_quality = psnr_db(exact_blur, box_blur(image, adder=model))
        model.reseed(60 + index)
        fir_quality = output_snr_db(
            exact_fir, FirFilter(coefficients, adder=model).filter(samples)
        )
        qualities.append((entry.ber, blur_quality, fir_quality))
        lines.append(
            f"{entry.label():<26}{entry.ber_percent:>8.2f}"
            f"{characterization.energy_efficiency_of(entry) * 100:>10.1f}"
            f"{blur_quality:>14.1f}{fir_quality:>12.1f}"
        )

    text = "\n".join(lines)
    print("\n=== Application quality vs BER ===")
    print(text)
    write_output("application_quality.txt", text)
    write_metrics(
        "application_quality",
        [
            Metric(f"blur_psnr_{level}_ber_db", blur, "dB", kind="quality")
            for level, (_, blur, _) in zip(("low", "mid", "high"), qualities)
        ]
        + [
            Metric(f"fir_snr_{level}_ber_db", fir, "dB", kind="quality")
            for level, (_, _, fir) in zip(("low", "mid", "high"), qualities)
        ],
        vectors=1500,
    )

    # Quality must degrade monotonically (within tolerance) as BER grows.
    assert qualities[0][1] >= qualities[-1][1]
    assert qualities[0][2] >= qualities[-1][2]
    # The mildest operating point keeps the applications usable.
    assert qualities[0][1] > 15.0

    benchmark(lambda: box_blur(image))
