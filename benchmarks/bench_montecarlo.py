"""Monte Carlo variation characterization: yield analysis + robust frontier.

Beyond the paper: the paper's Fig. 5/8 numbers are single nominal-process
values, but at 28 nm FDSOI near-threshold operation the per-gate mismatch
spread is exactly what decides how much supply scaling a *population* of
dies tolerates.  This bench exercises the variation subsystem end to end:

* a Monte Carlo yield analysis of the 8-bit RCA over the Fig. 5 supply
  sweep (matched nominal clock, no body bias): BER distribution per triad
  and parametric yield vs Vdd at a 2 % BER margin, and
* the **robust Pareto frontier**: the exploration subsystem re-scored by
  quantile BER (p90 across sampled dies) instead of nominal BER, printed
  against the nominal frontier of the same Table III candidates.

Both phases run on the sharded, content-addressed orchestration layer
(``REPRO_BENCH_JOBS`` workers, ``REPRO_CACHE_DIR`` store), and the sample
count is fixed by ``REPRO_BENCH_MC_SAMPLES`` (default 24) independent of the
stimulus size, so a warm store answers the whole bench without simulating.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from _bench_utils import Metric, bench_vectors, write_metrics, write_output
from conftest import bench_jobs, bench_store

from repro.analysis.figures import frontier_series, render_frontier
from repro.analysis.variation import (
    render_variation_table,
    render_yield_series,
    yield_vs_vdd_series,
)
from repro.core.characterization import CharacterizationFlow
from repro.core.store import SweepResultStore
from repro.core.sweep import pattern_stimulus
from repro.explore import CandidateEvaluator, DesignSpace, run_search
from repro.simulation.patterns import PatternConfig, generate_patterns
from repro.variation import (
    MonteCarloConfig,
    run_montecarlo_sweep,
    supply_scaling_grid,
)

#: BER margin of the yield analysis (2 % -- the paper's speculation-margin
#: order of magnitude).
YIELD_MARGIN = 0.02

SUPPLY_SWEEP = (0.8, 0.7, 0.6, 0.5)

ROBUST_QUANTILE = 0.90


def bench_mc_samples() -> int:
    """Monte Carlo samples used by the harness (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_MC_SAMPLES", "24"))


def _store() -> SweepResultStore:
    configured = bench_store()
    if configured is not None:
        return configured
    # A throw-away store still exercises the persistence path and gives the
    # timed phase a genuinely warm rerun.
    return SweepResultStore(tempfile.mkdtemp(prefix="repro-mc-bench-"))


def test_montecarlo_yield_and_robust_frontier(benchmark):
    store = _store()
    jobs = bench_jobs()
    n_vectors = bench_vectors()
    samples = bench_mc_samples()

    # -- Phase 1: yield vs Vdd of the 8-bit RCA --------------------------------
    flow = CharacterizationFlow.for_benchmark("rca", 8)
    grid = supply_scaling_grid(flow, SUPPLY_SWEEP)
    pattern = PatternConfig(n_vectors=n_vectors, width=8, seed=2017)
    in1, in2 = generate_patterns(pattern)
    config = MonteCarloConfig(n_samples=samples, seed=2017)

    def run_yield():
        return run_montecarlo_sweep(
            flow.adder,
            grid,
            in1,
            in2,
            pattern_stimulus(pattern),
            config=config,
            jobs=jobs,
            store=store,
        )

    results = run_yield()
    by_vdd = {result.triad.vdd: result for result in results}
    # Structural invariants that hold at any stimulus size: the relaxed
    # supply keeps every sampled die error free, over-scaling breaks dies.
    assert by_vdd[0.8].yield_at(YIELD_MARGIN) == 1.0
    assert by_vdd[0.5].ber.mean > by_vdd[0.8].ber.mean
    assert by_vdd[0.5].yield_at(YIELD_MARGIN) <= by_vdd[0.8].yield_at(YIELD_MARGIN)
    for result in results:
        assert result.n_samples == samples
        assert result.ber.minimum <= result.ber.p50 <= result.ber.maximum

    # Determinism: a warm rerun replays the identical distribution.
    warm = run_yield()
    for cold_result, warm_result in zip(results, warm):
        assert np.array_equal(cold_result.ber_samples, warm_result.ber_samples)

    # -- Phase 2: robust (p90 BER) frontier vs nominal frontier ----------------
    space = DesignSpace.from_axes(("rca", "bka"), (8,), (None,))
    nominal_result = run_search(
        space,
        "exhaustive",
        CandidateEvaluator(space, jobs=jobs, store=store, seed=2017),
        seed=2017,
        full_vectors=n_vectors,
    )
    robust_config = MonteCarloConfig(n_samples=min(8, samples), seed=2017)
    robust_result = run_search(
        space,
        "exhaustive",
        CandidateEvaluator(
            space,
            jobs=jobs,
            store=store,
            seed=2017,
            variation=robust_config,
            robust_quantile=ROBUST_QUANTILE,
        ),
        seed=2017,
        full_vectors=n_vectors,
    )
    assert len(robust_result.frontier) > 0
    assert all(0.0 <= point.ber <= 1.0 for point in robust_result.frontier)

    model = config.model
    lines = [
        "Variation-aware Monte Carlo characterization (this substrate)",
        "operator                : rca8, matched nominal clock, no body bias",
        f"corner / mismatch       : {config.corner.value}, "
        f"sigma_vt {model.sigma_vt * 1e3:g} mV, "
        f"sigma_k {model.sigma_current_factor * 100:g}%",
        f"samples x vectors       : {samples} x {n_vectors}",
        "",
        render_variation_table(results, YIELD_MARGIN),
        "",
        render_yield_series(yield_vs_vdd_series(results, YIELD_MARGIN), YIELD_MARGIN),
        "",
        f"Robust frontier: Table III 8-bit candidates scored by p{ROBUST_QUANTILE * 100:.0f} "
        f"BER over {robust_config.n_samples} sampled dies",
        "",
        "nominal " + render_frontier(frontier_series(nominal_result.frontier)),
        "",
        f"robust (p{ROBUST_QUANTILE * 100:.0f}) "
        + render_frontier(frontier_series(robust_result.frontier)),
    ]
    text = "\n".join(lines)
    print("\n=== Monte Carlo yield analysis (this substrate) ===")
    print(text)
    write_output("montecarlo_yield.txt", text)
    write_metrics(
        "montecarlo",
        [
            Metric(
                f"yield_at_2pct_vdd_{vdd:0.1f}".replace(".", "p"),
                by_vdd[vdd].yield_at(YIELD_MARGIN),
                "fraction",
                kind="quality",
            )
            for vdd in SUPPLY_SWEEP
        ]
        + [
            Metric("robust_frontier_points", len(robust_result.frontier), "points", kind="count"),
            Metric("mc_samples", samples, "samples", kind="count"),
        ],
        vectors=n_vectors,
        jobs=jobs,
    )

    # Timing: a fully warm Monte Carlo sweep (store hits + statistics only).
    benchmark(run_yield)
