"""Result-store layout: v2 packfile vs the v1 one-JSON-file-per-entry layout.

Both stores hold the same Monte-Carlo-shaped payloads (the store's heaviest
real workload: four float64 sample arrays plus scalar metadata per triad,
exactly the schema :mod:`repro.variation.montecarlo` emits).  Three
measurements, all on warm page cache:

* **Warm read** -- time until every entry's sample arrays are usable
  numpy data.  v1 opens and JSON-parses one file per entry and
  base64-decodes each array field; v2 batch-reads the pack segments via
  ``get_many`` (one pass per segment, offset order, CRC-checked) and
  ``frombuffer``s the raw blobs.
* **Batch merge** -- the cross-shard merge the variation sweeps run:
  read every entry and concatenate each sample field across entries.
* **Store size** -- bytes on disk (v2 skips the 4/3 base64 inflation and
  the per-file allocation slack).

The speedup ratios are machine-independent and gated by the CI perf gate
(``benchmarks/perf_gate.py``); the raw latencies are recorded for trend
lines only.  ``REPRO_BENCH_STORE_ENTRIES`` / ``REPRO_BENCH_STORE_SAMPLES``
size the workload (defaults: 5000 entries x 500 samples per array, about
80 MB of payload -- large enough that per-entry costs, not constants,
dominate).  Timings take the best of several repetitions, and a
measurement that lands under the floor is remeasured once before
failing: both defend against transient stalls on shared runners.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import tempfile
import time

import numpy as np

from _bench_utils import Metric, write_metrics, write_output

from repro.core.store import (
    SweepResultStore,
    decode_float64_array,
    pack_float64_array,
    write_legacy_entry,
)

#: The four binary sample fields of a Monte Carlo payload.
SAMPLE_FIELDS = (
    "ber_samples",
    "faulty_fraction_samples",
    "energy_samples",
    "static_energy_samples",
)

#: Workload size.  The acceptance floor is defined at >= 5000 entries.
DEFAULT_ENTRIES = 5000
DEFAULT_SAMPLES = 500

#: Required v2-over-v1 speedup for warm reads and batch merges (the PR's
#: acceptance floor).  ``REPRO_BENCH_RELAXED=1`` lowers it to a sanity
#: floor for shared/noisy CI runners.
SPEEDUP_FLOOR = 3.0
RELAXED_SPEEDUP_FLOOR = 1.5

_REPEATS = 5


def _entries() -> int:
    return int(os.environ.get("REPRO_BENCH_STORE_ENTRIES", DEFAULT_ENTRIES))


def _samples() -> int:
    return int(os.environ.get("REPRO_BENCH_STORE_SAMPLES", DEFAULT_SAMPLES))


def _speedup_floor() -> float:
    if os.environ.get("REPRO_BENCH_RELAXED", "") not in ("", "0"):
        return RELAXED_SPEEDUP_FLOOR
    return SPEEDUP_FLOOR


def _best_time(function, repeats: int = _REPEATS):
    """Minimum wall time over ``repeats`` runs (robust against host stalls)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _mc_payload(rng: np.random.Generator, index: int, samples: int) -> dict:
    """One Monte-Carlo-shaped payload (the montecarlo module's schema)."""
    payload = {
        "payload_version": 2,
        "triad": {"tclk": 0.5 + index * 1e-6, "vdd": 1.0, "vbb": 0.0},
        "n_vectors": 2000,
        "samples": {"start": 0, "stop": samples},
        "dynamic_energy_per_operation": 1.25e-12,
    }
    for field in SAMPLE_FIELDS:
        payload[field] = pack_float64_array(rng.random(samples))
    return payload


def _tree_bytes(root: pathlib.Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def _v1_path(root: pathlib.Path, key: str) -> pathlib.Path:
    return root / key[:2] / f"{key}.json"


def _v1_read(root: pathlib.Path, keys: list[str]) -> dict[str, dict]:
    """Warm read of the v1 layout: parse each file, decode each array."""
    out = {}
    for key in keys:
        payload = json.loads(_v1_path(root, key).read_text(encoding="utf-8"))
        payload.pop("key", None)
        for field in SAMPLE_FIELDS:
            payload[field] = decode_float64_array(payload[field])
        out[key] = payload
    return out


def _v2_read(reader: SweepResultStore, keys: list[str]) -> dict[str, dict]:
    """Warm read of the packfile layout: one batch, raw-bytes blobs."""
    out = reader.get_many(keys)
    for payload in out.values():
        for field in SAMPLE_FIELDS:
            payload[field] = decode_float64_array(payload[field])
    return out


def _v1_merge(root: pathlib.Path, keys: list[str]) -> dict[str, np.ndarray]:
    merged = {field: [] for field in SAMPLE_FIELDS}
    for key in keys:
        payload = json.loads(_v1_path(root, key).read_text(encoding="utf-8"))
        for field in SAMPLE_FIELDS:
            merged[field].append(decode_float64_array(payload[field]))
    return {field: np.concatenate(parts) for field, parts in merged.items()}


def _v2_merge(reader: SweepResultStore, keys: list[str]) -> dict[str, np.ndarray]:
    batch = reader.get_many(keys)
    merged = {field: [] for field in SAMPLE_FIELDS}
    for key in keys:
        payload = batch[key]
        for field in SAMPLE_FIELDS:
            merged[field].append(decode_float64_array(payload[field]))
    return {field: np.concatenate(parts) for field, parts in merged.items()}


def _measure_round(
    v1_root: pathlib.Path,
    reader: SweepResultStore,
    keys: list[str],
    n_entries: int,
    n_samples: int,
) -> tuple[float, float, float, float]:
    """One timed round: (read_v1, read_v2, merge_v1, merge_v2) seconds."""
    # Warm the page cache for both layouts: the metric is warm-read
    # latency, not disk bandwidth.
    for path in v1_root.rglob("*.json"):
        path.read_bytes()
    for path in reader.root.rglob("*.pack"):
        path.read_bytes()

    t_read_v1, got_v1 = _best_time(lambda: _v1_read(v1_root, keys))
    t_read_v2, got_v2 = _best_time(lambda: _v2_read(reader, keys))
    assert len(got_v1) == len(got_v2) == n_entries
    probe = keys[n_entries // 2]
    for field in SAMPLE_FIELDS:
        assert np.array_equal(got_v1[probe][field], got_v2[probe][field])
    # Release the read results before timing the merges: hundreds of MB of
    # retained arrays would fragment the heap and tax the merge timings
    # with allocator noise that no real reader pays.
    del got_v1, got_v2
    gc.collect()

    t_merge_v1, merged_v1 = _best_time(lambda: _v1_merge(v1_root, keys))
    t_merge_v2, merged_v2 = _best_time(lambda: _v2_merge(reader, keys))
    for field in SAMPLE_FIELDS:
        assert np.array_equal(merged_v1[field], merged_v2[field])
        assert merged_v1[field].size == n_entries * n_samples
    return t_read_v1, t_read_v2, t_merge_v1, t_merge_v2


def test_store_layout(tmp_path):
    """Measure v1-vs-v2 warm reads, batch merges and sizes; assert floors."""
    n_entries = _entries()
    n_samples = _samples()
    rng = np.random.default_rng(2017)

    v1_root = tmp_path / "store_v1"
    v2_root = tmp_path / "store_v2"
    v2_store = SweepResultStore(v2_root)
    keys = []
    for index in range(n_entries):
        key = SweepResultStore.entry_key({"bench_store": index})
        keys.append(key)
        payload = _mc_payload(rng, index, n_samples)
        write_legacy_entry(v1_root, key, payload)
        v2_store.put(key, payload)

    v1_bytes = _tree_bytes(v1_root)
    v2_bytes = _tree_bytes(v2_root)
    os.sync()  # let writeback drain before any timing

    # A session opens its store once and reads many times: index load is
    # paid here, outside the per-read timings (v1 has no index at all).
    reader = SweepResultStore(v2_root)
    reader.disk_stats()

    times = _measure_round(v1_root, reader, keys, n_entries, n_samples)
    floor = _speedup_floor()
    if times[0] / times[1] < floor or times[2] / times[3] < floor:
        # A multi-second host stall (shared runners) can poison a whole
        # round of repetitions: remeasure once and keep the best of both.
        rerun = _measure_round(v1_root, reader, keys, n_entries, n_samples)
        times = tuple(min(a, b) for a, b in zip(times, rerun))
    t_read_v1, t_read_v2, t_merge_v1, t_merge_v2 = times

    read_speedup = t_read_v1 / t_read_v2
    merge_speedup = t_merge_v1 / t_merge_v2
    size_ratio = v2_bytes / v1_bytes

    lines = [
        "Result store: v2 packfile vs v1 per-entry JSON",
        f"entries: {n_entries}, float64 samples per array: {n_samples}, "
        f"sample fields per entry: {len(SAMPLE_FIELDS)}",
        f"{'measurement':<34}{'v1 [s]':>10}{'v2 [s]':>10}{'speedup':>10}",
        f"{'warm read (arrays usable)':<34}{t_read_v1:>10.3f}{t_read_v2:>10.3f}"
        f"{read_speedup:>9.2f}x",
        f"{'batch merge (concatenated)':<34}{t_merge_v1:>10.3f}{t_merge_v2:>10.3f}"
        f"{merge_speedup:>9.2f}x",
        f"store size: v1 {v1_bytes / 1e6:.1f} MB, v2 {v2_bytes / 1e6:.1f} MB "
        f"({size_ratio:.2f}x of v1)",
    ]
    text = "\n".join(lines)
    print("\n=== Store layout ===")
    print(text)
    write_output("bench_store.txt", text)
    write_metrics(
        "store",
        [
            Metric("warm_read_speedup", read_speedup, "x", kind="ratio"),
            Metric("batch_merge_speedup", merge_speedup, "x", kind="ratio"),
            Metric(
                "store_size_ratio",
                size_ratio,
                "v2/v1",
                kind="ratio",
                higher_is_better=False,
            ),
            Metric("warm_read_v1_s", t_read_v1, "s", kind="time"),
            Metric("warm_read_v2_s", t_read_v2, "s", kind="time"),
            Metric("batch_merge_v1_s", t_merge_v1, "s", kind="time"),
            Metric("batch_merge_v2_s", t_merge_v2, "s", kind="time"),
            Metric("entries", n_entries, "entries", kind="count"),
        ],
    )

    floor = _speedup_floor()
    assert read_speedup >= floor, (
        f"packfile warm read is only {read_speedup:.2f}x over the JSON "
        f"layout (floor is {floor}x)"
    )
    assert merge_speedup >= floor, (
        f"packfile batch merge is only {merge_speedup:.2f}x over the JSON "
        f"layout (floor is {floor}x)"
    )
    assert size_ratio < 1.0, "the packfile layout must not be larger than v1"
