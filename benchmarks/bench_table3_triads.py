"""Table III: the operating triads simulated per benchmark.

The paper's Table III lists, per adder, four clock periods (from its
synthesis timing reports), supply voltages 1.0 V down to 0.4 V, and body-bias
values 0 / ±2 V.  This bench prints both the paper's original clock lists and
the *matched* lists actually used by this substrate (rescaled to its own
critical paths), and verifies the 43-triad structure.
"""

from __future__ import annotations

from _bench_utils import Metric, write_metrics, write_output

from repro.analysis.tables import PAPER_BENCHMARKS, table3_triads
from repro.circuits.adders import build_adder
from repro.core.triad import matched_triad_grid
from repro.synthesis.sta import StaticTimingAnalysis


def test_table3_triad_grid(benchmark):
    """Regenerate Table III and time the grid construction."""
    critical_paths = {}
    for architecture, width in PAPER_BENCHMARKS:
        netlist = build_adder(architecture, width).netlist
        critical_paths[f"{architecture}{width}"] = StaticTimingAnalysis(
            netlist, 1.0
        ).critical_path_delay

    paper_labels, paper_text = table3_triads()
    matched_labels, matched_text = table3_triads(critical_paths)

    print("\n=== Table III: paper clock periods ===")
    print(paper_text)
    print("\n=== Table III: matched clock periods (this substrate) ===")
    print(matched_text)
    write_output("table3_triads.txt", paper_text + "\n\n" + matched_text)

    for name in paper_labels:
        assert len(matched_labels[name]) == 43
    write_metrics(
        "table3_triads",
        [
            Metric(f"triads_{name}", len(matched_labels[name]), "triads", kind="count")
            for name in paper_labels
        ],
    )

    benchmark(lambda: matched_triad_grid("rca8", critical_paths["rca8"]))
