"""Table II: synthesis results (area, total power, critical path) of the four
benchmark adders at the nominal operating point.

Paper reference values (28nm FDSOI LVT, 1.0 V, no body bias):

    8-bit RCA  : 114.7 um^2, 170.0 uW, 0.28 ns
    8-bit BKA  : 174.1 um^2, 267.7 uW, 0.19 ns
    16-bit RCA : 224.5 um^2, 341.0 uW, 0.53 ns
    16-bit BKA : 265.5 um^2, 363.4 uW, 0.25 ns

The analytical substrate is not expected to match the absolute numbers, but
the orderings (BKA faster / larger / hungrier than RCA; 16-bit roughly twice
the 8-bit area) must hold.
"""

from __future__ import annotations

from _bench_utils import Metric, write_metrics, write_output

from repro.analysis.tables import table2_synthesis
from repro.circuits.adders import build_adder
from repro.synthesis.synthesize import synthesize


def test_table2_synthesis_report(benchmark):
    """Regenerate Table II and time one synthesis run."""
    reports, text = table2_synthesis()
    print("\n=== Table II: synthesis results (this substrate) ===")
    print(text)
    write_output("table2_synthesis.txt", text)

    by_name = {report.design_name: report for report in reports}
    write_metrics(
        "table2_synthesis",
        [
            Metric(f"area_{name}_um2", report.area_um2, "um2", kind="count")
            for name, report in by_name.items()
        ]
        + [
            Metric(
                f"critical_path_{name}_ns",
                report.critical_path_ns,
                "ns",
                kind="quality",
                higher_is_better=False,
            )
            for name, report in by_name.items()
        ],
    )
    assert by_name["bka8"].critical_path_ns < by_name["rca8"].critical_path_ns
    assert by_name["bka16"].critical_path_ns < by_name["rca16"].critical_path_ns
    assert by_name["bka8"].area_um2 > by_name["rca8"].area_um2
    assert by_name["rca16"].area_um2 > by_name["rca8"].area_um2

    netlist = build_adder("rca", 8).netlist
    benchmark(lambda: synthesize(netlist))
