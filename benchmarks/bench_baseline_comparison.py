"""Comparison against design-time approximate adders (Section II baselines).

The paper argues that VOS-based approximation is preferable to design-time
(static) approximate adders because the energy/accuracy point can be changed
at run time without touching the netlist.  This bench makes the comparison
quantitative on the 8-bit RCA:

* the VOS statistical model is trained at three operating triads of
  increasing aggressiveness (three points of ONE adder, selected at run
  time),
* each static baseline (LSB-truncated, lower-OR, speculative window,
  pruned) is swept over its design parameter (a DIFFERENT netlist per
  point),

and for every configuration the BER and mean-squared error versus the exact
sum are reported.  Two qualitative claims are checked:

* the single VOS-characterized adder spans more than an order of magnitude
  of error magnitude purely through its runtime knob (the static designs
  need a different netlist per point), and
* the error *profiles* differ fundamentally: VOS errors are rare but hit
  high-significance bits (low BER, high MSE), whereas LSB-style static
  approximations flip low-significance bits constantly (high BER, low MSE) --
  which is exactly why the paper pairs VOS with a calibrated statistical
  model instead of a simple bit-level error rate.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import Metric, bench_vectors, write_metrics, write_output

from repro.baselines import build_baseline
from repro.core.calibration import calibrate_probability_table
from repro.core.characterization import CharacterizationFlow
from repro.core.metrics import bit_error_rate, mean_squared_error
from repro.core.modified_adder import ApproximateAdderModel
from repro.simulation.patterns import PatternConfig, generate_patterns

WIDTH = 8
BASELINE_SWEEP = {
    "lsb_truncated": (2, 4, 6),
    "lower_or": (2, 4, 6),
    "speculative": (5, 3, 2),
    "pruned": (1, 2, 3),
}


def test_vos_model_vs_static_baselines(benchmark):
    """Compare the trained VOS model with static approximate adders."""
    flow = CharacterizationFlow.for_benchmark("rca", WIDTH)
    characterization = flow.run(
        pattern=PatternConfig(
            n_vectors=bench_vectors(), width=WIDTH, kind="carry_balanced", seed=2017
        )
    )
    faulty = sorted(
        (e for e in characterization.results if e.ber > 0.01),
        key=lambda entry: entry.ber,
    )
    selected = [faulty[0], faulty[len(faulty) // 2], faulty[-1]]

    test_in1, test_in2 = generate_patterns(
        PatternConfig(n_vectors=bench_vectors(), width=WIDTH, seed=77)
    )
    exact = test_in1 + test_in2

    lines = [
        "VOS statistical model vs design-time approximate adders (8-bit)",
        f"{'configuration':<38}{'BER %':>8}{'MSE':>12}",
    ]
    vos_mses = []
    vos_bers = []
    for index, entry in enumerate(selected):
        measurement = characterization.measurement_for(entry.triad)
        calibration = calibrate_probability_table(
            measurement.in1, measurement.in2, measurement.latched_words, WIDTH, metric="mse"
        )
        model = ApproximateAdderModel(WIDTH, calibration.table, seed=40 + index)
        output = model.add(test_in1, test_in2)
        mse = mean_squared_error(exact, output)
        vos_mses.append(mse)
        vos_bers.append(bit_error_rate(exact, output, WIDTH + 1))
        lines.append(
            f"{'VOS model @ ' + entry.label():<38}"
            f"{vos_bers[-1] * 100:>8.2f}{mse:>12.2f}"
        )

    baseline_mses = []
    baseline_bers_by_family: dict[str, list[float]] = {}
    for name, parameters in BASELINE_SWEEP.items():
        for parameter in parameters:
            adder = build_baseline(name, WIDTH, parameter)
            output = adder.add(test_in1, test_in2)
            baseline_mses.append(mean_squared_error(exact, output))
            ber = bit_error_rate(exact, output, WIDTH + 1)
            baseline_bers_by_family.setdefault(name, []).append(ber)
            lines.append(
                f"{f'{name} (k={parameter})':<38}"
                f"{ber * 100:>8.2f}{baseline_mses[-1]:>12.2f}"
            )

    text = "\n".join(lines)
    print("\n=== VOS model vs static baselines ===")
    print(text)
    write_output("baseline_comparison.txt", text)
    write_metrics(
        "baseline_comparison",
        [
            Metric(
                "vos_mse_dynamic_range",
                max(vos_mses) / min(vos_mses),
                "x",
                kind="ratio",
            ),
            Metric(
                "vos_ber_vs_lsb_margin",
                min(
                    baseline_bers_by_family["lsb_truncated"]
                    + baseline_bers_by_family["lower_or"]
                )
                / max(vos_bers),
                "x",
                kind="ratio",
            ),
        ],
        vectors=bench_vectors(),
    )

    # One VOS-characterized adder spans >10x in error magnitude purely via
    # its runtime knob.
    assert max(vos_mses) > 10 * min(vos_mses)
    # Error-profile contrast: VOS errors are rarer (lower BER) than every
    # *LSB-style* static approximation evaluated here, even though their
    # numerical magnitude (MSE) is larger.  (The speculative-window adder is
    # excluded from this check -- it truncates carry chains just like the VOS
    # mechanism itself, so its profile is intentionally similar.)
    lsb_style_bers = (
        baseline_bers_by_family["lsb_truncated"] + baseline_bers_by_family["lower_or"]
    )
    assert max(vos_bers) < min(lsb_style_bers)
    assert min(vos_mses) > min(baseline_mses)

    adder = build_baseline("speculative", WIDTH, 3)
    benchmark(lambda: adder.add(test_in1, test_in2))
