"""Ablation: adder architecture versus VOS behaviour (beyond the paper).

The paper evaluates RCA and BKA.  This ablation pushes the remaining adder
generators (Kogge-Stone, carry-lookahead, carry-select, carry-skip) through
the same characterization flow and compares, per architecture, the area, the
most energy-efficient error-free triad and the saving available within a 10%
BER budget -- answering whether the paper's conclusions are specific to its
two adders or hold across prefix/block architectures.
"""

from __future__ import annotations

from _bench_utils import Metric, write_metrics, write_output

from repro.circuits.adders import build_adder
from repro.core.characterization import CharacterizationFlow
from repro.core.energy import best_triad_within_ber
from repro.simulation.patterns import PatternConfig
from repro.synthesis.synthesize import synthesize

ARCHITECTURES = ("rca", "bka", "ksa", "cla", "csla", "cska")
WIDTH = 8


def test_ablation_adder_architectures(benchmark):
    """Characterize every adder architecture and compare their VOS headroom."""
    lines = [
        f"Ablation: adder architectures under VOS ({WIDTH}-bit)",
        f"{'arch':<7}{'gates':>7}{'area um2':>10}{'CP ns':>8}"
        f"{'0%-BER saving %':>17}{'<=10%-BER saving %':>20}",
    ]
    zero_ber_savings = {}
    for architecture in ARCHITECTURES:
        adder = build_adder(architecture, WIDTH)
        report = synthesize(adder.netlist)
        flow = CharacterizationFlow(adder)
        characterization = flow.run(
            pattern=PatternConfig(n_vectors=1500, width=WIDTH, seed=2017),
            keep_measurements=False,
        )
        error_free = best_triad_within_ber(characterization, 0.0)
        within_ten = best_triad_within_ber(characterization, 0.10)
        zero_saving = characterization.energy_efficiency_of(error_free)
        ten_saving = characterization.energy_efficiency_of(within_ten)
        zero_ber_savings[architecture] = zero_saving
        lines.append(
            f"{architecture:<7}{report.gate_count:>7}{report.area_um2:>10.1f}"
            f"{report.critical_path_ns:>8.3f}{zero_saving * 100:>17.1f}"
            f"{ten_saving * 100:>20.1f}"
        )
        # The paper's qualitative conclusion holds for every architecture:
        # substantial error-free savings, more within a 10% BER budget.
        assert zero_saving > 0.3
        assert ten_saving >= zero_saving

    text = "\n".join(lines)
    print("\n=== Ablation: adder architectures ===")
    print(text)
    write_output("ablation_architectures.txt", text)
    write_metrics(
        "ablation_architectures",
        [
            Metric(
                f"{architecture}_zero_ber_saving",
                saving,
                "fraction",
                kind="quality",
            )
            for architecture, saving in zero_ber_savings.items()
        ],
        vectors=1500,
    )

    adder = build_adder("ksa", WIDTH)
    benchmark(lambda: synthesize(adder.netlist))
