"""Shared fixtures for the benchmark harness.

The benchmarks both *time* a representative kernel (pytest-benchmark) and
*print* the reproduced table/figure so the output can be compared with the
paper.  The expensive characterizations are computed once per session and
shared; rendered outputs are also written to ``benchmarks/output/``.
"""

from __future__ import annotations

import pytest

from _bench_utils import bench_vectors
from repro.analysis.tables import PAPER_BENCHMARKS
from repro.core.characterization import AdderCharacterization, CharacterizationFlow
from repro.simulation.patterns import PatternConfig


@pytest.fixture(scope="session")
def benchmark_characterizations() -> dict[str, AdderCharacterization]:
    """Characterizations of the paper's four benchmark adders (Fig. 8 data)."""
    characterizations: dict[str, AdderCharacterization] = {}
    for architecture, width in PAPER_BENCHMARKS:
        flow = CharacterizationFlow.for_benchmark(architecture, width)
        characterization = flow.run(
            pattern=PatternConfig(
                n_vectors=bench_vectors(), width=width, seed=2017, kind="uniform"
            )
        )
        characterizations[characterization.adder_name] = characterization
    return characterizations
