"""Shared fixtures for the benchmark harness.

The benchmarks both *time* a representative kernel (pytest-benchmark) and
*print* the reproduced table/figure so the output can be compared with the
paper.  The expensive characterizations are computed once per session and
shared; rendered outputs are also written to ``benchmarks/output/``.

The session characterizations run on the sweep orchestrator
(:mod:`repro.core.sweep`):

* ``REPRO_BENCH_JOBS=N`` shards every triad grid over N worker processes,
* ``REPRO_CACHE_DIR=path`` persists per-triad results in a content-addressed
  store, so a re-run of the harness (locally or in CI with a cached
  directory) skips the timing simulation entirely.

Both knobs are bit-neutral: results are identical with any combination.
"""

from __future__ import annotations

import os

import pytest

from _bench_utils import bench_vectors
from repro.analysis.tables import PAPER_BENCHMARKS
from repro.core.characterization import AdderCharacterization, CharacterizationFlow
from repro.core.store import SweepResultStore
from repro.simulation.patterns import PatternConfig


def bench_jobs() -> int:
    """Worker processes used by the harness characterizations."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_store() -> SweepResultStore | None:
    """The sweep result store, enabled only when REPRO_CACHE_DIR is set."""
    if os.environ.get("REPRO_CACHE_DIR"):
        return SweepResultStore.default()
    return None


@pytest.fixture(scope="session")
def benchmark_characterizations() -> dict[str, AdderCharacterization]:
    """Characterizations of the paper's four benchmark adders (Fig. 8 data)."""
    store = bench_store()
    characterizations: dict[str, AdderCharacterization] = {}
    for architecture, width in PAPER_BENCHMARKS:
        flow = CharacterizationFlow.for_benchmark(architecture, width)
        characterization = flow.run(
            pattern=PatternConfig(
                n_vectors=bench_vectors(), width=width, seed=2017, kind="uniform"
            ),
            jobs=bench_jobs(),
            store=store,
        )
        characterizations[characterization.adder_name] = characterization
    return characterizations
