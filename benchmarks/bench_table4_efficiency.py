"""Table IV: maximum energy efficiency and triad counts per BER range for the
8- and 16-bit RCA and BKA adders.

Paper reference (max energy efficiency per BER range):

    BER range   8-RCA  8-BKA  16-RCA  16-BKA
    0%           76.0   75.3    60.5    73.3
    1%-10%       87.0   65.3    83.6    84.0
    11%-20%      74.0   89.0    86.2    73.3
    21%-25%      92.0   82.8    90.8     --

The reproduction target is the pattern, not the exact cells: substantial
double-digit savings already at 0% BER, rising into the 80-90% range once a
10-25% BER budget is allowed, with forward body bias providing the winners.
"""

from __future__ import annotations

from _bench_utils import Metric, write_metrics, write_output

from repro.analysis.tables import render_table4, table4_energy_efficiency
from repro.core.energy import summarize_by_ber_range


def test_table4_energy_efficiency(benchmark, benchmark_characterizations):
    """Regenerate Table IV and time the aggregation step."""
    summaries = table4_energy_efficiency(benchmark_characterizations)
    text = render_table4(summaries)
    print("\n=== Table IV (this substrate) ===")
    print(text)
    write_output("table4_efficiency.txt", text)

    metrics = []
    for name, rows in summaries.items():
        by_label = {row.ber_range_label: row for row in rows}
        zero = by_label["0%"]
        assert zero.triad_count >= 5, name
        assert zero.max_energy_efficiency is not None and zero.max_energy_efficiency > 0.5
        # Allowing a BER budget unlocks additional savings beyond the 0% row.
        best_overall = max(
            row.max_energy_efficiency
            for row in rows
            if row.max_energy_efficiency is not None
        )
        assert best_overall > zero.max_energy_efficiency
        assert best_overall > 0.7
        metrics.append(
            Metric(
                f"zero_ber_efficiency_{name}",
                zero.max_energy_efficiency,
                "fraction",
                kind="quality",
            )
        )
        metrics.append(
            Metric(f"best_efficiency_{name}", best_overall, "fraction", kind="quality")
        )
    write_metrics("table4_efficiency", metrics)

    rca8 = benchmark_characterizations["rca8"]
    benchmark(lambda: summarize_by_ber_range(rca8))
