"""Ablation: which calibration metric should Algorithm 1 use?

The paper calibrates its probability table with three distance metrics and
reports (Fig. 7a) that the value-aware metrics (MSE, weighted Hamming) give a
higher SNR while plain Hamming minimises the bit-flip count.  This ablation
quantifies that trade-off on one faulty triad of the 8-bit RCA, and adds the
position-independent random-bit-flip injector as a lower-bound baseline.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import Metric, bench_vectors, write_metrics, write_output

from repro.core.calibration import calibrate_probability_table
from repro.core.characterization import CharacterizationFlow
from repro.core.metrics import (
    bit_error_rate,
    normalized_hamming_distance,
    signal_to_noise_ratio_db,
)
from repro.core.modified_adder import ApproximateAdderModel
from repro.simulation.fault_injection import RandomBitFlipModel
from repro.simulation.patterns import PatternConfig


def test_ablation_calibration_metric(benchmark):
    """Compare calibration metrics (and the random-flip baseline) on one triad."""
    flow = CharacterizationFlow.for_benchmark("rca", 8)
    characterization = flow.run(
        pattern=PatternConfig(
            n_vectors=bench_vectors(), width=8, kind="carry_balanced", seed=2017
        )
    )
    faulty = [e for e in characterization.results if 0.02 <= e.ber <= 0.25]
    entry = faulty[len(faulty) // 2]
    measurement = characterization.measurement_for(entry.triad)

    lines = [
        f"Ablation: calibration metric (triad {entry.label()}, hardware BER "
        f"{entry.ber_percent:.2f}%)",
        f"{'model':<22}{'SNR vs hw (dB)':>15}{'norm. Hamming':>15}{'model BER %':>13}",
    ]
    snrs = {}
    for metric in ("mse", "hamming", "weighted_hamming"):
        calibration = calibrate_probability_table(
            measurement.in1, measurement.in2, measurement.latched_words, 8, metric=metric
        )
        model = ApproximateAdderModel(8, calibration.table, seed=13)
        output = model.add(measurement.in1, measurement.in2)
        snr = signal_to_noise_ratio_db(measurement.latched_words, output)
        snrs[metric] = snr
        lines.append(
            f"{metric:<22}{snr:>15.1f}"
            f"{normalized_hamming_distance(measurement.latched_words, output, 9):>15.3f}"
            f"{bit_error_rate(measurement.exact_words, output, 9) * 100:>13.2f}"
        )

    random_model = RandomBitFlipModel(width=9, bit_error_rate=entry.ber, seed=17)
    random_output = random_model.apply(measurement.exact_words)
    random_snr = signal_to_noise_ratio_db(measurement.latched_words, random_output)
    lines.append(
        f"{'random bit flips':<22}{random_snr:>15.1f}"
        f"{normalized_hamming_distance(measurement.latched_words, random_output, 9):>15.3f}"
        f"{bit_error_rate(measurement.exact_words, random_output, 9) * 100:>13.2f}"
    )

    text = "\n".join(lines)
    print("\n=== Ablation: calibration metric ===")
    print(text)
    write_output("ablation_metrics.txt", text)
    write_metrics(
        "ablation_metrics",
        [
            Metric(f"snr_{metric}_db", snr, "dB", kind="quality")
            for metric, snr in snrs.items()
        ]
        + [Metric("snr_random_flips_db", random_snr, "dB", kind="quality")],
        vectors=bench_vectors(),
    )

    # The best calibration metric beats the position-independent baseline,
    # and every metric produces a usable (positive-SNR) model.
    assert max(snrs.values()) > random_snr
    assert min(snrs.values()) > 0.0

    benchmark(
        lambda: calibrate_probability_table(
            measurement.in1, measurement.in2, measurement.latched_words, 8, metric="hamming"
        )
    )
