"""Engine throughput: compiled/packed simulation vs the seed's per-gate loop.

Two measurements, persisted so future PRs have a perf trajectory:

* **Golden (zero-delay) simulation** of the 8-bit RCA: vectors/second of

  - the *seed* simulator: one Python-dispatched ``evaluate_gate`` call per
    gate, fed with the seed's vector-major stimulus layout (whose per-port
    bit columns are strided views -- reproduced here verbatim so the
    baseline stays the code this PR replaced),
  - the in-repo per-gate reference path (``run_reference``, same loop but
    fed with the engine's bit-major contiguous layout),
  - the compiled level-packed engine on boolean arrays (``run``),
  - the compiled engine in bit-packed uint64 mode, 64 vectors per word
    (``run_outputs``).

* **Fig. 4 characterization sweep** of the same adder over its full matched
  triad grid, engine (sweep-level reuse) vs the per-gate reference loop, with
  bit-identical BER/energy assertions.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _bench_utils import Metric, bench_vectors, write_metrics, write_output

from repro.circuits.adders import build_adder
from repro.core.characterization import CharacterizationFlow
from repro.simulation.logic_sim import LogicSimulator
from repro.simulation.patterns import PatternConfig

#: The golden-simulation measurement uses at least a 64 K-vector stimulus
#: (about 3x the paper's 20 K): below that, Python call overhead -- not
#: simulation work -- dominates every implementation and the comparison
#: measures nothing.
GOLDEN_MIN_VECTORS = 65536

#: Required packed-vs-seed golden speedup (the PR's acceptance floor).
#: ``REPRO_BENCH_RELAXED=1`` lowers it to a sanity floor for shared/noisy CI
#: runners, where relative timings depend on the machine and numpy build.
PACKED_SPEEDUP_FLOOR = 5.0
RELAXED_SPEEDUP_FLOOR = 2.0

_REPEATS = 5


def _speedup_floor() -> float:
    if os.environ.get("REPRO_BENCH_RELAXED", "") not in ("", "0"):
        return RELAXED_SPEEDUP_FLOOR
    return PACKED_SPEEDUP_FLOOR


def _best_time(function, repeats: int = _REPEATS) -> float:
    function()  # warm-up (plan compilation, caches)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _seed_assignment(adder, in1: np.ndarray, in2: np.ndarray) -> dict:
    """The seed's stimulus layout: vector-major bit matrix, strided columns."""
    shifts = np.arange(adder.width, dtype=np.int64)
    a_bits = ((np.asarray(in1, dtype=np.int64)[..., None] >> shifts) & 1).astype(bool)
    b_bits = ((np.asarray(in2, dtype=np.int64)[..., None] >> shifts) & 1).astype(bool)
    assignment = {}
    for i in range(adder.width):
        assignment[f"a{i}"] = a_bits[..., i]
        assignment[f"b{i}"] = b_bits[..., i]
    inputs = adder.netlist.primary_inputs
    if "__const0" in inputs:
        assignment["__const0"] = np.zeros(len(in1), dtype=bool)
    if "__const1" in inputs:
        assignment["__const1"] = np.ones(len(in1), dtype=bool)
    return assignment


def test_engine_throughput(benchmark):
    """Measure golden-sim and sweep throughput; assert engine speedups."""
    adder = build_adder("rca", 8)
    simulator = LogicSimulator(adder.netlist)

    n_golden = max(bench_vectors(), GOLDEN_MIN_VECTORS)
    rng = np.random.default_rng(2017)
    in1 = rng.integers(0, 256, n_golden)
    in2 = rng.integers(0, 256, n_golden)
    assignment = adder.input_assignment(in1, in2)
    seed_assignment = _seed_assignment(adder, in1, in2)

    # Bit-exactness of every path against the seed loop.
    seed_values = simulator.run_reference(seed_assignment)
    compiled_values = simulator.run(assignment)
    packed_outputs = simulator.run_outputs(assignment)
    for net in seed_values:
        assert np.array_equal(seed_values[net], compiled_values[net])
    for port, net in adder.netlist.primary_outputs.items():
        assert np.array_equal(packed_outputs[port], seed_values[net])

    t_seed = _best_time(lambda: simulator.run_reference(seed_assignment))
    t_reference = _best_time(lambda: simulator.run_reference(assignment))
    t_compiled = _best_time(lambda: simulator.run(assignment))
    t_packed = _best_time(lambda: simulator.run_outputs(assignment))
    packed_speedup = t_seed / t_packed

    lines = [
        "Engine throughput: 8-bit RCA golden (zero-delay) simulation",
        f"vectors per run: {n_golden}",
        f"{'path':<38}{'time [us]':>12}{'vectors/s':>16}{'vs seed':>9}",
    ]
    for label, seconds in (
        ("seed per-gate loop (strided layout)", t_seed),
        ("per-gate reference (bit-major layout)", t_reference),
        ("compiled level-packed (bool)", t_compiled),
        ("compiled bit-packed (uint64 words)", t_packed),
    ):
        lines.append(
            f"{label:<38}{seconds * 1e6:>12.0f}{n_golden / seconds:>16,.0f}"
            f"{t_seed / seconds:>8.1f}x"
        )

    # Characterization sweep (the Fig. 4 flow) at the harness vector count.
    n_sweep = bench_vectors()
    pattern = PatternConfig(n_vectors=n_sweep, width=8, seed=2017, kind="uniform")

    flow_reference = CharacterizationFlow(build_adder("rca", 8))
    start = time.perf_counter()
    reference = flow_reference.run(
        pattern=pattern, keep_measurements=False, use_reference=True
    )
    t_sweep_reference = time.perf_counter() - start

    flow_engine = CharacterizationFlow(build_adder("rca", 8))
    start = time.perf_counter()
    engine = flow_engine.run(pattern=pattern, keep_measurements=False)
    t_sweep_engine = time.perf_counter() - start

    assert [e.ber for e in reference.results] == [e.ber for e in engine.results]
    assert [e.energy_per_operation for e in reference.results] == [
        e.energy_per_operation for e in engine.results
    ]
    assert [e.mse for e in reference.results] == [e.mse for e in engine.results]
    sweep_speedup = t_sweep_reference / t_sweep_engine

    lines += [
        "",
        "Fig. 4 characterization sweep: 8-bit RCA, full matched triad grid",
        f"vectors per triad: {n_sweep}, triads: {len(engine.results)}",
        f"{'per-gate reference loop':<38}{t_sweep_reference * 1e6:>12.0f}",
        f"{'compiled engine + sweep reuse':<38}{t_sweep_engine * 1e6:>12.0f}",
        f"end-to-end speedup: {sweep_speedup:.2f}x (BER/energy bit-identical)",
    ]
    text = "\n".join(lines)
    print("\n=== Engine throughput ===")
    print(text)
    write_output("bench_engine_throughput.txt", text)
    write_metrics(
        "engine_throughput",
        [
            Metric("packed_golden_speedup", packed_speedup, "x", kind="ratio"),
            Metric("compiled_golden_speedup", t_seed / t_compiled, "x", kind="ratio"),
            Metric("sweep_engine_speedup", sweep_speedup, "x", kind="ratio"),
            Metric("golden_packed_s", t_packed, "s", kind="time"),
            Metric("golden_seed_s", t_seed, "s", kind="time"),
            Metric("sweep_engine_s", t_sweep_engine, "s", kind="time"),
        ],
        vectors=n_golden,
    )

    floor = _speedup_floor()
    assert packed_speedup >= floor, (
        f"packed golden simulation is only {packed_speedup:.1f}x over the seed "
        f"loop (floor is {floor}x)"
    )
    assert sweep_speedup > 1.0, "sweep-level reuse must beat the per-triad loop"

    benchmark(lambda: simulator.run_outputs(assignment))
