"""Fig. 8 (a-d): Bit Error Rate and Energy/Operation for the 8- and 16-bit
RCA and BKA adders across the 43 operating triads.

Paper shape to reproduce, per adder:

* triads ordered by decreasing energy show a "two-regime" curve -- energy
  falls while BER stays 0, then BER rises as energy keeps falling;
* forward-body-bias triads populate the most energy-efficient low-BER end;
* the BKA's BER curve is more step-like than the RCA's.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import Metric, write_metrics, write_output

from repro.analysis.figures import fig8_ber_energy_series, render_fig8
from repro.core.triad import OperatingTriad
from repro.simulation.patterns import PatternConfig, generate_patterns
from repro.simulation.testbench import AdderTestbench
from repro.circuits.adders import build_adder


def test_fig8_all_adders(benchmark, benchmark_characterizations):
    """Regenerate all four Fig. 8 sub-plots; time a single-triad measurement."""
    rendered = []
    for name, characterization in benchmark_characterizations.items():
        series = fig8_ber_energy_series(characterization)
        text = render_fig8(series)
        rendered.append(text)
        print(f"\n=== Fig. 8 ({name}) ===")
        print(text)

        # Two-regime shape: the high-energy half is (almost) error free, the
        # low-energy half contains the heavily faulty triads.
        half = len(series.labels) // 2
        assert float(np.mean(series.ber_percent[:half] < 1.0)) > 0.5
        assert series.ber_percent[:half].mean() < 5.0
        assert series.ber_percent[half:].max() > 10.0
        assert (
            series.energy_per_operation_pj[-1]
            < 0.5 * series.energy_per_operation_pj[0]
        )
    write_output("fig8_ber_energy.txt", "\n\n".join(rendered))

    # Forward body bias dominates the best low-BER savings for every adder.
    best_savings = {}
    for name, characterization in benchmark_characterizations.items():
        low_ber = [e for e in characterization.results if e.ber <= 0.10]
        best = max(low_ber, key=characterization.energy_efficiency_of)
        assert best.triad.vbb == 2.0
        best_savings[name] = characterization.energy_efficiency_of(best)
    write_metrics(
        "fig8_ber_energy",
        [
            Metric(f"best_low_ber_saving_{name}", saving, "fraction", kind="quality")
            for name, saving in best_savings.items()
        ],
    )

    adder = build_adder("rca", 8)
    testbench = AdderTestbench(adder)
    in1, in2 = generate_patterns(PatternConfig(n_vectors=1000, width=8, seed=3))
    triad = OperatingTriad(tclk=0.28e-9, vdd=0.6, vbb=0.0)
    benchmark(
        lambda: testbench.run_triad(in1, in2, tclk=triad.tclk, vdd=triad.vdd, vbb=triad.vbb)
    )
