"""Per-shard dispatch overhead: shared-memory stimulus vs inline pickling.

Every shard task of a sweep used to carry the full operand arrays through
the pickle pipe -- megabytes serialised once per shard, again per pool
rebuild.  With the shared-memory transport (:mod:`repro.core.shm`) the
parent publishes the arrays once and each shard carries a
:class:`SharedArrayRef` of a few hundred bytes.

Two measurements:

* **Per-shard task size** -- ``pickle.dumps`` bytes of the ref each shard
  actually receives, inline vs shared.  Deterministic (no timing), so the
  shrink ratio is the gated metric.
* **Fan-out wall time** -- ``run_shards`` over ``REPRO_BENCH_JOBS`` (default
  4) workers x 16 shards, each shard loading the stimulus and returning a
  checksum, with the transport enabled vs disabled.  Results must be
  identical; times are recorded for trend lines (pool spawn cost makes the
  ratio machine-dependent, so it is not gated).

``REPRO_BENCH_VECTORS`` sizes the stimulus arrays (default 4000 int64
operands per input, the harness default).
"""

from __future__ import annotations

import pickle
import time

import numpy as np

from _bench_utils import Metric, bench_vectors, write_metrics, write_output
from conftest import bench_jobs

from repro.core.resilience import run_shards
from repro.core.shm import share_arrays
from repro.simulation.patterns import PatternConfig, generate_patterns

N_SHARDS = 16

#: Required inline-over-shared task-size shrink.  The ref is a couple of
#: hundred bytes regardless of the stimulus, so at the default 4000-vector
#: stimulus the true ratio is in the hundreds; 10x keeps the floor safe for
#: tiny REPRO_BENCH_VECTORS overrides.
SHRINK_FLOOR = 10.0


def _checksum_shard(task):
    ref, shard_index = task
    arrays = ref.load()
    return [int(arrays["in1"].sum() + arrays["in2"].sum()) + shard_index]


def _dispatch(arrays, enabled: bool) -> tuple[list, float]:
    bundle = share_arrays(arrays, enabled=enabled)
    tasks = [(bundle.ref, index) for index in range(N_SHARDS)]
    start = time.perf_counter()
    results = run_shards(
        tasks, _checksum_shard, max_workers=bench_jobs(), cleanup=bundle.unlink
    )
    return results, time.perf_counter() - start


def test_sweep_dispatch_overhead():
    """Compare per-shard task bytes and fan-out time, shared vs inline."""
    n_vectors = bench_vectors()
    in1, in2 = generate_patterns(
        PatternConfig(n_vectors=n_vectors, width=8, seed=2017)
    )
    arrays = {
        "in1": np.asarray(in1, dtype=np.int64),
        "in2": np.asarray(in2, dtype=np.int64),
    }
    stimulus_bytes = sum(array.nbytes for array in arrays.values())

    shared_bundle = share_arrays(arrays, enabled=True)
    inline_bundle = share_arrays(arrays, enabled=False)
    try:
        assert shared_bundle.shared
        assert not inline_bundle.shared
        shared_task_bytes = len(pickle.dumps((shared_bundle.ref, 0)))
        inline_task_bytes = len(pickle.dumps((inline_bundle.ref, 0)))
    finally:
        shared_bundle.unlink()
        inline_bundle.unlink()
    shrink = inline_task_bytes / shared_task_bytes

    shared_results, t_shared = _dispatch(arrays, enabled=True)
    inline_results, t_inline = _dispatch(arrays, enabled=False)
    assert shared_results == inline_results, "transport must be invisible"

    lines = [
        "Sweep dispatch: shared-memory stimulus transport vs inline pickling",
        f"stimulus: 2 x {n_vectors} int64 operands ({stimulus_bytes / 1e6:.1f} MB), "
        f"{N_SHARDS} shards over {bench_jobs()} workers",
        f"{'transport':<12}{'task bytes':>12}{'fan-out [s]':>13}",
        f"{'inline':<12}{inline_task_bytes:>12,}{t_inline:>13.3f}",
        f"{'shared':<12}{shared_task_bytes:>12,}{t_shared:>13.3f}",
        f"per-shard task shrink: {shrink:,.0f}x "
        f"({N_SHARDS * (inline_task_bytes - shared_task_bytes) / 1e6:.1f} MB "
        f"less per dispatch)",
    ]
    text = "\n".join(lines)
    print("\n=== Sweep dispatch ===")
    print(text)
    write_output("bench_sweep_dispatch.txt", text)
    write_metrics(
        "sweep_dispatch",
        [
            Metric("task_bytes_shrink", shrink, "x", kind="ratio"),
            Metric("shared_task_bytes", shared_task_bytes, "B", kind="count"),
            Metric("inline_task_bytes", inline_task_bytes, "B", kind="count"),
            Metric("fanout_shared_s", t_shared, "s", kind="time"),
            Metric("fanout_inline_s", t_inline, "s", kind="time"),
        ],
        vectors=n_vectors,
        jobs=bench_jobs(),
    )

    assert shared_task_bytes < 1024, "the shared ref must stay tiny"
    assert inline_task_bytes > stimulus_bytes, "inline must carry the arrays"
    assert shrink >= SHRINK_FLOOR
