"""CI perf gate: diff ``BENCH_*.json`` runs against committed baselines.

Every benchmark writes a machine-readable ``BENCH_<name>.json`` document
(see :mod:`_bench_utils`).  This gate joins a fresh run against the
baselines committed under ``benchmarks/baselines/`` on
``(bench, metric name)`` and fails when a *gated* metric (kind ``ratio`` or
``quality``) moved past the tolerance in its bad direction -- below baseline
for higher-is-better metrics, above it for lower-is-better ones.
Improvements never fail, whatever their size; ``time`` and ``count``
metrics are machine-dependent and reported but never gated.

A baseline metric may additionally carry a ``"cap"`` field: an *absolute*
bound in the metric's bad direction (a maximum for lower-is-better metrics,
a minimum for higher-is-better ones) checked independently of the relative
tolerance.  Caps encode hard requirements -- e.g. "tracing overhead must
stay <= 1.05x" -- that must hold even when the committed baseline value
drifts well below the bound.

Usage::

    python perf_gate.py                  # compare output/ vs baselines/
    python perf_gate.py --tolerance 0.1  # tighter gate (default 0.20)
    python perf_gate.py --update         # rewrite baselines from output/

Exit status: 0 = all gated metrics within tolerance, 1 = regression(s),
2 = missing/invalid documents.  A benchmark present in the baselines but
absent from the run is an error (a silently skipped benchmark must not
green the gate); a new benchmark with no baseline is reported and passes
(commit its baseline with ``--update``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

HERE = pathlib.Path(__file__).parent
DEFAULT_CURRENT = HERE / "output"
DEFAULT_BASELINES = HERE / "baselines"
DEFAULT_TOLERANCE = 0.20

GATED_KINDS = frozenset({"ratio", "quality"})


def load_documents(directory: pathlib.Path) -> dict[str, dict]:
    """Read every ``BENCH_*.json`` in a directory, keyed by bench name."""
    documents: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        document = json.loads(path.read_text(encoding="utf-8"))
        for field in ("bench", "metrics"):
            if field not in document:
                raise ValueError(f"{path}: missing {field!r} field")
        documents[document["bench"]] = document
    return documents


def _metrics(document: dict) -> dict[str, dict]:
    return {metric["name"]: metric for metric in document["metrics"]}


def compare(
    baseline: dict[str, dict],
    current: dict[str, dict],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (failures, notes) from joining current onto baseline."""
    failures: list[str] = []
    notes: list[str] = []

    for bench in sorted(baseline):
        if bench not in current:
            failures.append(
                f"{bench}: benchmark missing from the current run "
                "(a skipped benchmark must not pass the gate)"
            )
            continue
        base_metrics = _metrics(baseline[bench])
        run_metrics = _metrics(current[bench])
        for name, base in sorted(base_metrics.items()):
            if base["kind"] not in GATED_KINDS:
                continue
            run = run_metrics.get(name)
            if run is None:
                failures.append(f"{bench}/{name}: gated metric missing from run")
                continue
            direction = base.get("higher_is_better")
            if direction is None:
                notes.append(f"{bench}/{name}: no gate direction, skipped")
                continue
            base_value = float(base["value"])
            run_value = float(run["value"])
            cap = base.get("cap")
            if cap is not None:
                cap_value = float(cap)
                breached = (
                    run_value < cap_value if direction else run_value > cap_value
                )
                if breached:
                    failures.append(
                        f"CAP {bench}/{name}: {run_value:.4g} breaches the "
                        f"absolute {'minimum' if direction else 'maximum'} "
                        f"{cap_value:.4g}"
                    )
            if base_value == 0.0:
                notes.append(f"{bench}/{name}: zero baseline, skipped")
                continue
            change = (run_value - base_value) / abs(base_value)
            regression = -change if direction else change
            label = (
                f"{bench}/{name}: {base_value:.4g} -> {run_value:.4g} "
                f"({change:+.1%}, {'higher' if direction else 'lower'} is better)"
            )
            if regression > tolerance:
                failures.append(f"REGRESSION {label} exceeds {tolerance:.0%}")
            else:
                notes.append(label)
        for name in sorted(set(run_metrics) - set(base_metrics)):
            if run_metrics[name]["kind"] in GATED_KINDS:
                notes.append(f"{bench}/{name}: new gated metric, no baseline yet")

    for bench in sorted(set(current) - set(baseline)):
        notes.append(f"{bench}: new benchmark, no baseline yet (use --update)")
    return failures, notes


def update_baselines(current_dir: pathlib.Path, baseline_dir: pathlib.Path) -> int:
    baseline_dir.mkdir(exist_ok=True)
    copied = 0
    for path in sorted(current_dir.glob("BENCH_*.json")):
        shutil.copyfile(path, baseline_dir / path.name)
        copied += 1
        print(f"updated {baseline_dir / path.name}")
    return copied


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=pathlib.Path,
        default=DEFAULT_CURRENT,
        help="directory holding the fresh BENCH_*.json run (default: output/)",
    )
    parser.add_argument(
        "--baselines",
        type=pathlib.Path,
        default=DEFAULT_BASELINES,
        help="directory holding the committed baselines (default: baselines/)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="maximum tolerated relative regression of a gated metric "
        "(default: 0.20 = 20%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current run over the baselines instead of gating",
    )
    args = parser.parse_args(argv)

    if args.update:
        copied = update_baselines(args.current, args.baselines)
        if copied == 0:
            print(f"no BENCH_*.json documents in {args.current}", file=sys.stderr)
            return 2
        return 0

    try:
        current = load_documents(args.current)
        baseline = load_documents(args.baselines)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"perf gate: {error}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"perf gate: no baselines in {args.baselines}", file=sys.stderr)
        return 2
    if not current:
        print(f"perf gate: no run documents in {args.current}", file=sys.stderr)
        return 2

    failures, notes = compare(baseline, current, args.tolerance)
    for note in notes:
        print(f"  {note}")
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"\nperf gate OK: {len(notes)} metric(s) within "
        f"{args.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
