"""Fig. 7 (a, b): estimation error of the statistical adder model.

For each benchmark adder, Algorithm 1 is run on carry-balanced training
patterns under the three distance metrics (MSE, Hamming, weighted Hamming);
the calibrated model is then compared with the characterized hardware
outputs.

Paper shape to reproduce:

* Fig. 7a -- the model reaches positive SNR (5-30 dB) against the hardware
  for every adder and metric;
* Fig. 7b -- the normalised Hamming distance between model and hardware
  stays below ~0.2.
"""

from __future__ import annotations

from _bench_utils import Metric, bench_vectors, write_metrics, write_output

from repro.analysis.figures import fig7_model_accuracy
from repro.core.calibration import calibrate_probability_table
from repro.simulation.patterns import PatternConfig, generate_patterns
from repro.core.carry_model import carry_truncated_add

BENCHMARKS = (("bka", 8), ("rca", 8), ("bka", 16), ("rca", 16))
METRICS = ("mse", "hamming", "weighted_hamming")


def _render(points) -> str:
    lines = [
        "Fig. 7: statistical-model accuracy versus characterized hardware",
        f"{'adder':<8}{'metric':<20}{'mean SNR (dB)':>15}{'norm. Hamming':>15}",
    ]
    for point in points:
        snr = "inf" if point.mean_snr_db == float("inf") else f"{point.mean_snr_db:.1f}"
        lines.append(
            f"{point.adder_name:<8}{point.metric:<20}{snr:>15}"
            f"{point.mean_normalized_hamming:>15.3f}"
        )
    return "\n".join(lines)


def test_fig7_model_accuracy(benchmark):
    """Regenerate the Fig. 7 summary and time one Algorithm 1 calibration."""
    points = fig7_model_accuracy(
        benchmarks=BENCHMARKS,
        metrics=METRICS,
        n_vectors=max(bench_vectors() // 2, 1000),
        max_triads=6,
    )
    text = _render(points)
    print("\n=== Fig. 7 (this substrate) ===")
    print(text)
    write_output("fig7_model_accuracy.txt", text)
    write_metrics(
        "fig7_model_accuracy",
        [
            Metric(
                f"snr_{point.adder_name}_{point.metric}_db",
                point.mean_snr_db,
                "dB",
                kind="quality",
            )
            for point in points
            if point.mean_snr_db != float("inf")
        ],
        vectors=max(bench_vectors() // 2, 1000),
    )

    assert len(points) == len(BENCHMARKS) * len(METRICS)
    for point in points:
        # Fig. 7a: the model tracks the hardware with positive SNR.
        assert point.mean_snr_db > 0.0
        # Fig. 7b: normalised Hamming distance stays below ~0.2.
        assert point.mean_normalized_hamming < 0.25

    in1, in2 = generate_patterns(
        PatternConfig(n_vectors=2000, width=8, kind="carry_balanced", seed=5)
    )
    faulty = carry_truncated_add(in1, in2, 8, 4)
    benchmark(
        lambda: calibrate_probability_table(in1, in2, faulty, 8, metric="mse")
    )
