"""Device-level behaviour: threshold voltage, drive current, leakage.

The paper relies on two device effects:

1. Propagation delay grows as the supply voltage approaches the threshold
   voltage (Eq. 2 in the paper), which is what creates timing errors under
   voltage over-scaling (VOS).
2. Body biasing in FDSOI shifts the threshold voltage, so a forward body bias
   recovers speed (and therefore keeps BER at 0%) at a reduced supply.

The drive-current model below is a smooth EKV-style interpolation between the
sub-threshold exponential and the strong-inversion alpha-power law, which is
required because the paper sweeps Vdd from 1.0 V down to 0.4 V -- straight
through the near-threshold region where the plain alpha-power law of Eq. (2)
diverges.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.technology.fdsoi28 import FDSOI28_LVT, TechnologyParameters

ArrayLike = Union[float, np.ndarray]


def effective_threshold_voltage(
    vbb: ArrayLike,
    tech: TechnologyParameters = FDSOI28_LVT,
) -> ArrayLike:
    """Threshold voltage under body bias.

    Forward body bias (positive ``vbb`` for the NMOS well convention used in
    the paper) lowers the threshold voltage linearly with the FDSOI
    body-bias coefficient; reverse bias raises it.  The result is clamped to
    the physically meaningful window ``[vt_min, vt_max]``.

    Parameters
    ----------
    vbb:
        Body-bias voltage in volts (scalar or array).  The paper uses the
        symmetric scheme (+Vbb on NWELL, -Vbb on PWELL) abbreviated to a
        single signed value, sweeping -2 V, 0 V, +2 V.
    tech:
        Technology parameter set.
    """
    vt = tech.vt0 - tech.body_bias_coefficient * np.asarray(vbb, dtype=float)
    return np.clip(vt, tech.vt_min, tech.vt_max)


def inversion_charge_factor(
    vdd: ArrayLike,
    vt: ArrayLike,
    tech: TechnologyParameters = FDSOI28_LVT,
) -> ArrayLike:
    """Normalised inversion-charge term of the EKV interpolation.

    ``q = ln(1 + exp((Vdd - Vt) / (2 n phi_t)))`` -- tends to
    ``(Vdd - Vt) / (2 n phi_t)`` in strong inversion and to
    ``exp((Vdd - Vt) / (2 n phi_t))`` in weak inversion, giving a single
    expression valid across the whole VOS sweep.
    """
    n_phi = 2.0 * tech.subthreshold_slope_factor * tech.thermal_voltage
    x = (np.asarray(vdd, dtype=float) - np.asarray(vt, dtype=float)) / n_phi
    # log1p(exp(x)) computed stably for large |x|.
    return np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))


def drive_current(
    vdd: ArrayLike,
    vbb: ArrayLike = 0.0,
    tech: TechnologyParameters = FDSOI28_LVT,
    drive_strength: float = 1.0,
) -> ArrayLike:
    """Saturation drive current of a unit device at the given operating point.

    The current is ``k * (2 n phi_t)**alpha * q**alpha`` where ``q`` is the
    smooth inversion charge factor.  In strong inversion this reduces to the
    paper's ``k (Vdd - Vt)**alpha``; in weak inversion it becomes the
    exponential sub-threshold current, so delay keeps growing smoothly as the
    supply is over-scaled below the threshold voltage.

    Parameters
    ----------
    vdd:
        Supply voltage (volts).
    vbb:
        Body-bias voltage (volts).
    tech:
        Technology parameters.
    drive_strength:
        Relative transistor width of the cell (1.0 = unit inverter).
    """
    if drive_strength <= 0:
        raise ValueError("drive_strength must be positive")
    vt = effective_threshold_voltage(vbb, tech)
    q = inversion_charge_factor(vdd, vt, tech)
    n_phi = 2.0 * tech.subthreshold_slope_factor * tech.thermal_voltage
    current = tech.current_factor * drive_strength * (n_phi * q) ** tech.alpha
    return current


def subthreshold_leakage_current(
    vdd: ArrayLike,
    vbb: ArrayLike = 0.0,
    tech: TechnologyParameters = FDSOI28_LVT,
    drive_strength: float = 1.0,
) -> ArrayLike:
    """Sub-threshold (off-state) leakage current of a unit device.

    ``I_off = I_0 * exp(-(Vt - Vt0)/(n phi_t)) * (1 - exp(-Vdd/phi_t))``
    scaled with a weak DIBL-like dependence on Vdd.  Reverse body bias
    (negative ``vbb``) raises Vt and therefore cuts leakage exponentially,
    which is why the paper's reverse-biased triads trade speed for leakage.
    The exponential uses the (softer) cell-level ``leakage_slope_factor``.
    """
    vt = effective_threshold_voltage(vbb, tech)
    n_phi = tech.leakage_slope_factor * tech.thermal_voltage
    vdd_arr = np.asarray(vdd, dtype=float)
    dibl = 1.0 + 0.15 * (vdd_arr - tech.vdd_nominal)
    scale = np.exp(-(vt - tech.vt0) / n_phi)
    drain_term = 1.0 - np.exp(-vdd_arr / tech.thermal_voltage)
    leak = tech.leakage_current_nominal * drive_strength * scale * drain_term * dibl
    return np.maximum(leak, 0.0)


def on_off_current_ratio(
    vdd: float,
    vbb: float = 0.0,
    tech: TechnologyParameters = FDSOI28_LVT,
) -> float:
    """Ratio of drive current to leakage current at an operating point.

    A sanity metric used by tests: the ratio must collapse by orders of
    magnitude as Vdd is over-scaled towards the threshold voltage, which is
    the physical root cause of the energy/accuracy trade-off the paper
    explores.
    """
    i_on = float(drive_current(vdd, vbb, tech))
    i_off = float(subthreshold_leakage_current(vdd, vbb, tech))
    if i_off <= 0.0:
        return math.inf
    return i_on / i_off
