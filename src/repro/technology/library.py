"""Standard-cell library characterised from the analytical technology models.

Each combinational cell used by :mod:`repro.circuits` is described by its
logical-effort parameters (logical effort ``g``, parasitic delay ``p``),
input capacitance, intrinsic drive strength and area in NAND2
gate-equivalents.  A :class:`StandardCellLibrary` binds those descriptions to
a :class:`~repro.technology.fdsoi28.TechnologyParameters` set and exposes the
per-cell delay / energy queries that the synthesis engine and the timing
simulators need.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.technology.delay import GateDelayModel
from repro.technology.fdsoi28 import FDSOI28_LVT, TechnologyParameters
from repro.technology.power import leakage_power, switching_energy


@dataclasses.dataclass(frozen=True)
class CellTimingModel:
    """Static (operating-point independent) description of a standard cell.

    Attributes
    ----------
    name:
        Cell name, matching the gate types in :mod:`repro.circuits.cells`.
    logical_effort:
        Logical effort ``g`` per input (average over inputs).
    parasitic_delay:
        Parasitic delay ``p`` in units of the technology time constant tau.
    input_capacitance_factor:
        Input capacitance per input pin, in multiples of the unit-inverter
        input capacitance.
    drive_strength:
        Output drive relative to a unit inverter.
    area_gate_equivalents:
        Layout area in NAND2 equivalents.
    leakage_width:
        Total leaking device width relative to a unit inverter (sets static
        power of the cell).
    switching_capacitance_factor:
        Internal + output capacitance switched on an output toggle, in
        multiples of the unit-inverter input capacitance (sets dynamic
        energy).
    """

    name: str
    logical_effort: float
    parasitic_delay: float
    input_capacitance_factor: float
    drive_strength: float
    area_gate_equivalents: float
    leakage_width: float
    switching_capacitance_factor: float

    def __post_init__(self) -> None:
        if self.logical_effort <= 0:
            raise ValueError("logical_effort must be positive")
        for attr in (
            "parasitic_delay",
            "input_capacitance_factor",
            "drive_strength",
            "area_gate_equivalents",
            "leakage_width",
            "switching_capacitance_factor",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


#: Logical-effort parameters for the cell set (values from the standard
#: logical-effort tables in Weste & Harris, the same reference the paper cites
#: for the Brent-Kung carry tree).  XOR cells are the slow, high-effort cells
#: that dominate the sum path of adders.
_DEFAULT_CELLS: dict[str, CellTimingModel] = {
    cell.name: cell
    for cell in (
        CellTimingModel("INV", 1.00, 1.0, 1.0, 1.0, 0.65, 1.0, 2.0),
        CellTimingModel("BUF", 1.00, 2.0, 1.0, 1.0, 1.00, 1.5, 3.0),
        CellTimingModel("NAND2", 1.33, 2.0, 1.3, 1.0, 1.00, 1.3, 2.6),
        CellTimingModel("NAND3", 1.67, 3.0, 1.7, 1.0, 1.40, 1.7, 3.4),
        CellTimingModel("NOR2", 1.67, 2.0, 1.7, 1.0, 1.00, 1.7, 3.4),
        CellTimingModel("NOR3", 2.33, 3.0, 2.3, 1.0, 1.40, 2.3, 4.6),
        CellTimingModel("AND2", 1.33, 3.0, 1.3, 1.0, 1.25, 1.8, 3.2),
        CellTimingModel("OR2", 1.67, 3.0, 1.7, 1.0, 1.25, 2.2, 3.6),
        CellTimingModel("XOR2", 2.00, 4.0, 2.0, 1.0, 2.25, 3.0, 5.0),
        CellTimingModel("XNOR2", 2.00, 4.0, 2.0, 1.0, 2.25, 3.0, 5.0),
        CellTimingModel("AOI21", 1.78, 3.0, 1.8, 1.0, 1.40, 2.0, 3.8),
        CellTimingModel("OAI21", 1.78, 3.0, 1.8, 1.0, 1.40, 2.0, 3.8),
        CellTimingModel("MAJ3", 2.33, 5.0, 2.1, 1.0, 2.50, 3.2, 5.4),
        CellTimingModel("MUX2", 2.00, 4.0, 1.8, 1.0, 2.00, 2.8, 4.6),
        CellTimingModel("DFF", 1.50, 6.0, 1.5, 1.0, 4.50, 4.0, 8.0),
    )
}


class StandardCellLibrary:
    """Cell library bound to a technology parameter set.

    The library answers the three questions the rest of the system asks:

    * ``cell_delay(name, fanout_capacitance, vdd, vbb)`` -- propagation delay
      of one cell at an operating point,
    * ``cell_switching_energy(name, vdd)`` -- dynamic energy of one output
      toggle,
    * ``cell_leakage_power(name, vdd, vbb)`` -- static power.
    """

    def __init__(
        self,
        tech: TechnologyParameters = FDSOI28_LVT,
        cells: Mapping[str, CellTimingModel] | None = None,
    ) -> None:
        self._tech = tech
        self._cells = dict(_DEFAULT_CELLS if cells is None else cells)
        if not self._cells:
            raise ValueError("cell library must contain at least one cell")

    @property
    def technology(self) -> TechnologyParameters:
        """Technology parameter set the library is characterised against."""
        return self._tech

    @property
    def cell_names(self) -> tuple[str, ...]:
        """Names of all cells available in the library."""
        return tuple(sorted(self._cells))

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def cell(self, name: str) -> CellTimingModel:
        """Return the static description of a cell, raising on unknown names."""
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"unknown cell {name!r}; available: {', '.join(self.cell_names)}"
            ) from None

    def input_capacitance(self, name: str) -> float:
        """Input pin capacitance of a cell, in farads."""
        return self.cell(name).input_capacitance_factor * self._tech.gate_capacitance

    def cell_area_um2(self, name: str) -> float:
        """Layout area of a cell in square micrometres."""
        return self.cell(name).area_gate_equivalents * self._tech.nand2_area_um2

    def delay_model(self, vdd: float, vbb: float) -> GateDelayModel:
        """Gate delay model bound to an operating point."""
        return GateDelayModel(vdd=vdd, vbb=vbb, tech=self._tech)

    def cell_delay(
        self,
        name: str,
        fanout_capacitance: float,
        vdd: float,
        vbb: float = 0.0,
        delay_model: GateDelayModel | None = None,
    ) -> float:
        """Propagation delay of ``name`` driving ``fanout_capacitance`` farads.

        Passing a pre-built ``delay_model`` avoids recomputing the technology
        time constant in inner loops (the timing simulator evaluates this for
        every gate of the netlist).
        """
        cell = self.cell(name)
        model = delay_model or self.delay_model(vdd, vbb)
        own_input_cap = cell.input_capacitance_factor * self._tech.gate_capacitance
        electrical_effort = fanout_capacitance / (own_input_cap * cell.drive_strength)
        return float(
            model.cell_delay(cell.logical_effort, cell.parasitic_delay, electrical_effort)
        )

    def cell_switching_energy(self, name: str, vdd: float) -> float:
        """Dynamic energy (joules) of one output transition of the cell."""
        cell = self.cell(name)
        capacitance = cell.switching_capacitance_factor * self._tech.gate_capacitance
        return float(switching_energy(capacitance, vdd, activity=1.0))

    def cell_leakage_power(self, name: str, vdd: float, vbb: float = 0.0) -> float:
        """Static power (watts) of the cell at the operating point."""
        cell = self.cell(name)
        return float(leakage_power(vdd, vbb, self._tech, device_width=cell.leakage_width))


#: Library instance used by default throughout the package.
DEFAULT_LIBRARY = StandardCellLibrary()

#: Body-bias range (volts, inclusive) supported by the library's FDSOI
#: substrate.  28nm FDSOI offers an exceptionally wide body-bias window
#: (the paper sweeps -2 V .. +2 V; wide-range LVT wells extend to about
#: +/-3 V) -- beyond it the threshold-voltage shift saturates at the
#: ``vt_min``/``vt_max`` clamp of the technology parameters and the delay
#: model stops responding, so operating points outside the range are
#: rejected up front rather than silently clamped.
SUPPORTED_BODY_BIAS_RANGE: tuple[float, float] = (-3.0, 3.0)
