"""Analytical 28nm FDSOI technology models.

This package replaces the commercial 28nm FDSOI LVT standard-cell library and
the Eldo SPICE simulator used in the paper.  It provides:

* :mod:`repro.technology.fdsoi28` -- the technology parameter set (nominal
  threshold voltage, body-bias coefficient, capacitances, leakage constants).
* :mod:`repro.technology.device` -- transistor-level behaviour: effective
  threshold voltage under body bias, drive current over the full
  sub/near/super-threshold range (EKV-style smooth interpolation).
* :mod:`repro.technology.delay` -- gate delay model built on the drive
  current (a continuous generalisation of the alpha-power law used in the
  paper's Eq. (2)).
* :mod:`repro.technology.power` -- dynamic and leakage energy models
  (``E = C * Vdd**2`` switching energy, sub-threshold leakage).
* :mod:`repro.technology.library` -- a standard-cell library characterised
  from the above models (logical effort, parasitic delay, area, input
  capacitance per cell).
* :mod:`repro.technology.corners` -- process corners and random variability
  used for Monte-Carlo style experiments.
"""

from repro.technology.fdsoi28 import FDSOI28_LVT, TechnologyParameters
from repro.technology.device import (
    effective_threshold_voltage,
    drive_current,
    subthreshold_leakage_current,
)
from repro.technology.delay import GateDelayModel, propagation_delay
from repro.technology.power import (
    switching_energy,
    leakage_power,
    leakage_energy_per_cycle,
    EnergyBreakdown,
)
from repro.technology.library import (
    SUPPORTED_BODY_BIAS_RANGE,
    CellTimingModel,
    StandardCellLibrary,
)
from repro.technology.corners import ProcessCorner, VariabilityModel

__all__ = [
    "FDSOI28_LVT",
    "TechnologyParameters",
    "effective_threshold_voltage",
    "drive_current",
    "subthreshold_leakage_current",
    "GateDelayModel",
    "propagation_delay",
    "switching_energy",
    "leakage_power",
    "leakage_energy_per_cycle",
    "EnergyBreakdown",
    "CellTimingModel",
    "StandardCellLibrary",
    "SUPPORTED_BODY_BIAS_RANGE",
    "ProcessCorner",
    "VariabilityModel",
]
