"""Process corners and random variability.

The paper notes that FDSOI's resistance to random dopant fluctuation is one
reason near-threshold operation becomes practical, and that any physical-level
approximation method must account for variability on top of the deliberate
approximation.  This module provides the small amount of machinery needed to
run such sensitivity experiments: fixed process corners (rescaled parameter
sets) and a per-gate random-variation model used by the event-driven
reference simulator and the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.technology.fdsoi28 import FDSOI28_LVT, TechnologyParameters


class ProcessCorner(enum.Enum):
    """Classic five-corner naming: (NMOS, PMOS) = slow/typical/fast."""

    TYPICAL = "TT"
    SLOW = "SS"
    FAST = "FF"
    SLOW_NMOS_FAST_PMOS = "SF"
    FAST_NMOS_SLOW_PMOS = "FS"


#: Multiplicative adjustments applied to (current_factor, vt offset) per corner.
_CORNER_ADJUSTMENTS: dict[ProcessCorner, tuple[float, float]] = {
    ProcessCorner.TYPICAL: (1.00, 0.000),
    ProcessCorner.SLOW: (0.85, +0.030),
    ProcessCorner.FAST: (1.15, -0.030),
    ProcessCorner.SLOW_NMOS_FAST_PMOS: (0.95, +0.010),
    ProcessCorner.FAST_NMOS_SLOW_PMOS: (1.05, -0.010),
}


def apply_corner(
    corner: ProcessCorner,
    tech: TechnologyParameters = FDSOI28_LVT,
) -> TechnologyParameters:
    """Return the technology parameter set shifted to a process corner."""
    current_scale, vt_shift = _CORNER_ADJUSTMENTS[corner]
    return tech.with_overrides(
        name=f"{tech.name}-{corner.value}",
        current_factor=tech.current_factor * current_scale,
        vt0=min(max(tech.vt0 + vt_shift, tech.vt_min), tech.vt_max),
    )


@dataclasses.dataclass(frozen=True)
class VariabilityModel:
    """Log-normal per-gate delay variation (local mismatch).

    ``sigma_fraction`` is the relative standard deviation of the per-gate
    delay at the nominal supply.  Variation is amplified as the supply drops
    (near-threshold operation is more sensitive to Vt mismatch); the
    amplification exponent controls how fast.
    """

    sigma_fraction: float = 0.05
    low_voltage_amplification: float = 1.5
    reference_vdd: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma_fraction < 0:
            raise ValueError("sigma_fraction must be non-negative")
        if self.low_voltage_amplification < 0:
            raise ValueError("low_voltage_amplification must be non-negative")
        if self.reference_vdd <= 0:
            raise ValueError("reference_vdd must be positive")

    def sigma_at(self, vdd: float) -> float:
        """Effective relative sigma at the given supply voltage."""
        ratio = max(self.reference_vdd / max(vdd, 1e-9), 1.0)
        return self.sigma_fraction * ratio**self.low_voltage_amplification

    def sample_multipliers(
        self,
        n_gates: int,
        vdd: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw one log-normal delay multiplier per gate.

        The multipliers have unit median so the deterministic delay model is
        recovered for ``sigma_fraction == 0``.
        """
        if n_gates < 0:
            raise ValueError("n_gates must be non-negative")
        sigma = self.sigma_at(vdd)
        if sigma == 0.0 or n_gates == 0:
            return np.ones(n_gates)
        return rng.lognormal(mean=0.0, sigma=sigma, size=n_gates)
