"""Process corners and random variability.

The paper notes that FDSOI's resistance to random dopant fluctuation is one
reason near-threshold operation becomes practical, and that any physical-level
approximation method must account for variability on top of the deliberate
approximation.  This module provides the small amount of machinery needed to
run such sensitivity experiments: fixed process corners (rescaled parameter
sets) and a per-gate random-variation model used by the event-driven
reference simulator and the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.technology.library import StandardCellLibrary

from repro.technology.device import (
    effective_threshold_voltage,
    inversion_charge_factor,
)
from repro.technology.fdsoi28 import FDSOI28_LVT, TechnologyParameters


class ProcessCorner(enum.Enum):
    """Classic five-corner naming: (NMOS, PMOS) = slow/typical/fast."""

    TYPICAL = "TT"
    SLOW = "SS"
    FAST = "FF"
    SLOW_NMOS_FAST_PMOS = "SF"
    FAST_NMOS_SLOW_PMOS = "FS"


#: Multiplicative adjustments applied to (current_factor, vt offset) per corner.
_CORNER_ADJUSTMENTS: dict[ProcessCorner, tuple[float, float]] = {
    ProcessCorner.TYPICAL: (1.00, 0.000),
    ProcessCorner.SLOW: (0.85, +0.030),
    ProcessCorner.FAST: (1.15, -0.030),
    ProcessCorner.SLOW_NMOS_FAST_PMOS: (0.95, +0.010),
    ProcessCorner.FAST_NMOS_SLOW_PMOS: (1.05, -0.010),
}


def apply_corner(
    corner: ProcessCorner,
    tech: TechnologyParameters = FDSOI28_LVT,
) -> TechnologyParameters:
    """Return the technology parameter set shifted to a process corner."""
    current_scale, vt_shift = _CORNER_ADJUSTMENTS[corner]
    return tech.with_overrides(
        name=f"{tech.name}-{corner.value}",
        current_factor=tech.current_factor * current_scale,
        vt0=min(max(tech.vt0 + vt_shift, tech.vt_min), tech.vt_max),
    )


def parse_corner(token: str) -> ProcessCorner:
    """Resolve a corner from its two-letter tag (``"TT"``, ``"ss"`` ...)."""
    try:
        return ProcessCorner(token.upper())
    except ValueError:
        raise ValueError(
            f"unknown process corner {token!r}; "
            f"available: {', '.join(corner.value for corner in ProcessCorner)}"
        ) from None


def corner_library(
    corner: ProcessCorner, library: "StandardCellLibrary | None" = None
) -> "StandardCellLibrary":
    """A :class:`~repro.technology.library.StandardCellLibrary` at a corner.

    The returned library shares the cell descriptions of ``library`` (default:
    the package default library) but binds them to the corner-shifted
    technology parameters, so every delay/energy/leakage query -- and the
    library fingerprint of the sweep result store -- reflects the corner.
    """
    from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary

    base = DEFAULT_LIBRARY if library is None else library
    return StandardCellLibrary(
        tech=apply_corner(corner, base.technology),
        cells={name: base.cell(name) for name in base.cell_names},
    )


@dataclasses.dataclass(frozen=True)
class VariabilityModel:
    """Log-normal per-gate delay variation (local mismatch).

    ``sigma_fraction`` is the relative standard deviation of the per-gate
    delay at the nominal supply.  Variation is amplified as the supply drops
    (near-threshold operation is more sensitive to Vt mismatch); the
    amplification exponent controls how fast.
    """

    sigma_fraction: float = 0.05
    low_voltage_amplification: float = 1.5
    reference_vdd: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma_fraction < 0:
            raise ValueError("sigma_fraction must be non-negative")
        if self.low_voltage_amplification < 0:
            raise ValueError("low_voltage_amplification must be non-negative")
        if self.reference_vdd <= 0:
            raise ValueError("reference_vdd must be positive")

    def sigma_at(self, vdd: float) -> float:
        """Effective relative sigma at the given supply voltage."""
        ratio = max(self.reference_vdd / max(vdd, 1e-9), 1.0)
        return self.sigma_fraction * ratio**self.low_voltage_amplification

    def sample_multipliers(
        self,
        n_gates: int,
        vdd: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw one log-normal delay multiplier per gate.

        The multipliers have unit median so the deterministic delay model is
        recovered for ``sigma_fraction == 0``.
        """
        if n_gates < 0:
            raise ValueError("n_gates must be non-negative")
        sigma = self.sigma_at(vdd)
        if sigma == 0.0 or n_gates == 0:
            return np.ones(n_gates)
        return rng.lognormal(mean=0.0, sigma=sigma, size=n_gates)


@dataclasses.dataclass(frozen=True)
class GateVariationModel:
    """Per-gate local-mismatch model in *device parameter* space.

    Where :class:`VariabilityModel` perturbs delays directly (with a
    hand-tuned low-voltage amplification), this model perturbs the two
    physical parameters the corner table also adjusts -- the strong-inversion
    current factor and the threshold voltage -- and derives delay and leakage
    multipliers *through the device equations*.  The supply dependence then
    comes out of the physics: near threshold the drive current is exponential
    in Vt, so the same mV-level Vt mismatch produces far larger delay spread
    at 0.5 V than at 1.0 V, which is exactly the regime the paper's VOS sweep
    operates in.

    Attributes
    ----------
    sigma_current_factor:
        Relative (log-normal, unit-median) standard deviation of the per-gate
        current factor ``k`` -- geometry/mobility mismatch.
    sigma_vt:
        Standard deviation in volts of the per-gate threshold-voltage offset
        (Pelgrom mismatch; FDSOI's undoped channel keeps this small).
    """

    sigma_current_factor: float = 0.06
    sigma_vt: float = 0.012

    def __post_init__(self) -> None:
        if self.sigma_current_factor < 0:
            raise ValueError("sigma_current_factor must be non-negative")
        if self.sigma_vt < 0:
            raise ValueError("sigma_vt must be non-negative")

    def sample_gate_parameters(
        self, n_gates: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw one ``(current-factor multiplier, Vt offset)`` pair per gate.

        The draw order is part of the determinism contract of the Monte
        Carlo subsystem (identical seeds must give identical instances), so
        both arrays are always drawn even at zero sigma.
        """
        if n_gates < 0:
            raise ValueError("n_gates must be non-negative")
        current = rng.lognormal(
            mean=0.0, sigma=self.sigma_current_factor, size=n_gates
        )
        vt_offset = rng.normal(loc=0.0, scale=self.sigma_vt, size=n_gates)
        return current, vt_offset

    def key_components(self) -> dict[str, float]:
        """JSON-serialisable identity of the model (result-store key part)."""
        return {
            "sigma_current_factor": self.sigma_current_factor,
            "sigma_vt": self.sigma_vt,
        }


def variation_delay_multipliers(
    current_multipliers: np.ndarray,
    vt_offsets: np.ndarray,
    vdd: float,
    vbb: float = 0.0,
    tech: TechnologyParameters = FDSOI28_LVT,
) -> np.ndarray:
    """Per-gate delay multipliers of sampled device parameters.

    Delay is inversely proportional to drive current, so the multiplier of a
    gate is ``I_nominal / I_varied`` evaluated through the same EKV-style
    charge interpolation the delay model uses
    (:func:`repro.technology.device.inversion_charge_factor`).  The arrays
    broadcast: pass ``(n_instances, n_gates)`` matrices to lower a whole
    Monte Carlo batch at once.
    """
    vt_nominal = effective_threshold_voltage(vbb, tech)
    q_nominal = inversion_charge_factor(vdd, vt_nominal, tech)
    q_varied = inversion_charge_factor(
        vdd, vt_nominal + np.asarray(vt_offsets, dtype=float), tech
    )
    current = np.asarray(current_multipliers, dtype=float)
    if np.any(current <= 0):
        raise ValueError("current-factor multipliers must be positive")
    return (q_nominal / q_varied) ** tech.alpha / current


def variation_leakage_multipliers(
    current_multipliers: np.ndarray,
    vt_offsets: np.ndarray,
    tech: TechnologyParameters = FDSOI28_LVT,
) -> np.ndarray:
    """Per-gate leakage-power multipliers of sampled device parameters.

    Sub-threshold leakage scales with device width (the current-factor
    multiplier) and exponentially with the threshold offset through the
    cell-level leakage slope -- the same dependence
    :func:`repro.technology.device.subthreshold_leakage_current` applies to
    the corner-shifted ``vt0``.
    """
    current = np.asarray(current_multipliers, dtype=float)
    if np.any(current <= 0):
        raise ValueError("current-factor multipliers must be positive")
    slope = tech.leakage_slope_factor * tech.thermal_voltage
    return current * np.exp(-np.asarray(vt_offsets, dtype=float) / slope)
