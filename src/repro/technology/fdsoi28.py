"""Technology parameter set for 28nm FDSOI (LVT flavour).

The paper characterises its adders with the LVT (low threshold voltage)
transistor library of a 28nm FDSOI process.  The real library is proprietary;
this module defines the small set of physical parameters that the analytical
delay/power models need, with values chosen from the public literature on
28nm FDSOI (ST/CEA-Leti publications) so that the nominal operating point
(1.0 V supply, no body bias) lands in the neighbourhood of the paper's
Table II synthesis results.

The parameters intentionally stay at the level of abstraction the paper's
equations use:

* ``tp = Vdd * Cload / (k * (Vdd - Vt)**2)`` -- propagation delay (Eq. 2),
* ``E = Cload * Vdd**2``                      -- energy per operation,
* ``Vt = Vt0 - kbb * Vbb``                    -- body-bias control of Vt.

All values use SI units (volts, farads, seconds, amperes, square metres)
unless the attribute name says otherwise.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class TechnologyParameters:
    """Physical parameters of a CMOS technology flavour.

    Attributes
    ----------
    name:
        Human readable identifier, e.g. ``"28nm-FDSOI-LVT"``.
    vdd_nominal:
        Nominal supply voltage in volts.
    vt0:
        Zero-body-bias threshold voltage magnitude in volts (average of NMOS
        and PMOS magnitudes -- the delay model works with a single effective
        device).
    body_bias_coefficient:
        Threshold-voltage shift per volt of body bias (V/V).  FDSOI allows a
        very wide body-bias range (the paper sweeps -2 V .. +2 V); forward
        body bias *lowers* Vt: ``Vt = vt0 - body_bias_coefficient * vbb``.
    vt_min / vt_max:
        Clamping range for the effective threshold voltage, representing the
        physical limits of body biasing.
    subthreshold_slope_factor:
        The ``n`` factor of the sub-threshold slope (dimensionless, ~1.1-1.5;
        FDSOI has excellent electrostatics so the value is low).
    leakage_slope_factor:
        Effective slope factor used for the *leakage* dependence on the
        threshold voltage.  It is larger than ``subthreshold_slope_factor``
        because cell-level leakage grows more slowly than a single ideal
        device's (transistor stacking, input-state averaging), which keeps
        forward body bias attractive -- as the paper's measurements show.
    thermal_voltage:
        ``kT/q`` at the operating temperature, in volts.
    alpha:
        Velocity-saturation exponent of the alpha-power law.  The paper's
        Eq. (2) uses the ideal long-channel value 2.0; short-channel 28nm
        devices are closer to 1.3, which is what the default parameter set
        uses (a weaker super-threshold voltage dependence, which is also what
        lets forward body bias keep the circuit error-free at 0.5-0.6 V as
        the paper measures).
    current_factor:
        Strong-inversion transconductance factor ``k`` (A/V^alpha) for a
        unit-drive (1x) inverter pull-down.  Sets the absolute time scale.
    gate_capacitance:
        Input capacitance of a unit-drive (1x) inverter input, in farads.
    parasitic_capacitance:
        Output (self-load) capacitance of a unit-drive inverter, in farads.
    wire_capacitance_per_fanout:
        Extra capacitance added per fanout to stand in for local wiring.
    leakage_current_nominal:
        Sub-threshold leakage current of a unit inverter at ``vt0`` and
        nominal Vdd, in amperes.
    nand2_area_um2:
        Layout area of a NAND2 cell in square micrometres; all cell areas are
        expressed as multiples of this (gate-equivalents).
    temperature_kelvin:
        Junction temperature assumed for the thermal voltage / leakage.
    """

    name: str
    vdd_nominal: float
    vt0: float
    body_bias_coefficient: float
    vt_min: float
    vt_max: float
    subthreshold_slope_factor: float
    leakage_slope_factor: float
    thermal_voltage: float
    alpha: float
    current_factor: float
    gate_capacitance: float
    parasitic_capacitance: float
    wire_capacitance_per_fanout: float
    leakage_current_nominal: float
    nand2_area_um2: float
    temperature_kelvin: float = 300.0

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0:
            raise ValueError("vdd_nominal must be positive")
        if not (self.vt_min <= self.vt0 <= self.vt_max):
            raise ValueError("vt0 must lie within [vt_min, vt_max]")
        if self.subthreshold_slope_factor < 1.0:
            raise ValueError("subthreshold_slope_factor must be >= 1.0")
        if self.leakage_slope_factor < self.subthreshold_slope_factor:
            raise ValueError(
                "leakage_slope_factor must be >= subthreshold_slope_factor"
            )
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        for attr in (
            "current_factor",
            "gate_capacitance",
            "parasitic_capacitance",
            "leakage_current_nominal",
            "nand2_area_um2",
            "thermal_voltage",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.wire_capacitance_per_fanout < 0:
            raise ValueError("wire_capacitance_per_fanout must be >= 0")

    def with_overrides(self, **overrides: float) -> "TechnologyParameters":
        """Return a copy of the parameter set with selected fields replaced.

        Used by :mod:`repro.technology.corners` to derive process corners and
        by tests that want to explore sensitivity to a single parameter.
        """
        return dataclasses.replace(self, **overrides)


#: Default parameter set used throughout the reproduction.  The absolute
#: values of ``current_factor`` / ``gate_capacitance`` were calibrated so that
#: the synthesis substrate reports critical paths and powers in the same
#: range as the paper's Table II (8-bit RCA ~0.28 ns, ~170 uW at 1.0 V).
FDSOI28_LVT = TechnologyParameters(
    name="28nm-FDSOI-LVT",
    vdd_nominal=1.0,
    vt0=0.40,
    body_bias_coefficient=0.085,
    vt_min=0.12,
    vt_max=0.60,
    subthreshold_slope_factor=1.15,
    leakage_slope_factor=1.85,
    thermal_voltage=0.0259,
    alpha=1.3,
    current_factor=5.1e-4,
    gate_capacitance=0.90e-15,
    parasitic_capacitance=0.80e-15,
    wire_capacitance_per_fanout=0.20e-15,
    leakage_current_nominal=2.5e-9,
    nand2_area_um2=0.90,
)

#: A regular-Vt (RVT) flavour, used only for comparison experiments /
#: ablations.  Higher threshold, lower leakage, slower.
FDSOI28_RVT = FDSOI28_LVT.with_overrides(
    name="28nm-FDSOI-RVT",
    vt0=0.47,
    vt_max=0.65,
    leakage_current_nominal=0.6e-9,
)
