"""Energy and power models.

The paper's energy argument is the quadratic dependence of switching energy
on the supply voltage (``E_total = Vdd**2 * Cload``) plus the observation
that scaling the clock alone does not save energy (it only stretches the same
charge transfer over a longer period while leakage keeps integrating).  Both
effects are modelled here:

* :func:`switching_energy`        -- ``alpha * C * Vdd**2`` dynamic energy,
* :func:`leakage_power`           -- static power at the operating point,
* :func:`leakage_energy_per_cycle`-- static power integrated over ``Tclk``.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from repro.technology.device import subthreshold_leakage_current
from repro.technology.fdsoi28 import FDSOI28_LVT, TechnologyParameters

ArrayLike = Union[float, np.ndarray]


def switching_energy(
    capacitance: ArrayLike,
    vdd: ArrayLike,
    activity: ArrayLike = 1.0,
) -> ArrayLike:
    """Dynamic energy of (dis)charging ``capacitance`` with given activity.

    ``E = activity * C * Vdd**2`` -- the activity factor is the average number
    of output transitions per cycle (0.5 * toggle probability for a full
    rail-to-rail charge/discharge pair counted as one CV^2).
    """
    cap = np.asarray(capacitance, dtype=float)
    act = np.asarray(activity, dtype=float)
    if np.any(cap < 0):
        raise ValueError("capacitance must be non-negative")
    if np.any(act < 0):
        raise ValueError("activity must be non-negative")
    return act * cap * np.asarray(vdd, dtype=float) ** 2


def leakage_power(
    vdd: ArrayLike,
    vbb: ArrayLike = 0.0,
    tech: TechnologyParameters = FDSOI28_LVT,
    device_width: float = 1.0,
) -> ArrayLike:
    """Static power ``P = I_off * Vdd`` of a block of given total device width."""
    i_off = subthreshold_leakage_current(vdd, vbb, tech, drive_strength=device_width)
    return i_off * np.asarray(vdd, dtype=float)


def leakage_energy_per_cycle(
    vdd: ArrayLike,
    vbb: ArrayLike,
    tclk: ArrayLike,
    tech: TechnologyParameters = FDSOI28_LVT,
    device_width: float = 1.0,
) -> ArrayLike:
    """Leakage energy integrated over one clock period.

    This term is why merely slowing the clock does not improve energy per
    operation: the leakage contribution grows linearly with ``Tclk``.
    """
    tclk_arr = np.asarray(tclk, dtype=float)
    if np.any(tclk_arr < 0):
        raise ValueError("tclk must be non-negative")
    return leakage_power(vdd, vbb, tech, device_width) * tclk_arr


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic + static energy of one operation, in joules."""

    dynamic: float
    static: float

    def __post_init__(self) -> None:
        if self.dynamic < 0 or self.static < 0:
            raise ValueError("energy components must be non-negative")

    @property
    def total(self) -> float:
        """Total energy per operation in joules."""
        return self.dynamic + self.static

    @property
    def total_pj(self) -> float:
        """Total energy per operation in picojoules (the unit of Fig. 8)."""
        return self.total * 1e12

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dynamic=self.dynamic + other.dynamic,
            static=self.static + other.static,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return the breakdown multiplied by a non-negative factor."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return EnergyBreakdown(self.dynamic * factor, self.static * factor)
