"""Gate propagation-delay model.

The paper's Eq. (2) expresses the propagation delay of an operator as

    tp = Vdd * Cload / (k * (Vdd - Vt)**2)

which is the classic alpha-power-law delay of a CMOS gate.  This module
implements a continuous version of that law (valid through the near- and
sub-threshold regions swept by the paper's experiments) plus a logical-effort
formulation so that every standard cell in :mod:`repro.technology.library`
gets a delay from the same physical model.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from repro.technology.device import drive_current
from repro.technology.fdsoi28 import FDSOI28_LVT, TechnologyParameters

ArrayLike = Union[float, np.ndarray]


def propagation_delay(
    load_capacitance: ArrayLike,
    vdd: ArrayLike,
    vbb: ArrayLike = 0.0,
    tech: TechnologyParameters = FDSOI28_LVT,
    drive_strength: float = 1.0,
) -> ArrayLike:
    """Delay of a gate driving ``load_capacitance`` at the given triad point.

    ``tp = 0.5 * Cload * Vdd / Id(Vdd, Vbb)`` -- the time for the drive
    current to (dis)charge the load through half the supply swing.  This is
    the direct generalisation of the paper's Eq. (2): in strong inversion
    ``Id = k (Vdd - Vt)**alpha`` and the expression collapses to the paper's
    formula (up to the 1/2 swing factor absorbed in calibration).

    Parameters
    ----------
    load_capacitance:
        Total load seen by the gate output, in farads.
    vdd, vbb:
        Operating voltages in volts.
    tech:
        Technology parameter set.
    drive_strength:
        Relative drive of the gate (wider output stage switches faster).
    """
    cap = np.asarray(load_capacitance, dtype=float)
    if np.any(cap < 0):
        raise ValueError("load_capacitance must be non-negative")
    current = drive_current(vdd, vbb, tech, drive_strength=drive_strength)
    return 0.5 * cap * np.asarray(vdd, dtype=float) / current


@dataclasses.dataclass(frozen=True)
class GateDelayModel:
    """Logical-effort style delay model evaluated at an operating point.

    The delay of a cell is ``tau * (p + g * h)`` where

    * ``tau`` is the technology time constant at the operating point
      (delay of a unit inverter driving another unit inverter),
    * ``p``   is the cell's parasitic delay (in units of tau),
    * ``g``   is the cell's logical effort,
    * ``h``   is the electrical effort (Cout / Cin).

    A single instance is bound to one ``(vdd, vbb)`` point so the per-cell
    evaluation inside the timing simulator is a cheap multiply-add.
    """

    vdd: float
    vbb: float
    tech: TechnologyParameters = FDSOI28_LVT

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")

    @property
    def tau(self) -> float:
        """Unit-inverter FO1 delay at this operating point, in seconds."""
        cload = self.tech.gate_capacitance + self.tech.parasitic_capacitance
        return float(
            propagation_delay(cload, self.vdd, self.vbb, self.tech, drive_strength=1.0)
        )

    def cell_delay(
        self,
        logical_effort: ArrayLike,
        parasitic_delay: ArrayLike,
        electrical_effort: ArrayLike,
    ) -> ArrayLike:
        """Delay of a cell described by logical-effort parameters, in seconds."""
        g = np.asarray(logical_effort, dtype=float)
        p = np.asarray(parasitic_delay, dtype=float)
        h = np.asarray(electrical_effort, dtype=float)
        if np.any(g <= 0):
            raise ValueError("logical_effort must be positive")
        if np.any(p < 0) or np.any(h < 0):
            raise ValueError("parasitic_delay and electrical_effort must be >= 0")
        return self.tau * (p + g * h)

    def scaling_factor(self, reference_vdd: float | None = None) -> float:
        """Delay multiplier relative to the nominal (or given) supply.

        ``scaling_factor()`` > 1 means the circuit is slower than at the
        reference point.  Used by tests and by the quick "will this triad
        produce errors at all" screening in the characterization flow.
        """
        ref = self.tech.vdd_nominal if reference_vdd is None else reference_vdd
        nominal = GateDelayModel(vdd=ref, vbb=0.0, tech=self.tech)
        return self.tau / nominal.tau
