"""Design-time (static) approximate adders used as comparison baselines.

Each class is a functional model: it takes unsigned operand arrays and
returns the approximate sum.  Unlike the VOS statistical model, the error of
these adders is fixed at design time -- the property the paper criticises --
so they have no notion of an operating triad.
"""

from __future__ import annotations

import dataclasses

import numpy as np


def _validate_operands(in1: np.ndarray, in2: np.ndarray, width: int) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(in1, dtype=np.int64)
    b = np.asarray(in2, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError("in1 and in2 must have the same shape")
    limit = (1 << width) - 1
    if np.any(a < 0) or np.any(b < 0) or np.any(a > limit) or np.any(b > limit):
        raise ValueError(f"operands must lie within [0, {limit}]")
    return a, b


@dataclasses.dataclass(frozen=True)
class LsbTruncatedAdder:
    """Accurate/approximate split adder ([5], [7]).

    The ``approximate_bits`` least-significant bits are added without carry
    propagation (bitwise XOR) and never generate a carry into the accurate
    upper part; the remaining bits are added exactly.

    Attributes
    ----------
    width:
        Operand width in bits.
    approximate_bits:
        Number of LSBs handled by the approximate part (``k`` in the paper's
        Fig. 1).
    """

    width: int
    approximate_bits: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not 0 <= self.approximate_bits <= self.width:
            raise ValueError("approximate_bits must lie within [0, width]")

    def add(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Approximate addition."""
        a, b = _validate_operands(in1, in2, self.width)
        k = self.approximate_bits
        mask = (1 << k) - 1
        low = (a & mask) ^ (b & mask)
        high = ((a >> k) + (b >> k)) << k
        return high | low


@dataclasses.dataclass(frozen=True)
class LowerOrAdder:
    """LSB-OR approximate adder: the low part is a bitwise OR.

    A classical ultra-cheap approximation (e.g. LOA): OR approximates the sum
    of the low bits slightly better than XOR on average because it accounts
    for the "both bits set" case saturating upward.
    """

    width: int
    approximate_bits: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not 0 <= self.approximate_bits <= self.width:
            raise ValueError("approximate_bits must lie within [0, width]")

    def add(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Approximate addition."""
        a, b = _validate_operands(in1, in2, self.width)
        k = self.approximate_bits
        mask = (1 << k) - 1
        low = (a & mask) | (b & mask)
        high = ((a >> k) + (b >> k)) << k
        return high | low


@dataclasses.dataclass(frozen=True)
class SpeculativeSegmentAdder:
    """Speculative adder with a bounded carry look-back window (ACA/ETAII style).

    The carry into bit ``i`` is computed from at most ``window`` lower-order
    bit positions, i.e. every carry chain longer than ``window`` is broken --
    the *design-time* twin of the VOS carry-truncation model, except the cut
    length is fixed instead of drawn per input from a calibrated
    distribution.

    Attributes
    ----------
    width:
        Operand width in bits.
    window:
        Carry look-back window length (``window >= width`` makes it exact).
    """

    width: int
    window: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.window < 0:
            raise ValueError("window must be non-negative")

    def add(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Approximate addition with bounded carry look-back."""
        from repro.core.carry_model import carry_truncated_add

        a, b = _validate_operands(in1, in2, self.width)
        budget = min(self.window, self.width)
        return carry_truncated_add(a, b, self.width, budget)


@dataclasses.dataclass(frozen=True)
class PrunedAdder:
    """Probabilistic-pruning style baseline [11]: drop the lowest result bits.

    The ``pruned_bits`` least-significant result bits are tied to zero (their
    logic cones are removed from the design); the remaining bits are exact.
    """

    width: int
    pruned_bits: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not 0 <= self.pruned_bits <= self.width:
            raise ValueError("pruned_bits must lie within [0, width]")

    def add(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Approximate addition with the low result bits removed."""
        a, b = _validate_operands(in1, in2, self.width)
        exact = a + b
        return exact & ~((1 << self.pruned_bits) - 1)


#: Registry of baseline constructors: name -> callable(width, parameter).
BASELINE_ADDERS = {
    "lsb_truncated": lambda width, parameter: LsbTruncatedAdder(width, parameter),
    "lower_or": lambda width, parameter: LowerOrAdder(width, parameter),
    "speculative": lambda width, parameter: SpeculativeSegmentAdder(width, parameter),
    "pruned": lambda width, parameter: PrunedAdder(width, parameter),
}


def build_baseline(name: str, width: int, parameter: int):
    """Build a baseline approximate adder by registry name.

    Parameters
    ----------
    name:
        One of :data:`BASELINE_ADDERS`.
    width:
        Operand width in bits.
    parameter:
        The baseline's single knob (approximate bits / window / pruned bits).
    """
    try:
        constructor = BASELINE_ADDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown baseline {name!r}; available: {', '.join(sorted(BASELINE_ADDERS))}"
        ) from None
    return constructor(width, parameter)
