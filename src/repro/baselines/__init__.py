"""Baseline approximate adders from the paper's related-work section.

Section II of the paper surveys design-time approximation schemes and argues
that VOS-based approximation is preferable because it is *dynamic* (the
energy/accuracy point can be moved at run time) while design-time schemes are
"rigid".  To make that comparison quantitative, this package implements the
main design-time baselines at functional level:

* :class:`LsbTruncatedAdder`    -- the accurate/approximate split of [5]/[7]:
  the ``k`` least-significant bits are approximated (carry chain cut), the
  upper ``n - k`` bits are exact.
* :class:`LowerOrAdder`         -- a classical LSB-OR approximate adder: the
  low part is computed with bitwise OR (no carries at all).
* :class:`SpeculativeSegmentAdder` -- an ACA/ETAII-style speculative adder:
  every output bit is computed from a bounded window of lower-order inputs,
  which is the design-time analogue of the paper's carry-chain truncation.
* :class:`PrunedAdder`          -- probabilistic-pruning style baseline [11]:
  the lowest ``k`` result bits are dropped (tied to zero) entirely.

All baselines expose the same ``add(in1, in2)`` vectorised interface as
:class:`repro.core.modified_adder.ApproximateAdderModel`, so the comparison
benchmarks and the application layer can swap them in directly.
"""

from repro.baselines.static_adders import (
    LsbTruncatedAdder,
    LowerOrAdder,
    SpeculativeSegmentAdder,
    PrunedAdder,
    BASELINE_ADDERS,
    build_baseline,
)

__all__ = [
    "LsbTruncatedAdder",
    "LowerOrAdder",
    "SpeculativeSegmentAdder",
    "PrunedAdder",
    "BASELINE_ADDERS",
    "build_baseline",
]
