"""Typed result objects returned by :meth:`Session.run`.

Each workflow returns structured data -- characterizations, series, frontier
points, distribution statistics -- never printed text.  The ``render()``
methods lower a result to exactly the text the CLI has always printed (the
CLI is a thin adapter: parse args, build job, ``session.run``, print
``result.render()``), and ``to_json()`` serialises the structured data for
downstream tooling (the CLI's ``--json`` mode), so nothing ever needs to
scrape the tables.

Results of sweep-running jobs additionally carry an optional
:class:`~repro.core.resilience.ExecutionReport` in their ``execution``
field -- the fault-recovery accounting of the run (retries, requeues,
fallbacks, recovered shards, wall time lost).  It is deliberately *not*
part of ``render()``: rendered tables stay byte-identical whether or not
faults were recovered (the CLI prints a faulted report to stderr instead).

Every result also carries an optional :class:`~repro.obs.report.RunReport`
in its ``run`` field -- the work accounting :meth:`Session.run` attaches
(simulated units, the execution report, store counter deltas).  It *is*
part of ``to_json()`` under the ``"run"`` key: the report holds counters
only (never wall-clock values or trace paths), so JSON documents stay
byte-identical between traced and untraced runs, and identical between
fault-free and fault-recovered runs of the same work.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.analysis.faults import FaultCoverageSummary, render_fault_summary
from repro.analysis.figures import (
    Fig5Series,
    fig8_ber_energy_series,
    frontier_series,
    render_fig5,
    render_fig8,
    render_frontier,
)
from repro.analysis.tables import (
    RankedConfiguration,
    render_ranked_configurations,
    render_table4,
)
from repro.analysis.variation import (
    render_variation_table,
    render_yield_series,
    yield_vs_vdd_series,
)
from repro.core.carry_model import CarryProbabilityTable
from repro.core.characterization import AdderCharacterization, TriadCharacterization
from repro.core.dataset import characterization_to_dict
from repro.core.energy import EfficiencySummary
from repro.core.resilience import ExecutionReport
from repro.core.store import (
    StoreDiskStats,
    StoreMigrateReport,
    StoreVerifyReport,
)
from repro.core.triad import OperatingTriad
from repro.explore.search import SearchResult
from repro.obs.report import RunReport
from repro.simulation.fault_injection import FaultSimulationResult
from repro.synthesis.report import render_synthesis_table
from repro.synthesis.synthesize import SynthesisReport
from repro.variation.montecarlo import MonteCarloConfig
from repro.variation.stats import TriadVariationResult


def _triad_json(triad: OperatingTriad) -> dict[str, float]:
    return {"tclk": triad.tclk, "vdd": triad.vdd, "vbb": triad.vbb}


def _run_json(run: RunReport | None) -> dict[str, Any] | None:
    """The ``"run"`` value every result's ``to_json()`` carries."""
    return run.to_json() if run is not None else None


@dataclasses.dataclass(frozen=True)
class SynthesizeResult:
    """Table II style synthesis reports."""

    reports: tuple[SynthesisReport, ...]
    run: RunReport | None = None

    def render(self) -> str:
        """The Table II text table."""
        return render_synthesis_table(self.reports)

    def to_json(self) -> dict[str, Any]:
        """Structured reports (one record per operator)."""
        return {
            "reports": [dataclasses.asdict(report) for report in self.reports],
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class CharacterizeResult:
    """One operator's characterization over its triad grid."""

    characterization: AdderCharacterization
    output: str | None = None
    execution: ExecutionReport | None = None
    run: RunReport | None = None

    def render(self) -> str:
        """The Fig. 8 series table (plus the save note when persisted)."""
        text = render_fig8(fig8_ber_energy_series(self.characterization))
        if self.output:
            text += f"\n\nsaved characterization to {self.output}"
        return text

    def to_json(self) -> dict[str, Any]:
        """The characterization dataset document plus the ``"run"`` report.

        The dataset part is exactly the ``--output`` file format; the
        ``"run"`` key rides on top (and is absent from saved datasets).
        """
        document = characterization_to_dict(self.characterization)
        document["run"] = _run_json(self.run)
        return document


def _efficiency_summary_json(entry: EfficiencySummary) -> dict[str, Any]:
    return dataclasses.asdict(entry)


@dataclasses.dataclass(frozen=True)
class Table4Result:
    """Table IV aggregation over one or more characterizations."""

    characterizations: dict[str, AdderCharacterization]
    summaries: dict[str, list[EfficiencySummary]]
    execution: ExecutionReport | None = None
    run: RunReport | None = None

    def render(self) -> str:
        """The Table IV text table."""
        return render_table4(self.summaries)

    def to_json(self) -> dict[str, Any]:
        """Structured per-benchmark BER-range summaries."""
        return {
            "summaries": {
                name: [_efficiency_summary_json(entry) for entry in rows]
                for name, rows in self.summaries.items()
            },
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class Fig5Result:
    """Per-bit BER profile of one operator under supply scaling."""

    operator: str
    width: int
    series: tuple[Fig5Series, ...]
    execution: ExecutionReport | None = None
    run: RunReport | None = None

    def render(self) -> str:
        """The per-bit BER text table (one row per supply voltage)."""
        return render_fig5(self.series, self.width)

    def to_json(self) -> dict[str, Any]:
        """Structured series (BER fractions per output bit, LSB first)."""
        return {
            "operator": self.operator,
            "width": self.width,
            "series": [
                {
                    "vdd": entry.vdd,
                    "ber_per_bit": [float(v) for v in np.asarray(entry.ber_per_bit)],
                }
                for entry in self.series
            ],
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class CalibrateResult:
    """Algorithm 1 calibration outcome at one operating triad."""

    entry: TriadCharacterization
    table: CarryProbabilityTable
    mean_best_distance: float
    output: str | None = None
    execution: ExecutionReport | None = None
    run: RunReport | None = None

    def render(self) -> str:
        """The calibration summary line (plus the save note when persisted)."""
        lines = [
            f"triad {self.entry.label()}: hardware BER "
            f"{self.entry.ber_percent:.2f}%, "
            f"mean best distance {self.mean_best_distance:.3f}"
        ]
        if self.output:
            lines.append(f"saved probability table to {self.output}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """Structured calibration outcome including the probability table."""
        return {
            "triad": _triad_json(self.entry.triad),
            "ber": self.entry.ber,
            "mean_best_distance": self.mean_best_distance,
            "width": self.table.width,
            "matrix": np.asarray(self.table.matrix).tolist(),
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class SpeculateResult:
    """Accurate/approximate operating modes under an error margin."""

    characterization: AdderCharacterization
    margin: float
    accurate: TriadCharacterization
    approximate: TriadCharacterization
    run: RunReport | None = None

    def _saving(self, entry: TriadCharacterization) -> float:
        return self.characterization.energy_efficiency_of(entry)

    def render(self) -> str:
        """The two-mode report."""
        return "\n".join(
            [
                f"error margin: {self.margin * 100:.1f}% BER",
                f"accurate mode   : {self.accurate.label():<24} "
                f"BER {self.accurate.ber_percent:6.2f}% "
                f"saving {self._saving(self.accurate) * 100:6.1f}%",
                f"approximate mode: {self.approximate.label():<24} "
                f"BER {self.approximate.ber_percent:6.2f}% "
                f"saving {self._saving(self.approximate) * 100:6.1f}%",
            ]
        )

    def to_json(self) -> dict[str, Any]:
        """Structured mode selection."""

        def mode(entry: TriadCharacterization) -> dict[str, Any]:
            return {
                "triad": _triad_json(entry.triad),
                "ber": entry.ber,
                "energy_saving": self._saving(entry),
            }

        return {
            "margin": self.margin,
            "accurate": mode(self.accurate),
            "approximate": mode(self.approximate),
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class ExploreResult:
    """Design-space search outcome: frontier, ranking, and run notes."""

    search: SearchResult
    ranked: tuple[RankedConfiguration, ...]
    notes: tuple[str, ...] = ()
    frontier_path: str | None = None
    execution: ExecutionReport | None = None
    run: RunReport | None = None

    def render(self) -> str:
        """Notes, run summary, frontier table and ranked-configuration table."""
        result = self.search
        lines = list(self.notes)
        lines.append(
            f"strategy {result.strategy}: {result.total_candidates} candidates, "
            f"{result.screening_evaluations} screened at "
            f"{result.screen_vectors} vectors, "
            f"{result.full_evaluations} evaluated at {result.full_vectors} vectors"
        )
        if result.evaluated_candidates:
            lines.append(
                "paper-fidelity evaluations: "
                + ", ".join(result.evaluated_candidates)
            )
        lines.append("")
        lines.append(render_frontier(frontier_series(result.frontier)))
        lines.append("")
        lines.append(render_ranked_configurations(self.ranked))
        if self.frontier_path:
            lines.append("")
            lines.append(f"saved frontier to {self.frontier_path}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """Structured search outcome (frontier document plus ranking)."""
        result = self.search
        return {
            "strategy": result.strategy,
            "seed": result.seed,
            "total_candidates": result.total_candidates,
            "screened_candidates": list(result.screened_candidates),
            "evaluated_candidates": list(result.evaluated_candidates),
            "full_vectors": result.full_vectors,
            "screen_vectors": result.screen_vectors,
            "frontier": result.frontier.to_json(),
            "ranked": [dataclasses.asdict(row) for row in self.ranked],
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Monte Carlo variation characterization over a supply sweep."""

    operator: str
    config: MonteCarloConfig
    n_vectors: int
    margin: float
    results: tuple[TriadVariationResult, ...]
    execution: ExecutionReport | None = None
    run: RunReport | None = None

    def render(self) -> str:
        """Run header, distribution table, and yield-vs-Vdd series."""
        model = self.config.model
        return "\n".join(
            [
                f"{self.operator} @ corner {self.config.corner.value}: "
                f"{self.config.n_samples} samples, seed {self.config.seed}, "
                f"sigma_vt {model.sigma_vt * 1e3:g} mV, "
                f"sigma_k {model.sigma_current_factor * 100:g}%, "
                f"{self.n_vectors} vectors",
                "",
                render_variation_table(self.results, self.margin),
                "",
                render_yield_series(
                    yield_vs_vdd_series(self.results, self.margin), self.margin
                ),
            ]
        )

    def to_json(self) -> dict[str, Any]:
        """Structured distribution/yield statistics per triad."""
        model = self.config.model
        return {
            "operator": self.operator,
            "corner": self.config.corner.value,
            "samples": self.config.n_samples,
            "seed": self.config.seed,
            "sigma_vt": model.sigma_vt,
            "sigma_current": model.sigma_current_factor,
            "n_vectors": self.n_vectors,
            "margin": self.margin,
            "triads": [
                {
                    "triad": _triad_json(result.triad),
                    "ber": dataclasses.asdict(result.ber),
                    "energy": dataclasses.asdict(result.energy),
                    "yield": result.yield_at(self.margin),
                }
                for result in self.results
            ],
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class FaultSweepResult:
    """Stuck-at fault campaign outcome."""

    operator: str
    n_vectors: int
    results: tuple[FaultSimulationResult, ...]
    summary: FaultCoverageSummary
    execution: ExecutionReport | None = None
    run: RunReport | None = None

    def render(self) -> str:
        """The campaign coverage report."""
        return render_fault_summary(self.operator, self.n_vectors, self.summary)

    def to_json(self) -> dict[str, Any]:
        """Structured per-fault outcomes plus the coverage summary."""
        return {
            "operator": self.operator,
            "n_vectors": self.n_vectors,
            "coverage": self.summary.coverage,
            "detected": self.summary.detected,
            "n_faults": self.summary.n_faults,
            "undetected": list(self.summary.undetected),
            "faults": [
                {
                    "fault": result.fault.label(),
                    "detected": result.detected,
                    "ber": result.ber,
                    "faulty_vector_fraction": result.faulty_vector_fraction,
                }
                for result in self.results
            ],
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class StoreStatsResult:
    """Entry count and on-disk footprint of the result store."""

    root: str
    stats: StoreDiskStats
    io_errors: int = 0
    run: RunReport | None = None

    def render(self) -> str:
        """The ``repro store stats`` report."""
        lines = [
            f"store root : {self.root}",
            f"entries    : {self.stats.entries}",
            f"total bytes: {self.stats.total_bytes}",
        ]
        if self.stats.entries:
            span = (self.stats.newest_mtime or 0.0) - (self.stats.oldest_mtime or 0.0)
            lines.append(f"age span   : {span:.0f} s between oldest and newest entry")
        if self.stats.quarantined:
            lines.append(f"quarantined: {self.stats.quarantined} corrupt entries")
        if self.io_errors:
            lines.append(f"io errors  : {self.io_errors}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """Structured store statistics."""
        return {
            "root": self.root,
            **dataclasses.asdict(self.stats),
            "io_errors": self.io_errors,
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class StoreVerifyResult:
    """Outcome of an fsck pass over the result store."""

    root: str
    report: StoreVerifyReport
    run: RunReport | None = None

    def render(self) -> str:
        """The ``repro store verify`` report."""
        lines = [
            f"store root : {self.root}",
            f"scanned    : {self.report.scanned}",
            f"valid      : {self.report.valid}",
            f"quarantined: {self.report.quarantined}",
        ]
        if self.report.io_errors:
            lines.append(f"io errors  : {self.report.io_errors}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """Structured verification outcome."""
        return {
            "root": self.root,
            **dataclasses.asdict(self.report),
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class StoreMigrateResult:
    """Outcome of migrating the result store to the current layout."""

    root: str
    report: StoreMigrateReport
    run: RunReport | None = None

    def render(self) -> str:
        """The ``repro store migrate`` report."""
        lines = [
            f"store root : {self.root}",
            f"migrated   : {self.report.migrated}",
        ]
        if self.report.quarantined:
            lines.append(f"quarantined: {self.report.quarantined}")
        if self.report.io_errors:
            lines.append(f"io errors  : {self.report.io_errors}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """Structured migration outcome."""
        return {
            "root": self.root,
            **dataclasses.asdict(self.report),
            "run": _run_json(self.run),
        }


@dataclasses.dataclass(frozen=True)
class StorePruneResult:
    """Outcome of bounding the result store."""

    root: str
    removed: int
    stats: StoreDiskStats
    run: RunReport | None = None

    def render(self) -> str:
        """The ``repro store prune`` report line."""
        return (
            f"pruned {self.removed} entries; {self.stats.entries} entries "
            f"({self.stats.total_bytes} bytes) remain in {self.root}"
        )

    def to_json(self) -> dict[str, Any]:
        """Structured prune outcome."""
        return {
            "root": self.root,
            "removed": self.removed,
            **dataclasses.asdict(self.stats),
            "run": _run_json(self.run),
        }
