"""Typed Session/Job API: the programmatic facade over every workflow.

Quickstart::

    from repro.api import CharacterizeJob, PatternOptions, Session

    session = Session(store=None)           # store="default" persists sweeps
    result = session.run(
        CharacterizeJob(operator="rca8", pattern=PatternOptions(vectors=2000))
    )
    for entry in result.characterization.sorted_by_energy():
        print(entry.label(), entry.ber_percent, entry.energy_per_operation_pj)

Batch execution with cross-job dedup::

    batch = session.run_batch([
        CharacterizeJob(operator="rca8"),
        Fig5Job(operator="rca8"),           # shares the rca8 sweep units
    ])
    print(batch.report.render())

The package is import-light: submodules load lazily, so the low layers
(e.g. :mod:`repro.explore.space`) can import :mod:`repro.api.spec` -- the
single source of operator-name parsing -- without a circular import.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    # spec
    "OperatorSpec": "repro.api.spec",
    "parse_circuit_spec": "repro.api.spec",
    "parse_windows": "repro.api.spec",
    # options
    "PatternOptions": "repro.api.options",
    "StoreOptions": "repro.api.options",
    "SweepOptions": "repro.api.options",
    # jobs
    "CalibrateJob": "repro.api.jobs",
    "CharacterizeJob": "repro.api.jobs",
    "ExploreJob": "repro.api.jobs",
    "FaultSweepJob": "repro.api.jobs",
    "Fig5Job": "repro.api.jobs",
    "Job": "repro.api.jobs",
    "JOB_TYPES": "repro.api.jobs",
    "MonteCarloJob": "repro.api.jobs",
    "SpeculateJob": "repro.api.jobs",
    "StoreMigrateJob": "repro.api.jobs",
    "StorePruneJob": "repro.api.jobs",
    "StoreStatsJob": "repro.api.jobs",
    "StoreVerifyJob": "repro.api.jobs",
    "SynthesizeJob": "repro.api.jobs",
    "Table4Job": "repro.api.jobs",
    "job_from_json": "repro.api.jobs",
    "job_to_json": "repro.api.jobs",
    "job_type_name": "repro.api.jobs",
    "jobs_from_document": "repro.api.jobs",
    # results
    "CalibrateResult": "repro.api.results",
    "CharacterizeResult": "repro.api.results",
    "ExploreResult": "repro.api.results",
    "FaultSweepResult": "repro.api.results",
    "Fig5Result": "repro.api.results",
    "MonteCarloResult": "repro.api.results",
    "SpeculateResult": "repro.api.results",
    "StoreMigrateResult": "repro.api.results",
    "StorePruneResult": "repro.api.results",
    "StoreStatsResult": "repro.api.results",
    "StoreVerifyResult": "repro.api.results",
    "SynthesizeResult": "repro.api.results",
    "Table4Result": "repro.api.results",
    # session
    "BatchReport": "repro.api.session",
    "BatchResult": "repro.api.session",
    "DEFAULT_STORE": "repro.api.session",
    "Session": "repro.api.session",
    "SessionError": "repro.api.session",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
