"""Operator-spec vocabulary of the job API.

The canonical grammar -- :class:`OperatorSpec`, :func:`parse_circuit_spec`,
:func:`parse_windows` -- is implemented in
:mod:`repro.circuits.operators`, in the circuits layer right beside the
generators it lowers to, so that both this package and lower layers (the
design-space module validates its candidates with the same spec) depend
strictly downward.  This module is the API-facing name for it.
"""

from __future__ import annotations

from repro.circuits.operators import (
    OperatorSpec,
    parse_circuit_spec,
    parse_windows,
)

__all__ = ["OperatorSpec", "parse_circuit_spec", "parse_windows"]
