"""Shared option vocabulary of the job layer.

Three small dataclasses replace the per-command argparse plumbing the CLI
used to hand-wire (``_add_pattern_arguments``, ``_add_sweep_arguments``,
``_resolve_store``): every job that generates stimulus carries a
:class:`PatternOptions`, every job that sweeps carries a
:class:`SweepOptions`, and a :class:`Session` is built from a
:class:`StoreOptions`.  All three are JSON-round-trippable so job-spec files
(``repro batch``) use exactly the same vocabulary.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.core.resilience import FAILURE_ACTIONS, ExecutionPolicy
from repro.core.store import SweepResultStore
from repro.simulation.patterns import PATTERN_GENERATORS, PatternConfig

#: Default stimulus size of the CLI commands (the paper uses 20 000).
DEFAULT_VECTORS = 4000

#: Default stimulus seed (the year of the paper).
DEFAULT_SEED = 2017


@dataclasses.dataclass(frozen=True)
class PatternOptions:
    """Stimulus configuration of a job (the ``--pattern/--vectors/--seed``
    vocabulary).

    Attributes
    ----------
    kind:
        Pattern-generator name (see
        :data:`repro.simulation.patterns.PATTERN_GENERATORS`).
    vectors:
        Number of operand pairs.
    seed:
        Seed of the dedicated stimulus generator.
    """

    kind: str = "uniform"
    vectors: int = DEFAULT_VECTORS
    seed: int = DEFAULT_SEED

    def config(self, width: int) -> PatternConfig:
        """Lower the options to a concrete :class:`PatternConfig`.

        Validation (positive vector count, known generator kind) happens
        here, with the messages the simulation layer has always used.
        """
        if self.kind not in PATTERN_GENERATORS:
            raise ValueError(
                f"unknown pattern kind {self.kind!r}; "
                f"available: {', '.join(sorted(PATTERN_GENERATORS))}"
            )
        return PatternConfig(
            n_vectors=self.vectors, width=width, seed=self.seed, kind=self.kind
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "PatternOptions":
        """Inverse of :meth:`to_json` (unknown keys are rejected)."""
        return cls(**_known_fields(cls, data))


@dataclasses.dataclass(frozen=True)
class SweepOptions:
    """Executor policy of a sweep-running job (the ``--jobs`` /
    ``--shard-timeout`` / ``--max-retries`` / ``--on-worker-failure``
    vocabulary).

    Attributes
    ----------
    jobs:
        Worker processes for the sweep; ``1`` executes in-process.  Results
        are bit-identical for every value -- and for every fault-recovery
        path the resilience fields below can trigger.
    shard_timeout:
        Per-shard wall-clock budget in seconds; a shard running past it is
        failed and retried per the policy.  ``None`` disables the timeout.
    max_retries:
        Failed attempts a shard may retry before falling back to trusted
        in-process execution.  ``None`` keeps the engine default.
    on_worker_failure:
        Failure action (one of :data:`repro.core.resilience.FAILURE_ACTIONS`:
        ``retry``, ``split-and-retry``, ``serial-fallback``, ``fail``).
        ``None`` keeps the engine default (``retry``).
    shared_memory:
        Whether sharded sweeps pass the stimulus through a shared-memory
        segment instead of pickling it into every shard (see
        :mod:`repro.core.shm`).  ``None`` inherits the session default,
        which in turn follows the ``REPRO_SHM`` environment variable.
        Results are byte-identical either way.
    """

    jobs: int = 1
    shard_timeout: float | None = None
    max_retries: int | None = None
    on_worker_failure: str | None = None
    shared_memory: bool | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be non-negative (or None)")
        if (
            self.on_worker_failure is not None
            and self.on_worker_failure not in FAILURE_ACTIONS
        ):
            raise ValueError(
                f"unknown failure action {self.on_worker_failure!r}; "
                f"available: {', '.join(FAILURE_ACTIONS)}"
            )

    def policy(self) -> ExecutionPolicy | None:
        """Lower the resilience fields to an :class:`ExecutionPolicy`.

        ``None`` when every field keeps its default -- callers then inherit
        the session or engine default policy instead of overriding it.
        """
        if (
            self.shard_timeout is None
            and self.max_retries is None
            and self.on_worker_failure is None
        ):
            return None
        defaults = ExecutionPolicy()
        return ExecutionPolicy(
            max_retries=(
                defaults.max_retries
                if self.max_retries is None
                else self.max_retries
            ),
            shard_timeout_s=self.shard_timeout,
            on_failure=(
                defaults.on_failure
                if self.on_worker_failure is None
                else self.on_worker_failure
            ),
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SweepOptions":
        """Inverse of :meth:`to_json` (unknown keys are rejected)."""
        return cls(**_known_fields(cls, data))


@dataclasses.dataclass(frozen=True)
class StoreOptions:
    """Result-store selection (the ``--cache-dir/--no-cache`` vocabulary).

    Attributes
    ----------
    cache_dir:
        Store directory; ``None`` selects the default location
        (``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``).
    no_cache:
        Disable the store entirely.  Conflicts with ``cache_dir``.
    """

    cache_dir: str | None = None
    no_cache: bool = False

    def __post_init__(self) -> None:
        if self.no_cache and self.cache_dir:
            raise ValueError(
                "--no-cache conflicts with --cache-dir (disable the store "
                "or point it somewhere, not both)"
            )

    def resolve(self) -> SweepResultStore | None:
        """Open the selected store (or ``None`` when caching is disabled)."""
        if self.no_cache:
            return None
        if self.cache_dir:
            return SweepResultStore(self.cache_dir)
        return SweepResultStore.default()

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "StoreOptions":
        """Inverse of :meth:`to_json` (unknown keys are rejected)."""
        return cls(**_known_fields(cls, data))


def _known_fields(cls: type, data: Mapping[str, Any]) -> dict[str, Any]:
    names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {', '.join(sorted(unknown))}"
        )
    return dict(data)
