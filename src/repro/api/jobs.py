"""Declarative, JSON-round-trippable job objects.

A *job* is the typed request form of one workflow: everything the
:class:`~repro.api.session.Session` needs to run it, nothing about how the
result is rendered.  Jobs validate at construction (malformed operator
names, impossible windows, bad sample counts ... fail before any simulation
starts) and round-trip exactly through JSON (:func:`job_to_json` /
:func:`job_from_json`), which is the ``repro batch`` file format.

The shared vocabulary lives in :mod:`repro.api.options`
(:class:`PatternOptions`, :class:`SweepOptions`) and
:mod:`repro.api.spec` (:func:`parse_circuit_spec`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence, Union

from repro.api.options import DEFAULT_SEED, DEFAULT_VECTORS, PatternOptions, SweepOptions
from repro.api.spec import OperatorSpec, parse_circuit_spec, parse_windows
from repro.core.triad import PAPER_SUPPLY_VOLTAGES, OperatingTriad
from repro.explore.search import SEARCH_STRATEGIES
from repro.explore.space import DesignSpace, TriadSpec
from repro.technology.corners import GateVariationModel, ProcessCorner
from repro.variation.montecarlo import MonteCarloConfig

#: Calibration distance metrics accepted by :class:`CalibrateJob`.
CALIBRATION_METRICS = ("mse", "hamming", "weighted_hamming")


def _validate_operator(name: str, pattern: PatternOptions | None = None) -> OperatorSpec:
    spec = parse_circuit_spec(name)
    if pattern is not None:
        pattern.config(spec.width)  # validates vectors/kind with the usual messages
    return spec


@dataclasses.dataclass(frozen=True)
class SynthesizeJob:
    """Table II style synthesis report over a set of operators."""

    operators: tuple[str, ...] = ("rca8", "bka8", "rca16", "bka16")

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("operators must not be empty")
        for name in self.operators:
            parse_circuit_spec(name)

    @property
    def specs(self) -> tuple[OperatorSpec, ...]:
        """The parsed operator specs, in declaration order."""
        return tuple(parse_circuit_spec(name) for name in self.operators)


@dataclasses.dataclass(frozen=True)
class CharacterizeJob:
    """Characterize one operator over its triad grid (Fig. 8 data)."""

    operator: str = "rca8"
    pattern: PatternOptions = dataclasses.field(default_factory=PatternOptions)
    sweep: SweepOptions | None = None
    output: str | None = None
    keep_measurements: bool = False

    def __post_init__(self) -> None:
        _validate_operator(self.operator, self.pattern)

    @property
    def spec(self) -> OperatorSpec:
        """The parsed operator spec."""
        return parse_circuit_spec(self.operator)


@dataclasses.dataclass(frozen=True)
class Table4Job:
    """Table IV aggregation from datasets and/or on-the-fly operator names.

    ``datasets`` entries are characterization JSON files or operator names
    (``"rca8"``); names are characterized with ``vectors`` uniform vectors
    at ``seed``, exactly like ``repro table4``.
    """

    datasets: tuple[str, ...]
    vectors: int = DEFAULT_VECTORS
    seed: int = DEFAULT_SEED
    sweep: SweepOptions | None = None

    def __post_init__(self) -> None:
        if not self.datasets:
            raise ValueError("datasets must not be empty")
        if self.vectors <= 0:
            raise ValueError("n_vectors must be positive")


@dataclasses.dataclass(frozen=True)
class Fig5Job:
    """Per-bit BER profile of one operator under supply scaling."""

    operator: str = "rca8"
    supply_voltages: tuple[float, ...] = (0.8, 0.7, 0.6, 0.5)
    vectors: int = DEFAULT_VECTORS
    seed: int = DEFAULT_SEED
    sweep: SweepOptions | None = None

    def __post_init__(self) -> None:
        spec = _validate_operator(self.operator)
        PatternOptions(vectors=self.vectors, seed=self.seed).config(spec.width)
        if not self.supply_voltages:
            raise ValueError("supply_voltages must not be empty")
        if any(vdd <= 0 for vdd in self.supply_voltages):
            raise ValueError("vdd must be positive")

    @property
    def spec(self) -> OperatorSpec:
        """The parsed operator spec."""
        return parse_circuit_spec(self.operator)


@dataclasses.dataclass(frozen=True)
class CalibrateJob:
    """Algorithm 1 calibration of the carry probability table at one triad."""

    operator: str
    tclk_ns: float
    vdd: float
    vbb: float = 0.0
    metric: str = "mse"
    pattern: PatternOptions = dataclasses.field(default_factory=PatternOptions)
    sweep: SweepOptions | None = None
    output: str | None = None

    def __post_init__(self) -> None:
        _validate_operator(self.operator, self.pattern)
        self.triad()
        if self.metric not in CALIBRATION_METRICS:
            raise ValueError(
                f"unknown calibration metric {self.metric!r}; "
                f"available: {', '.join(CALIBRATION_METRICS)}"
            )

    @property
    def spec(self) -> OperatorSpec:
        """The parsed operator spec."""
        return parse_circuit_spec(self.operator)

    def triad(self) -> OperatingTriad:
        """The operating triad the calibration measures at."""
        return OperatingTriad(tclk=self.tclk_ns * 1e-9, vdd=self.vdd, vbb=self.vbb)


@dataclasses.dataclass(frozen=True)
class SpeculateJob:
    """Accurate/approximate operating modes for an error margin.

    ``dataset`` is a characterization JSON file (``repro characterize
    --output`` / :func:`repro.core.dataset.save_characterization`).
    """

    dataset: str
    margin: float = 0.10

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ValueError("dataset must not be empty")
        if not 0.0 <= self.margin <= 1.0:
            raise ValueError("margin must lie within [0, 1] (a BER fraction)")


@dataclasses.dataclass(frozen=True)
class ExploreJob:
    """Design-space search for the BER/energy Pareto frontier."""

    architectures: tuple[str, ...] = ("rca", "bka")
    widths: tuple[int, ...] = (8, 16)
    windows: tuple[int | None, ...] = (None,)
    clock_scales: tuple[float, ...] | None = None
    supply_voltages: tuple[float, ...] | None = None
    body_bias_voltages: tuple[float, ...] | None = None
    strategy: str = "successive-halving"
    budget: int | None = None
    seed: int = DEFAULT_SEED
    vectors: int = DEFAULT_VECTORS
    screen_vectors: int | None = None
    max_ber: float | None = None
    top: int = 10
    frontier: str | None = None
    robust_quantile: float | None = None
    robust_samples: int | None = None
    sweep: SweepOptions | None = None

    def __post_init__(self) -> None:
        if self.strategy not in SEARCH_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"available: {', '.join(sorted(SEARCH_STRATEGIES))}"
            )
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.vectors <= 0:
            raise ValueError("full_vectors must be positive")
        if self.screen_vectors is not None and self.screen_vectors <= 0:
            raise ValueError("screen_vectors must be positive")
        if self.robust_samples is not None and self.robust_quantile is None:
            raise ValueError("--robust-samples requires --robust-quantile")
        if self.robust_quantile is not None:
            if not 0.0 < self.robust_quantile < 1.0:
                raise ValueError(
                    "--robust-quantile must lie strictly within (0, 1)"
                )
            self.variation_config()
        space = self.space()
        if not space.candidates():
            skipped = "; ".join(
                f"window {window} does not fit width {width} "
                f"(needs window < width)"
                for width, window in space.skipped_windows()
            )
            raise ValueError(
                "the declared axes produce no candidates "
                "(every window was skipped and no 'none' entry is present)"
                + (f": {skipped}" if skipped else "")
            )

    def triad_spec(self) -> TriadSpec:
        """The triad axes of the declared space."""
        if self.clock_scales is not None:
            return TriadSpec(
                clock_scales=tuple(self.clock_scales),
                supply_voltages=(
                    tuple(self.supply_voltages)
                    if self.supply_voltages
                    else TriadSpec().supply_voltages
                ),
                body_bias_voltages=(
                    tuple(self.body_bias_voltages)
                    if self.body_bias_voltages
                    else TriadSpec().body_bias_voltages
                ),
            )
        if self.supply_voltages or self.body_bias_voltages:
            raise ValueError("--vdd/--vbb require --clock-scales (a dense triad grid)")
        return TriadSpec()

    def space(self) -> DesignSpace:
        """The declared design space (windows already parsed)."""
        return DesignSpace.from_axes(
            architectures=self.architectures,
            widths=self.widths,
            speculation_windows=parse_windows(self.windows),
            triads=self.triad_spec(),
        )

    def variation_config(self) -> MonteCarloConfig | None:
        """Monte Carlo configuration of a robust run, or ``None`` (nominal)."""
        if self.robust_quantile is None:
            return None
        return MonteCarloConfig(
            n_samples=32 if self.robust_samples is None else self.robust_samples,
            seed=self.seed,
        )


@dataclasses.dataclass(frozen=True)
class MonteCarloJob:
    """Monte Carlo variation characterization: BER distributions and yield
    vs supply voltage at a process corner."""

    operator: str = "rca8"
    pattern: PatternOptions = dataclasses.field(default_factory=PatternOptions)
    corner: str = ProcessCorner.TYPICAL.value
    samples: int = 64
    sigma_vt: float = GateVariationModel().sigma_vt
    sigma_current: float = GateVariationModel().sigma_current_factor
    margin: float = 0.02
    supply_voltages: tuple[float, ...] = PAPER_SUPPLY_VOLTAGES
    sweep: SweepOptions | None = None

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("--samples must be positive")
        if not 0.0 <= self.margin <= 1.0:
            raise ValueError("--margin must lie within [0, 1] (a BER fraction)")
        _validate_operator(self.operator, self.pattern)
        self.config()
        if any(vdd <= 0 for vdd in self.supply_voltages):
            raise ValueError("vdd must be positive")

    @property
    def spec(self) -> OperatorSpec:
        """The parsed operator spec."""
        return parse_circuit_spec(self.operator)

    def config(self) -> MonteCarloConfig:
        """The run's Monte Carlo configuration (corner, model, samples)."""
        return MonteCarloConfig(
            corner=ProcessCorner(self.corner),
            model=GateVariationModel(
                sigma_current_factor=self.sigma_current, sigma_vt=self.sigma_vt
            ),
            n_samples=self.samples,
            seed=self.pattern.seed,
        )


@dataclasses.dataclass(frozen=True)
class FaultSweepJob:
    """Single-stuck-at fault campaign over the full fault universe."""

    operator: str = "rca8"
    pattern: PatternOptions = dataclasses.field(default_factory=PatternOptions)
    sweep: SweepOptions | None = None

    def __post_init__(self) -> None:
        _validate_operator(self.operator, self.pattern)

    @property
    def spec(self) -> OperatorSpec:
        """The parsed operator spec."""
        return parse_circuit_spec(self.operator)


@dataclasses.dataclass(frozen=True)
class StoreStatsJob:
    """Entry count and on-disk footprint of the session's result store."""


@dataclasses.dataclass(frozen=True)
class StoreVerifyJob:
    """Fsck pass over the session's result store: validate every entry and
    quarantine the corrupt ones (moved aside, never silently deleted)."""


@dataclasses.dataclass(frozen=True)
class StoreMigrateJob:
    """Migrate the session's result store to the current on-disk layout
    (legacy per-entry JSON files repack into packfile segments); unreadable
    legacy entries are quarantined, never silently dropped."""


@dataclasses.dataclass(frozen=True)
class StorePruneJob:
    """Delete oldest store entries until the store fits the limits."""

    max_entries: int | None = None
    max_bytes: int | None = None
    prune_all: bool = False

    def __post_init__(self) -> None:
        if self.prune_all and (
            self.max_entries is not None or self.max_bytes is not None
        ):
            raise ValueError(
                "--all conflicts with --max-entries/--max-bytes (it already "
                "deletes everything)"
            )
        if not self.prune_all and self.max_entries is None and self.max_bytes is None:
            raise ValueError("prune needs --max-entries, --max-bytes or --all")


#: Every job type the session can run.
Job = Union[
    SynthesizeJob,
    CharacterizeJob,
    Table4Job,
    Fig5Job,
    CalibrateJob,
    SpeculateJob,
    ExploreJob,
    MonteCarloJob,
    FaultSweepJob,
    StoreStatsJob,
    StoreVerifyJob,
    StoreMigrateJob,
    StorePruneJob,
]

#: Registry mapping the JSON ``type`` tag to the job class.
JOB_TYPES: dict[str, type] = {
    "synthesize": SynthesizeJob,
    "characterize": CharacterizeJob,
    "table4": Table4Job,
    "fig5": Fig5Job,
    "calibrate": CalibrateJob,
    "speculate": SpeculateJob,
    "explore": ExploreJob,
    "montecarlo": MonteCarloJob,
    "faults": FaultSweepJob,
    "store-stats": StoreStatsJob,
    "store-verify": StoreVerifyJob,
    "store-migrate": StoreMigrateJob,
    "store-prune": StorePruneJob,
}

_TYPE_BY_CLASS = {cls: name for name, cls in JOB_TYPES.items()}


def job_type_name(job: Job) -> str:
    """The JSON ``type`` tag of a job instance."""
    try:
        return _TYPE_BY_CLASS[type(job)]
    except KeyError:
        raise ValueError(f"unknown job type {type(job).__name__!r}") from None


def job_to_json(job: Job) -> dict[str, Any]:
    """Serialise a job to a plain JSON document (with a ``type`` tag)."""
    document: dict[str, Any] = {"type": job_type_name(job)}
    document.update(dataclasses.asdict(job))
    return document


def job_from_json(data: Mapping[str, Any]) -> Job:
    """Rebuild a job from :func:`job_to_json` data (the batch-file format).

    Lists coerce back to the tuples the dataclasses declare, and nested
    ``pattern``/``sweep`` documents lower to their option dataclasses, so
    ``job_from_json(job_to_json(job)) == job`` for every job type.
    """
    if "type" not in data:
        raise ValueError("job document needs a 'type' tag")
    kind = str(data["type"])
    try:
        cls = JOB_TYPES[kind]
    except KeyError:
        raise ValueError(
            f"unknown job type {kind!r}; available: {', '.join(sorted(JOB_TYPES))}"
        ) from None
    names = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names - {"type"})
    if unknown:
        raise ValueError(f"unknown {cls.__name__} field(s): {', '.join(unknown)}")
    kwargs: dict[str, Any] = {}
    for name in names & set(data):
        value = data[name]
        if name == "pattern" and isinstance(value, Mapping):
            value = PatternOptions.from_json(value)
        elif name == "sweep" and isinstance(value, Mapping):
            value = SweepOptions.from_json(value)
        elif isinstance(value, (list, tuple)):
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)


def jobs_from_document(data: Any) -> list[Job]:
    """Read a batch document: either a bare list or ``{"jobs": [...]}``."""
    if isinstance(data, Mapping):
        entries: Sequence[Any] = data.get("jobs", ())
    else:
        entries = data
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise ValueError("a batch document is a list of jobs or {'jobs': [...]}")
    jobs = [job_from_json(entry) for entry in entries]
    if not jobs:
        raise ValueError("the batch document contains no jobs")
    return jobs
