"""The Session: one programmatic facade for every workflow.

A :class:`Session` owns the execution substrate every workflow shares -- the
standard-cell library, the (optional) persistent
:class:`~repro.core.store.SweepResultStore` behind a session-lifetime
:class:`~repro.core.store.MemoryOverlayStore`, the default worker-process
policy, and a bounded cache of built circuits/characterization flows -- and
exposes exactly two entry points:

* :meth:`Session.run` lowers one declarative job (:mod:`repro.api.jobs`)
  onto the existing orchestrators and returns a typed result
  (:mod:`repro.api.results`).  The CLI is a thin adapter over this: parse
  args, build the job, ``session.run``, print ``result.render()``.
* :meth:`Session.run_batch` plans a set of jobs together: the underlying
  sweep work units -- ``(circuit fingerprint, stimulus, triad)`` store keys,
  exactly the orchestrator's content addresses -- are fingerprinted across
  jobs, shared units are deduplicated, and the union of cold units lowers
  into one sharded executor pass per (circuit, stimulus) group before the
  jobs replay from the warm overlay.  Overlapping jobs (``characterize`` +
  ``fig5`` + ``explore`` over the same adders) therefore perform **zero**
  repeated timing simulations, which the :class:`BatchReport`'s
  planned/deduped/cache-hit/simulated counters make observable (and the
  test suite asserts via
  :func:`repro.core.sweep.simulated_unit_count`).
"""

from __future__ import annotations

import collections
import dataclasses
import pathlib
import threading
from typing import Any, Mapping, Sequence

from repro.analysis.faults import summarize_fault_results
from repro.analysis.figures import fig5_ber_per_bit
from repro.analysis.tables import ranked_configurations
from repro.api.jobs import (
    CalibrateJob,
    CharacterizeJob,
    ExploreJob,
    FaultSweepJob,
    Fig5Job,
    Job,
    MonteCarloJob,
    SpeculateJob,
    StoreMigrateJob,
    StorePruneJob,
    StoreStatsJob,
    StoreVerifyJob,
    SynthesizeJob,
    Table4Job,
)
from repro.api.options import StoreOptions
from repro.api.results import (
    CalibrateResult,
    CharacterizeResult,
    ExploreResult,
    FaultSweepResult,
    Fig5Result,
    MonteCarloResult,
    SpeculateResult,
    StoreMigrateResult,
    StorePruneResult,
    StoreStatsResult,
    StoreVerifyResult,
    SynthesizeResult,
    Table4Result,
)
from repro.api.spec import OperatorSpec, parse_circuit_spec
from repro.core import sweep as sweep_module
from repro.core.calibration import calibrate_probability_table
from repro.core.characterization import CharacterizationFlow
from repro.core.dataset import (
    load_characterization,
    save_characterization,
    save_probability_table,
)
from repro.core.energy import summarize_by_ber_range
from repro.core.resilience import (
    ExecutionPolicy,
    ExecutionReport,
    ShardExecutionError,
)
from repro.core.speculation import DynamicSpeculationController
from repro.core.store import MemoryOverlayStore, SweepResultStore
from repro.core.triad import OperatingTriad, TriadGrid
from repro.explore.evaluator import CandidateEvaluator, robust_tag
from repro.explore.frontier import ParetoFrontier
from repro.explore.search import run_search
from repro.obs import metrics
from repro.obs.report import RunReport
from repro.obs.trace import Tracer, activated, active_tracer, span
from repro.simulation.patterns import PatternConfig, generate_patterns
from repro.synthesis.synthesize import synthesize
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary
from repro.variation.montecarlo import run_montecarlo_sweep, supply_scaling_grid

#: Sentinel selecting the default on-disk store location
#: (``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``).
DEFAULT_STORE = "default"


class SessionError(ValueError):
    """A user-facing job-execution failure (bad inputs, missing files ...).

    Raised by :meth:`Session.run` for conditions the *caller* can fix --
    distinct from plain exceptions, which indicate library defects.  The
    CLI converts exactly this type into a clean one-line exit; everything
    else keeps its traceback.
    """


#: Characterization flows kept alive per session (bounded like the
#: exploration evaluator's cache: rebuilding an evicted flow costs only a
#: generator run plus a plan compile).
FLOW_CACHE_SIZE = 64


@dataclasses.dataclass(frozen=True)
class BatchReport:
    """Work accounting of one :meth:`Session.run_batch` call.

    Attributes
    ----------
    jobs:
        Number of jobs executed.
    planned_units:
        Plannable sweep work units across all jobs, *with* multiplicity --
        one unit is one ``(circuit, stimulus, triad)`` timing simulation a
        job would perform on its own.
    deduped_units:
        Units shared between jobs (``planned_units`` minus distinct store
        keys): work the batch planner eliminated outright.
    cache_hits:
        Distinct units already warm in the session store before the batch
        ran.
    simulated_units:
        Work units actually simulated by the whole batch (including
        non-plannable workloads such as Monte Carlo ranges or screening
        sweeps, which dedup through the shared session overlay instead of
        the planner).  Measured from the process-wide counter of
        :func:`repro.core.sweep.simulated_unit_count`: accurate for the
        one-batch-at-a-time usage a session supports (sessions are not
        thread-safe; see :class:`Session`), but concurrent sweeps run by
        *other* sessions in other threads of the same process would be
        attributed to this batch.
    """

    jobs: int
    planned_units: int
    deduped_units: int
    cache_hits: int
    simulated_units: int
    execution: ExecutionReport | None = None

    def render(self) -> str:
        """One-line summary (printed by ``repro batch``).

        A second line reports the merged fault-recovery accounting of the
        whole batch -- only when any sweep actually recovered from faults,
        so fault-free output stays byte-stable.
        """
        line = (
            f"batch: {self.jobs} jobs, {self.planned_units} planned sweep "
            f"units, {self.deduped_units} deduped, {self.cache_hits} warm "
            f"from store, {self.simulated_units} simulated"
        )
        if self.execution is not None and self.execution.faulted:
            return line + "\n" + self.execution.render()
        return line


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Per-job typed results plus the batch work report."""

    results: tuple[Any, ...]
    report: BatchReport


@dataclasses.dataclass(frozen=True)
class _SweepRequest:
    """One job's plannable characterization sweep (spec x stimulus x triads)."""

    spec: OperatorSpec
    pattern: PatternConfig
    triads: tuple[OperatingTriad, ...]
    keep_latched: bool
    jobs: int
    policy: ExecutionPolicy | None = None
    shared_memory: bool | None = None


class _MergedSweep:
    """Union of all requests sharing one (circuit, stimulus) identity.

    ``keep_latched`` is tracked per triad (per store key), not per group:
    one calibration triad needing latched words must not force a whole
    already-warm characterize grid -- whose cached payloads carry no
    latched words -- to re-simulate.
    """

    def __init__(self, spec: OperatorSpec, pattern: PatternConfig) -> None:
        self.spec = spec
        self.pattern = pattern
        self.triads: dict[str, tuple[OperatingTriad, bool]] = {}  # key -> (triad, keep)
        self.jobs = 1
        self.policy: ExecutionPolicy | None = None
        self.shared_memory: bool | None = None


class Session:
    """Shared execution context for the typed job API.

    A session is single-threaded state (flow cache, store overlay, batch
    accounting): run one job or batch at a time.  :meth:`run` and
    :meth:`run_batch` serialize through a reentrant lock, so a
    multi-threaded front-end (the characterization service of
    :mod:`repro.serve` funnels every batch window through one session) may
    share a session -- calls from other threads simply queue; the lock is
    reentrant because :meth:`run_batch` executes its jobs through
    :meth:`run` on the same thread.  For *parallel* execution give each
    thread its own session -- they can safely share one on-disk store,
    whose entries are content-addressed and written atomically.

    Parameters
    ----------
    library:
        Standard-cell library every simulation uses.
    store:
        The persistent result store: :data:`DEFAULT_STORE` (the default)
        opens the default location, ``None`` disables persistence (the
        session still dedups in memory), a path string / ``Path`` opens a
        store there, and a ready :class:`SweepResultStore` is used as-is.
    jobs:
        Default worker-process count for jobs that do not carry their own
        :class:`~repro.api.options.SweepOptions`.
    sta_margin:
        Clock-path pessimism factor of every characterization flow (see
        :class:`~repro.core.characterization.CharacterizationFlow`).
    policy:
        Default fault-tolerance :class:`~repro.core.resilience.ExecutionPolicy`
        for sweep-running jobs that do not override it through their
        :class:`~repro.api.options.SweepOptions`; ``None`` keeps the engine
        default (retry twice, no shard timeout).
    shared_memory:
        Default stimulus transport of sharded sweeps for jobs that do not
        override it through their SweepOptions: ``True``/``False`` force
        shared memory on/off, ``None`` (the default) follows the
        ``REPRO_SHM`` environment variable (see :mod:`repro.core.shm`).
        Results are byte-identical either way.
    trace:
        Path of a JSONL trace file (see :mod:`repro.obs.trace`): every
        :meth:`run`/:meth:`run_batch` call records a hierarchical span tree
        (session -> job -> sweep -> shard -> engine pass -> store flush)
        into it, including spans from worker processes.  ``None`` (the
        default) disables tracing entirely; results, rendered output and
        store contents are byte-identical either way.
    """

    def __init__(
        self,
        *,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
        store: SweepResultStore | str | pathlib.Path | None = DEFAULT_STORE,
        jobs: int = 1,
        sta_margin: float = 1.5,
        policy: ExecutionPolicy | None = None,
        shared_memory: bool | None = None,
        trace: str | pathlib.Path | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._library = library
        self._default_jobs = jobs
        self._sta_margin = sta_margin
        self._policy = policy
        self._shared_memory = shared_memory
        self._tracer = Tracer(str(trace)) if trace is not None else None
        if store == DEFAULT_STORE:
            backing: SweepResultStore | None = SweepResultStore.default()
        elif store is None or isinstance(store, SweepResultStore):
            backing = store
        else:
            backing = SweepResultStore(store)
        self._view = MemoryOverlayStore(backing)
        self._lock = threading.RLock()
        self._flows: collections.OrderedDict[
            OperatorSpec, CharacterizationFlow
        ] = collections.OrderedDict()

    @classmethod
    def from_options(
        cls,
        store: StoreOptions | None = None,
        *,
        jobs: int = 1,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
        sta_margin: float = 1.5,
        policy: ExecutionPolicy | None = None,
        shared_memory: bool | None = None,
        trace: str | pathlib.Path | None = None,
    ) -> "Session":
        """Build a session from the shared :class:`StoreOptions` vocabulary."""
        options = store or StoreOptions()
        return cls(
            library=library,
            store=options.resolve(),
            jobs=jobs,
            sta_margin=sta_margin,
            policy=policy,
            shared_memory=shared_memory,
            trace=trace,
        )

    # -- substrate -------------------------------------------------------------

    @property
    def library(self) -> StandardCellLibrary:
        """The session's standard-cell library."""
        return self._library

    @property
    def store(self) -> SweepResultStore | None:
        """The persistent result store (``None`` when caching is disabled)."""
        return self._view.backing

    @property
    def overlay(self) -> MemoryOverlayStore:
        """The session's in-memory hot tier over the persistent store.

        Monitoring surfaces read its :meth:`~MemoryOverlayStore.snapshot`;
        treat it as read-only.
        """
        return self._view

    @property
    def default_jobs(self) -> int:
        """Worker-process count jobs without their own SweepOptions inherit."""
        return self._default_jobs

    def flow_for(self, spec: OperatorSpec | str) -> CharacterizationFlow:
        """The (cached) characterization flow of one operator spec."""
        if isinstance(spec, str):
            spec = parse_circuit_spec(spec)
        flow = self._flows.get(spec)
        if flow is None:
            flow = CharacterizationFlow(
                spec.build(), library=self._library, sta_margin=self._sta_margin
            )
            self._flows[spec] = flow
            if len(self._flows) > FLOW_CACHE_SIZE:
                self._flows.popitem(last=False)
        else:
            self._flows.move_to_end(spec)
        return flow

    def _jobs_for(self, job: Any) -> int:
        sweep = getattr(job, "sweep", None)
        return sweep.jobs if sweep is not None else self._default_jobs

    def _policy_for(self, job: Any) -> ExecutionPolicy | None:
        """The job's execution policy: its SweepOptions override, else the
        session default (``None`` lets the engine default apply)."""
        sweep = getattr(job, "sweep", None)
        override = sweep.policy() if sweep is not None else None
        return override if override is not None else self._policy

    def _shm_for(self, job: Any) -> bool | None:
        """The job's stimulus-transport choice: its SweepOptions override,
        else the session default (``None`` defers to ``REPRO_SHM``)."""
        sweep = getattr(job, "sweep", None)
        override = sweep.shared_memory if sweep is not None else None
        return override if override is not None else self._shared_memory

    def _require_store(self) -> SweepResultStore:
        store = self._view.backing
        if store is None:
            raise SessionError(
                "the session has no result store (constructed with store=None)"
            )
        return store

    # -- single-job execution --------------------------------------------------

    def run(self, job: Job) -> Any:
        """Run one job and return its typed result.

        A sweep that exhausts its fault-recovery options
        (:class:`~repro.core.resilience.ShardExecutionError`) surfaces as a
        :class:`SessionError`: the caller chose the policy (e.g.
        ``on_worker_failure="fail"``), so the failure is theirs to handle.

        Every result carries a :class:`~repro.obs.report.RunReport` in its
        ``run`` field -- counter-only work accounting that is identical
        whether or not the session traces.
        """
        try:
            handler = _HANDLERS[type(job)]
        except KeyError:
            raise TypeError(f"unknown job type {type(job).__name__!r}") from None
        with self._lock:
            if active_tracer() is not None:
                # Called from run_batch (or another traced scope): the
                # session span is already open; contribute only the job span.
                return self._run_job(handler, job)
            with activated(self._tracer):
                with span("session", jobs=1):
                    return self._run_job(handler, job)

    def _run_job(self, handler: Any, job: Job) -> Any:
        """Execute one job under a ``job`` span and attach its RunReport."""
        units_before = sweep_module.simulated_unit_count()
        store = self._view.backing
        store_before = store.stats._values() if store is not None else None
        with span("job", type=type(job).__name__):
            try:
                result = handler(self, job)
            except ShardExecutionError as error:
                raise SessionError(f"sweep execution failed: {error}") from None
        store_delta = None
        if store is not None and store_before is not None:
            after = store.stats._values()
            store_delta = {
                name: after[name] - before
                for name, before in store_before.items()
            }
        report = RunReport(
            simulated_units=sweep_module.simulated_unit_count() - units_before,
            execution=getattr(result, "execution", None),
            store=store_delta,
        )
        return dataclasses.replace(result, run=report)

    def _run_synthesize(self, job: SynthesizeJob) -> SynthesizeResult:
        # Synthesis only needs the netlists: build them directly instead of
        # through flow_for, which would compile a timing-simulation plan per
        # operator (and churn the flow cache) for a report that runs none.
        reports = tuple(
            synthesize(spec.build().netlist, library=self._library)
            for spec in job.specs
        )
        return SynthesizeResult(reports=reports)

    def _run_characterize(self, job: CharacterizeJob) -> CharacterizeResult:
        spec = job.spec
        flow = self.flow_for(spec)
        report = ExecutionReport()
        characterization = flow.run(
            pattern=job.pattern.config(spec.width),
            keep_measurements=job.keep_measurements,
            jobs=self._jobs_for(job),
            store=self._view,
            policy=self._policy_for(job),
            report=report,
            shm=self._shm_for(job),
        )
        if job.output:
            save_characterization(characterization, job.output)
        return CharacterizeResult(
            characterization=characterization, output=job.output, execution=report
        )

    @staticmethod
    def _classify_dataset(entry: str) -> str:
        """Classify a Table IV dataset entry.

        ``"file"`` -- an existing characterization JSON file;
        ``"missing-file"`` -- clearly meant as a file path (operator names
        are bare alnum tokens) but absent; ``"operator"`` -- an operator
        name to characterize on the fly.  The one predicate shared by the
        run path and the batch planner, so both always classify alike.
        """
        if pathlib.Path(entry).is_file():
            return "file"
        if "." in entry or "/" in entry:
            return "missing-file"
        return "operator"

    @staticmethod
    def _dataset_operator(entry: str) -> OperatorSpec:
        """Parse a Table IV operator-name entry into its spec (user-facing)."""
        try:
            return parse_circuit_spec(entry)
        except ValueError as error:
            raise SessionError(str(error)) from None

    def _run_table4(self, job: Table4Job) -> Table4Result:
        characterizations = {}
        report = ExecutionReport()
        for entry in job.datasets:
            kind = self._classify_dataset(entry)
            if kind == "file":
                characterization = load_characterization(entry)
            elif kind == "missing-file":
                raise SessionError(f"dataset file not found: {entry}")
            else:
                # Not a file: characterize the named operator on the fly
                # through the cached sweep orchestrator.
                spec = self._dataset_operator(entry)
                flow = self.flow_for(spec)
                config = PatternConfig(
                    n_vectors=job.vectors,
                    width=spec.width,
                    seed=job.seed,
                    kind="uniform",
                )
                characterization = flow.run(
                    pattern=config,
                    keep_measurements=False,
                    jobs=self._jobs_for(job),
                    store=self._view,
                    policy=self._policy_for(job),
                    report=report,
                    shm=self._shm_for(job),
                )
            characterizations[characterization.adder_name] = characterization
        summaries = {
            name: summarize_by_ber_range(characterization)
            for name, characterization in characterizations.items()
        }
        return Table4Result(
            characterizations=characterizations,
            summaries=summaries,
            execution=report,
        )

    def _run_fig5(self, job: Fig5Job) -> Fig5Result:
        spec = job.spec
        report = ExecutionReport()
        series = fig5_ber_per_bit(
            supply_voltages=tuple(job.supply_voltages),
            n_vectors=job.vectors,
            seed=job.seed,
            library=self._library,
            jobs=self._jobs_for(job),
            store=self._view,
            flow=self.flow_for(spec),
            policy=self._policy_for(job),
            report=report,
            shm=self._shm_for(job),
        )
        return Fig5Result(
            operator=spec.name,
            width=spec.width,
            series=tuple(series),
            execution=report,
        )

    def _run_calibrate(self, job: CalibrateJob) -> CalibrateResult:
        spec = job.spec
        flow = self.flow_for(spec)
        triad = job.triad()
        report = ExecutionReport()
        characterization = flow.run(
            triads=[triad],
            pattern=job.pattern.config(spec.width),
            jobs=self._jobs_for(job),
            store=self._view,
            policy=self._policy_for(job),
            report=report,
            shm=self._shm_for(job),
        )
        entry = characterization.results[0]
        measurement = characterization.measurement_for(triad)
        calibration = calibrate_probability_table(
            measurement.in1,
            measurement.in2,
            measurement.latched_words,
            spec.width,
            metric=job.metric,
        )
        if job.output:
            save_probability_table(calibration.table, job.output)
        return CalibrateResult(
            entry=entry,
            table=calibration.table,
            mean_best_distance=calibration.mean_best_distance,
            output=job.output,
            execution=report,
        )

    def _run_speculate(self, job: SpeculateJob) -> SpeculateResult:
        characterization = load_characterization(job.dataset)
        controller = DynamicSpeculationController(
            characterization, error_margin=job.margin
        )
        return SpeculateResult(
            characterization=characterization,
            margin=job.margin,
            accurate=controller.accurate_mode(),
            approximate=controller.approximate_mode(),
        )

    def _run_explore(self, job: ExploreJob) -> ExploreResult:
        space = job.space()
        notes = [
            f"note: window {window} does not fit width {width} "
            f"(needs window < width); spa{width}w{window} is not in the space"
            for width, window in space.skipped_windows()
        ]
        variation = job.variation_config()
        expected_robust = (
            None
            if variation is None
            else robust_tag(variation, job.robust_quantile)
        )
        resume, drop_note = self._load_resume_frontier(
            job.frontier, job.vectors, job.seed, expected_robust
        )
        if drop_note:
            notes.append(drop_note)
        report = ExecutionReport()
        evaluator = CandidateEvaluator(
            space,
            library=self._library,
            jobs=self._jobs_for(job),
            store=self._view,
            seed=job.seed,
            sta_margin=self._sta_margin,
            variation=variation,
            robust_quantile=(
                job.robust_quantile if job.robust_quantile is not None else 0.95
            ),
            policy=self._policy_for(job),
            report=report,
            shm=self._shm_for(job),
        )
        result = run_search(
            space,
            job.strategy,
            evaluator,
            seed=job.seed,
            budget=job.budget,
            full_vectors=job.vectors,
            screen_vectors=job.screen_vectors,
            resume=resume,
        )
        ranked = ranked_configurations(
            result.frontier, max_ber=job.max_ber, top_n=job.top
        )
        if job.frontier:
            result.frontier.save(job.frontier)
        return ExploreResult(
            search=result,
            ranked=tuple(ranked),
            notes=tuple(notes),
            frontier_path=job.frontier,
            execution=report,
        )

    @staticmethod
    def _load_resume_frontier(
        path: str | None,
        full_vectors: int,
        seed: int,
        robust: str | None,
    ) -> tuple[ParetoFrontier | None, str | None]:
        """Load a frontier file for resume, keeping one measurement per run.

        Points measured on a different stimulus (size, seed or pattern kind)
        or under a different scoring identity (nominal vs robust
        quantile-BER, or a different Monte Carlo configuration) are dropped
        with a note: a nominal BER is systematically lower than a quantile
        BER over sampled dies, so letting the two compete -- like letting a
        noisy low-vector point compete -- could evict this run's
        measurements from the frontier.
        """
        if not path:
            return None, None
        try:
            loaded = ParetoFrontier.load_or_empty(path)
        except Exception as error:  # corrupt/truncated JSON, wrong schema ...
            raise SessionError(
                f"cannot resume from frontier file {path}: {error}"
            ) from None
        matching = [
            point
            for point in loaded
            if point.n_vectors == full_vectors
            and point.seed == seed
            and point.pattern_kind == "uniform"
            and point.robust == robust
        ]
        dropped = len(loaded) - len(matching)
        note = None
        if dropped:
            note = (
                f"note: dropped {dropped} frontier point(s) measured on a "
                f"different stimulus or scoring than --vectors {full_vectors} "
                f"--seed {seed} "
                + (f"--robust-quantile (tag {robust})" if robust else "(nominal)")
            )
        return ParetoFrontier(matching), note

    def _run_montecarlo(self, job: MonteCarloJob) -> MonteCarloResult:
        spec = job.spec
        flow = self.flow_for(spec)
        config = job.config()
        pattern = job.pattern.config(spec.width)
        grid = supply_scaling_grid(flow, tuple(job.supply_voltages))
        in1, in2 = generate_patterns(pattern)
        report = ExecutionReport()
        results = run_montecarlo_sweep(
            flow.adder,
            grid,
            in1,
            in2,
            sweep_module.pattern_stimulus(pattern),
            config=config,
            library=self._library,
            jobs=self._jobs_for(job),
            store=self._view,
            policy=self._policy_for(job),
            report=report,
            shm=self._shm_for(job),
        )
        return MonteCarloResult(
            operator=flow.adder.name,
            config=config,
            n_vectors=pattern.n_vectors,
            margin=job.margin,
            results=tuple(results),
            execution=report,
        )

    def _run_faults(self, job: FaultSweepJob) -> FaultSweepResult:
        spec = job.spec
        circuit = self.flow_for(spec).adder
        pattern = job.pattern.config(spec.width)
        in1, in2 = generate_patterns(pattern)
        report = ExecutionReport()
        results = sweep_module.run_fault_sweep(
            circuit,
            in1,
            in2,
            sweep_module.pattern_stimulus(pattern),
            jobs=self._jobs_for(job),
            store=self._view,
            policy=self._policy_for(job),
            report=report,
            shm=self._shm_for(job),
        )
        return FaultSweepResult(
            operator=circuit.name,
            n_vectors=pattern.n_vectors,
            results=tuple(results),
            summary=summarize_fault_results(results),
            execution=report,
        )

    def _run_store_stats(self, job: StoreStatsJob) -> StoreStatsResult:
        store = self._require_store()
        return StoreStatsResult(
            root=str(store.root),
            stats=store.disk_stats(),
            io_errors=store.stats.io_errors,
        )

    def _run_store_verify(self, job: StoreVerifyJob) -> StoreVerifyResult:
        store = self._require_store()
        return StoreVerifyResult(root=str(store.root), report=store.verify())

    def _run_store_migrate(self, job: StoreMigrateJob) -> StoreMigrateResult:
        store = self._require_store()
        report = store.migrate()
        return StoreMigrateResult(root=str(store.root), report=report)

    def _run_store_prune(self, job: StorePruneJob) -> StorePruneResult:
        store = self._require_store()
        max_entries = 0 if job.prune_all else job.max_entries
        removed = store.prune(max_entries=max_entries, max_bytes=job.max_bytes)
        return StorePruneResult(
            root=str(store.root), removed=removed, stats=store.disk_stats()
        )

    # -- batch planning and execution ------------------------------------------

    def run_batch(self, jobs: Sequence[Job]) -> BatchResult:
        """Run a set of jobs with cross-job sweep deduplication.

        The plannable sweep units of every job are fingerprinted with the
        orchestrator's own content addresses, deduplicated, and the cold
        union lowers into one sharded executor pass per (circuit, stimulus)
        group; the jobs then execute in order against the warm session
        overlay.  Per-job results come back in input order together with a
        :class:`BatchReport`.
        """
        job_list = list(jobs)
        if not job_list:
            raise ValueError("run_batch needs at least one job")
        with self._lock:
            with activated(self._tracer):
                with span("session", jobs=len(job_list)) as session_span:
                    return self._run_batch_body(job_list, session_span)

    def _run_batch_body(self, job_list: list[Job], session_span: Any) -> BatchResult:
        start = sweep_module.simulated_unit_count()
        execution = ExecutionReport()
        planned, deduped, cache_hits = self._execute_plan(job_list, execution)
        session_span.set(planned=planned, deduped=deduped, cache_hits=cache_hits)
        metrics.REGISTRY.counter("batch.planned_units").add(planned)
        metrics.REGISTRY.counter("batch.deduped_units").add(deduped)
        metrics.REGISTRY.counter("batch.cache_hits").add(cache_hits)
        results = tuple(self.run(job) for job in job_list)
        for result in results:
            sub_report = getattr(result, "execution", None)
            if sub_report is not None:
                execution.merge(sub_report)
        report = BatchReport(
            jobs=len(job_list),
            planned_units=planned,
            deduped_units=deduped,
            cache_hits=cache_hits,
            simulated_units=sweep_module.simulated_unit_count() - start,
            execution=execution,
        )
        return BatchResult(results=results, report=report)

    def _sweep_requests(self, job: Job) -> list[_SweepRequest]:
        """The plannable characterization sweeps of one job (possibly none).

        Monte Carlo ranges, fault campaigns and search-driven exploration
        sweeps are not pre-planned (their work sets are either keyed
        differently or depend on intermediate results); they deduplicate
        through the shared session overlay at execution time instead.
        """
        worker_count = self._jobs_for(job)
        job_policy = self._policy_for(job)
        job_shm = self._shm_for(job)
        if isinstance(job, CharacterizeJob):
            spec = job.spec
            flow = self.flow_for(spec)
            return [
                _SweepRequest(
                    spec=spec,
                    pattern=job.pattern.config(spec.width),
                    triads=tuple(flow.default_triad_grid()),
                    keep_latched=job.keep_measurements,
                    jobs=worker_count,
                    policy=job_policy,
                    shared_memory=job_shm,
                )
            ]
        if isinstance(job, Fig5Job):
            spec = job.spec
            flow = self.flow_for(spec)
            nominal = flow.nominal_clock_period()
            return [
                _SweepRequest(
                    spec=spec,
                    pattern=PatternConfig(
                        n_vectors=job.vectors,
                        width=spec.width,
                        seed=job.seed,
                        kind="uniform",
                    ),
                    triads=tuple(
                        OperatingTriad(tclk=nominal, vdd=vdd, vbb=0.0)
                        for vdd in job.supply_voltages
                    ),
                    keep_latched=False,
                    jobs=worker_count,
                    policy=job_policy,
                    shared_memory=job_shm,
                )
            ]
        if isinstance(job, Table4Job):
            requests = []
            for entry in job.datasets:
                if self._classify_dataset(entry) != "operator":
                    continue
                try:
                    spec = parse_circuit_spec(entry)
                except ValueError:
                    continue  # the job run reports the malformed name
                flow = self.flow_for(spec)
                requests.append(
                    _SweepRequest(
                        spec=spec,
                        pattern=PatternConfig(
                            n_vectors=job.vectors,
                            width=spec.width,
                            seed=job.seed,
                            kind="uniform",
                        ),
                        triads=tuple(flow.default_triad_grid()),
                        keep_latched=False,
                        jobs=worker_count,
                        policy=job_policy,
                        shared_memory=job_shm,
                    )
                )
            return requests
        if isinstance(job, CalibrateJob):
            spec = job.spec
            return [
                _SweepRequest(
                    spec=spec,
                    pattern=job.pattern.config(spec.width),
                    triads=(job.triad(),),
                    keep_latched=True,
                    jobs=worker_count,
                    policy=job_policy,
                    shared_memory=job_shm,
                )
            ]
        return []

    def _execute_plan(
        self, jobs: Sequence[Job], report: ExecutionReport | None = None
    ) -> tuple[int, int, int]:
        """Dedup the jobs' sweep units and pre-run the cold union.

        Each merged group runs under the policy of the first contributing
        request (requests already fold in the session default), and the
        optional ``report`` accumulates fault-recovery accounting across
        every pre-run group.  Returns ``(planned_units, deduped_units,
        cache_hits)``.
        """
        base_cache: dict[tuple[OperatorSpec, PatternConfig], Mapping[str, Any]] = {}
        merged: dict[str, _MergedSweep] = {}
        planned = 0
        seen_keys: set[str] = set()

        for job in jobs:
            for request in self._sweep_requests(job):
                identity = (request.spec, request.pattern)
                base = base_cache.get(identity)
                if base is None:
                    base = sweep_module.characterization_key_components(
                        self.flow_for(request.spec).adder,
                        self._library,
                        sweep_module.pattern_stimulus(request.pattern),
                    )
                    base_cache[identity] = base
                group_key = SweepResultStore.entry_key(dict(base))
                group = merged.get(group_key)
                if group is None:
                    group = _MergedSweep(request.spec, request.pattern)
                    merged[group_key] = group
                group.jobs = max(group.jobs, request.jobs)
                if group.policy is None:
                    group.policy = request.policy
                if group.shared_memory is None:
                    group.shared_memory = request.shared_memory
                for triad in request.triads:
                    planned += 1
                    key = sweep_module.characterization_entry_key(base, triad)
                    seen_keys.add(key)
                    current = group.triads.get(key)
                    if current is None:
                        group.triads[key] = (triad, request.keep_latched)
                    elif request.keep_latched and not current[1]:
                        group.triads[key] = (triad, True)

        deduped = planned - len(seen_keys)
        cache_hits = 0
        for group in merged.values():
            n_vectors = group.pattern.n_vectors
            missing: dict[bool, list[OperatingTriad]] = {False: [], True: []}
            for key, (triad, keep_latched) in group.triads.items():
                payload = self._view.get(key)
                if sweep_module.payload_usable(payload, n_vectors, keep_latched):
                    cache_hits += 1
                else:
                    missing[keep_latched].append(triad)
            if not any(missing.values()):
                continue
            flow = self.flow_for(group.spec)
            in1, in2 = generate_patterns(group.pattern)
            for keep_latched, triads in missing.items():
                if not triads:
                    continue
                sweep_module.run_characterization_sweep(
                    flow.adder,
                    TriadGrid(triads),
                    in1,
                    in2,
                    sweep_module.pattern_stimulus(group.pattern),
                    library=self._library,
                    jobs=group.jobs,
                    store=self._view,
                    keep_latched=keep_latched,
                    testbench=flow.testbench,
                    policy=group.policy,
                    report=report,
                    shm=group.shared_memory,
                )
        return planned, deduped, cache_hits


_HANDLERS = {
    SynthesizeJob: Session._run_synthesize,
    CharacterizeJob: Session._run_characterize,
    Table4Job: Session._run_table4,
    Fig5Job: Session._run_fig5,
    CalibrateJob: Session._run_calibrate,
    SpeculateJob: Session._run_speculate,
    ExploreJob: Session._run_explore,
    MonteCarloJob: Session._run_montecarlo,
    FaultSweepJob: Session._run_faults,
    StoreStatsJob: Session._run_store_stats,
    StoreVerifyJob: Session._run_store_verify,
    StoreMigrateJob: Session._run_store_migrate,
    StorePruneJob: Session._run_store_prune,
}
