"""Area / power / timing reports (the Table II substitute).

``synthesize`` walks a netlist, sums cell areas, estimates total power at a
reference activity and operating point, and runs static timing analysis --
the same three quantities the paper's Table II reports per adder.
"""

from __future__ import annotations

import dataclasses

from repro.circuits.netlist import Netlist
from repro.synthesis.sta import StaticTimingAnalysis
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


@dataclasses.dataclass(frozen=True)
class SynthesisReport:
    """Synthesis-style summary of one design.

    Attributes
    ----------
    design_name:
        Name of the synthesised netlist.
    vdd, vbb:
        Operating point of the report.
    gate_count:
        Number of cell instances.
    area_um2:
        Total cell area in square micrometres.
    total_power_uw:
        Dynamic + static power in microwatts at the report's clock and
        activity assumptions.
    dynamic_power_uw / static_power_uw:
        The two power components in microwatts.
    critical_path_ns:
        Worst structural path delay in nanoseconds.
    clock_period_ns:
        Clock period assumed for the power numbers, in nanoseconds.
    switching_activity:
        Average output-toggle probability per gate per cycle assumed for the
        dynamic power estimate.
    gate_histogram:
        Cell-type histogram of the design.
    """

    design_name: str
    vdd: float
    vbb: float
    gate_count: int
    area_um2: float
    total_power_uw: float
    dynamic_power_uw: float
    static_power_uw: float
    critical_path_ns: float
    clock_period_ns: float
    switching_activity: float
    gate_histogram: dict[str, int]


def synthesize(
    netlist: Netlist,
    vdd: float | None = None,
    vbb: float = 0.0,
    clock_period: float | None = None,
    switching_activity: float = 0.35,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
    timing_margin: float = 1.0,
) -> SynthesisReport:
    """Produce a synthesis-style report for a netlist.

    Parameters
    ----------
    netlist:
        Design to report on.
    vdd, vbb:
        Operating point; defaults to the nominal supply with no body bias
        (the paper's Table II condition).
    clock_period:
        Clock period in seconds used for the power estimate.  Defaults to the
        design's own critical path (a synthesis tool reports power at the
        achieved clock).
    switching_activity:
        Average probability that a gate output toggles each cycle.  0.35 is a
        reasonable datapath default and can be swept in ablations.
    library:
        Standard-cell library to characterise against.
    timing_margin:
        Extra STA guard band (>= 1.0).
    """
    if not 0.0 <= switching_activity <= 1.0:
        raise ValueError("switching_activity must be within [0, 1]")
    supply = library.technology.vdd_nominal if vdd is None else vdd
    sta = StaticTimingAnalysis(
        netlist, supply, vbb, library=library, timing_margin=timing_margin
    )
    critical_path = sta.critical_path_delay
    period = critical_path if clock_period is None else clock_period
    if period <= 0:
        raise ValueError("clock_period must be positive")

    area = 0.0
    dynamic_energy_per_cycle = 0.0
    static_power = 0.0
    for gate in netlist.gates:
        cell = gate.gate_type.value
        area += library.cell_area_um2(cell)
        dynamic_energy_per_cycle += (
            switching_activity * library.cell_switching_energy(cell, supply)
        )
        static_power += library.cell_leakage_power(cell, supply, vbb)

    dynamic_power = dynamic_energy_per_cycle / period
    return SynthesisReport(
        design_name=netlist.name,
        vdd=supply,
        vbb=vbb,
        gate_count=netlist.gate_count,
        area_um2=area,
        total_power_uw=(dynamic_power + static_power) * 1e6,
        dynamic_power_uw=dynamic_power * 1e6,
        static_power_uw=static_power * 1e6,
        critical_path_ns=critical_path * 1e9,
        clock_period_ns=period * 1e9,
        switching_activity=switching_activity,
        gate_histogram=netlist.gate_type_histogram(),
    )
