"""Static timing analysis over the annotated netlist.

STA computes, per output, the worst-case (topological) arrival time -- i.e.
the delay of the longest structural path regardless of whether any input
vector can sensitise it.  The paper notes that EDA tools add extra timing
margin during STA; :class:`StaticTimingAnalysis` exposes the same idea with
an explicit ``timing_margin`` multiplier, so tests can verify that a clock
chosen from the STA report never produces timing errors in the dynamic
simulation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.netlist import Netlist
from repro.simulation.timing_sim import TimingAnnotation
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


@dataclasses.dataclass(frozen=True)
class TimingPath:
    """One input-to-output structural path with its delay."""

    output_port: str
    arrival_time: float
    gate_names: tuple[str, ...]

    @property
    def depth(self) -> int:
        """Number of gates on the path."""
        return len(self.gate_names)


class StaticTimingAnalysis:
    """Topological worst-case timing of a netlist at one operating point.

    Parameters
    ----------
    netlist:
        Design under analysis.
    vdd, vbb:
        Operating voltages.
    library:
        Standard-cell library providing delays.
    timing_margin:
        Multiplicative guard band applied to the reported critical path
        (EDA-style clock-path pessimism; 1.0 disables it).
    """

    def __init__(
        self,
        netlist: Netlist,
        vdd: float,
        vbb: float = 0.0,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
        timing_margin: float = 1.0,
    ) -> None:
        if timing_margin < 1.0:
            raise ValueError("timing_margin must be >= 1.0")
        self._netlist = netlist
        self._vdd = vdd
        self._vbb = vbb
        self._margin = timing_margin
        self._annotation = TimingAnnotation.annotate(netlist, vdd, vbb, library)
        self._arrival, self._worst_driver = self._propagate()

    def _propagate(self) -> tuple[np.ndarray, dict[int, int]]:
        arrival = np.zeros(self._netlist.net_count, dtype=float)
        worst_driver: dict[int, int] = {}
        for index, gate in enumerate(self._netlist.topological_gates):
            worst_input = max(gate.inputs, key=lambda net: arrival[net])
            arrival[gate.output] = (
                arrival[worst_input] + self._annotation.gate_delays[index]
            )
            worst_driver[gate.output] = index
        return arrival, worst_driver

    @property
    def vdd(self) -> float:
        """Supply voltage of the analysis."""
        return self._vdd

    @property
    def vbb(self) -> float:
        """Body-bias voltage of the analysis."""
        return self._vbb

    def arrival_time(self, net: int) -> float:
        """Worst-case arrival time of a net, in seconds (no margin applied)."""
        return float(self._arrival[net])

    @property
    def critical_path_delay(self) -> float:
        """Worst output arrival time including the timing margin, seconds."""
        worst = max(
            (self._arrival[net] for net in self._netlist.output_nets), default=0.0
        )
        return float(worst) * self._margin

    def minimum_clock_period(self, setup_margin: float = 0.0) -> float:
        """Smallest safe clock period (critical path + setup margin)."""
        if setup_margin < 0:
            raise ValueError("setup_margin must be non-negative")
        return self.critical_path_delay + setup_margin

    def critical_path(self) -> TimingPath:
        """Trace and return the single worst structural path."""
        outputs = self._netlist.primary_outputs
        worst_port = max(outputs, key=lambda port: self._arrival[outputs[port]])
        gates = self._netlist.topological_gates
        names: list[str] = []
        net = outputs[worst_port]
        while net in self._worst_driver:
            gate_index = self._worst_driver[net]
            gate = gates[gate_index]
            names.append(gate.name or gate.gate_type.value)
            net = max(gate.inputs, key=lambda candidate: self._arrival[candidate])
        return TimingPath(
            output_port=worst_port,
            arrival_time=float(self._arrival[outputs[worst_port]]) * self._margin,
            gate_names=tuple(reversed(names)),
        )

    def slack(self, tclk: float) -> dict[str, float]:
        """Per-output slack (``tclk`` minus margined arrival time)."""
        if tclk <= 0:
            raise ValueError("tclk must be positive")
        return {
            port: tclk - float(self._arrival[net]) * self._margin
            for port, net in self._netlist.primary_outputs.items()
        }
