"""Synthesis-style reporting: area, power, static timing.

The paper's Table II reports the synthesis results (area, total power,
critical path at 1 V / no body bias) of the four adder configurations.  This
package computes the equivalent numbers from the netlists and the analytical
technology library.
"""

from repro.synthesis.sta import StaticTimingAnalysis, TimingPath
from repro.synthesis.synthesize import SynthesisReport, synthesize
from repro.synthesis.report import render_synthesis_table

__all__ = [
    "StaticTimingAnalysis",
    "TimingPath",
    "SynthesisReport",
    "synthesize",
    "render_synthesis_table",
]
