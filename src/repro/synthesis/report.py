"""Plain-text rendering of synthesis reports (Table II style)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.synthesis.synthesize import SynthesisReport


def render_synthesis_table(reports: Iterable[SynthesisReport]) -> str:
    """Render a Table II-style summary for a set of synthesis reports.

    Columns follow the paper: benchmark name, area (um^2), total power (uW),
    critical path (ns); a gate-count column is added because it is the most
    robust cross-check between the paper's library and this substrate.
    """
    rows = [
        (
            report.design_name,
            f"{report.area_um2:.1f}",
            f"{report.total_power_uw:.1f}",
            f"{report.critical_path_ns:.3f}",
            str(report.gate_count),
        )
        for report in reports
    ]
    header = ("Benchmark", "Area (um2)", "Total Power (uW)", "Critical Path (ns)", "Gates")
    return format_table(header, rows)


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal fixed-width table formatter shared by the analysis modules."""
    columns = len(header)
    for row in rows:
        if len(row) != columns:
            raise ValueError("all rows must have the same number of columns as the header")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(columns)
    ]
    lines = [
        "  ".join(str(header[i]).ljust(widths[i]) for i in range(columns)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)
