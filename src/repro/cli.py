"""Command-line interface for the reproduction library.

The CLI exposes the most common workflows without writing Python:

* ``repro synthesize``      -- Table II style synthesis report,
* ``repro characterize``    -- characterize an adder over its triad grid and
  print the Fig. 8 series (optionally saving the JSON dataset),
* ``repro table4``          -- Table IV aggregation from characterization
  JSON files and/or adder names characterized on the fly,
* ``repro fig5``            -- per-bit BER profile of an adder under supply
  scaling,
* ``repro calibrate``       -- run Algorithm 1 at one triad and save the
  probability table,
* ``repro speculate``       -- report accurate/approximate operating modes
  for a given error margin,
* ``repro explore``         -- search the operator design space
  (architecture x width x speculation window x triads) for the BER/energy
  Pareto frontier (optionally robust under variation via
  ``--robust-quantile``),
* ``repro montecarlo``      -- Monte Carlo variation characterization: BER
  distributions and parametric yield vs supply voltage at a process corner,
* ``repro store``           -- inspect (``stats``) and bound (``prune``) the
  on-disk sweep result store.

Sweep-running commands (``characterize``, ``fig5``, ``table4``,
``calibrate``, ``explore``, ``montecarlo``) execute on the sharded orchestrator of
:mod:`repro.core.sweep`: ``--jobs N`` fans the triad grid out over N worker
processes, and completed triads are persisted in a content-addressed result
store (``--cache-dir``, default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro/sweeps``; disable with ``--no-cache``), so repeated
invocations skip the timing simulation.  Results are bit-identical whatever
the job count or cache state.

Run ``python -m repro.cli --help`` (or ``repro --help`` once installed) for
the full option list.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from repro.analysis.figures import (
    fig5_ber_per_bit,
    fig8_ber_energy_series,
    frontier_series,
    render_fig8,
    render_frontier,
)
from repro.analysis.variation import (
    render_variation_table,
    render_yield_series,
    yield_vs_vdd_series,
)
from repro.analysis.tables import (
    ranked_configurations,
    render_ranked_configurations,
    render_table4,
    table2_synthesis,
)
from repro.circuits.adders import ADDER_GENERATORS, build_adder, parse_adder_name
from repro.core.calibration import calibrate_probability_table
from repro.core.characterization import CharacterizationFlow
from repro.core.dataset import (
    load_characterization,
    save_characterization,
    save_probability_table,
)
from repro.core.energy import summarize_by_ber_range
from repro.core.speculation import DynamicSpeculationController
from repro.core.store import SweepResultStore
from repro.core.triad import OperatingTriad
from repro.explore import (
    CandidateEvaluator,
    DesignSpace,
    ParetoFrontier,
    TriadSpec,
    run_search,
)
from repro.explore.evaluator import robust_tag
from repro.explore.search import SEARCH_STRATEGIES
from repro.simulation.patterns import (
    PATTERN_GENERATORS,
    PatternConfig,
    generate_patterns,
)
from repro.core.sweep import pattern_stimulus
from repro.core.triad import PAPER_SUPPLY_VOLTAGES
from repro.technology.corners import GateVariationModel, ProcessCorner
from repro.variation import (
    MonteCarloConfig,
    run_montecarlo_sweep,
    supply_scaling_grid,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Voltage over-scaling characterization and modelling (DATE 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synthesize", help="Table II style synthesis report")
    _add_adder_arguments(synth, multiple=True)

    characterize = subparsers.add_parser(
        "characterize", help="characterize an adder over its triad grid (Fig. 8 data)"
    )
    _add_adder_arguments(characterize)
    _add_pattern_arguments(characterize)
    _add_sweep_arguments(characterize)
    characterize.add_argument(
        "--output", help="write the characterization dataset to this JSON file"
    )

    table4 = subparsers.add_parser(
        "table4",
        help="Table IV aggregation from characterization JSON files or adder names",
    )
    table4.add_argument(
        "dataset",
        nargs="+",
        help="characterization JSON file(s) and/or adder names (e.g. rca8) "
        "to characterize on the fly",
    )
    table4.add_argument("--vectors", type=int, default=4000, help="stimulus vectors")
    table4.add_argument("--seed", type=int, default=2017, help="stimulus seed")
    _add_sweep_arguments(table4)

    fig5 = subparsers.add_parser("fig5", help="per-bit BER profile under supply scaling")
    _add_adder_arguments(fig5)
    fig5.add_argument(
        "--vdd",
        type=float,
        nargs="+",
        default=[0.8, 0.7, 0.6, 0.5],
        help="supply voltages to sweep",
    )
    fig5.add_argument("--vectors", type=int, default=4000, help="stimulus vectors")
    _add_sweep_arguments(fig5)

    calibrate = subparsers.add_parser(
        "calibrate", help="run Algorithm 1 at one triad and save the probability table"
    )
    _add_adder_arguments(calibrate)
    _add_pattern_arguments(calibrate)
    _add_sweep_arguments(calibrate)
    calibrate.add_argument("--tclk-ns", type=float, required=True, help="clock period (ns)")
    calibrate.add_argument("--vdd", type=float, required=True, help="supply voltage (V)")
    calibrate.add_argument("--vbb", type=float, default=0.0, help="body-bias voltage (V)")
    calibrate.add_argument(
        "--metric",
        choices=("mse", "hamming", "weighted_hamming"),
        default="mse",
        help="calibration distance metric",
    )
    calibrate.add_argument("--output", required=True, help="output JSON file for the table")

    speculate = subparsers.add_parser(
        "speculate", help="accurate/approximate modes for an error margin"
    )
    speculate.add_argument("dataset", help="characterization JSON file")
    speculate.add_argument(
        "--margin", type=float, default=0.10, help="BER tolerance (fraction, default 0.10)"
    )

    explore = subparsers.add_parser(
        "explore",
        help="search the operator design space for the BER/energy Pareto frontier",
    )
    explore.add_argument(
        "--architectures",
        nargs="+",
        choices=sorted(ADDER_GENERATORS),
        default=["rca", "bka"],
        help="adder architectures spanned by the space",
    )
    explore.add_argument(
        "--widths",
        type=int,
        nargs="+",
        default=[8, 16],
        help="operand widths in bits (e.g. 8 16 32 64)",
    )
    explore.add_argument(
        "--windows",
        nargs="+",
        default=["none"],
        help="speculation windows; 'none' selects the plain architectures, "
        "integers add the speculative carry-window operator (e.g. none 4 8)",
    )
    explore.add_argument(
        "--clock-scales",
        type=float,
        nargs="+",
        default=None,
        help="clock periods as fractions of each candidate's guard-banded "
        "critical path (default: the matched Table III grid)",
    )
    explore.add_argument(
        "--vdd",
        type=float,
        nargs="+",
        default=None,
        help="supply voltages of the dense grid (with --clock-scales)",
    )
    explore.add_argument(
        "--vbb",
        type=float,
        nargs="+",
        default=None,
        help="body-bias voltages of the dense grid (with --clock-scales)",
    )
    explore.add_argument(
        "--strategy",
        choices=sorted(SEARCH_STRATEGIES),
        default="successive-halving",
        help="search strategy",
    )
    explore.add_argument(
        "--budget",
        type=int,
        default=None,
        help="maximum paper-fidelity candidate evaluations (default: unbounded)",
    )
    explore.add_argument("--seed", type=int, default=2017, help="sampling/stimulus seed")
    explore.add_argument(
        "--vectors", type=int, default=4000, help="paper-fidelity stimulus vectors"
    )
    explore.add_argument(
        "--screen-vectors",
        type=int,
        default=None,
        help="screening stimulus vectors (default: max(200, vectors // 8))",
    )
    explore.add_argument(
        "--max-ber",
        type=float,
        default=None,
        help="BER budget (fraction) applied to the ranked report",
    )
    explore.add_argument(
        "--top", type=int, default=10, help="rows of the ranked-configuration table"
    )
    explore.add_argument(
        "--frontier",
        help="frontier JSON file: loaded (resume) when present, always written",
    )
    explore.add_argument(
        "--robust-quantile",
        type=float,
        default=None,
        help="score candidates by this BER quantile over Monte Carlo "
        "variation samples instead of nominal BER (e.g. 0.95); on "
        "--frontier resume, points scored differently are dropped",
    )
    explore.add_argument(
        "--robust-samples",
        type=int,
        default=None,
        help="Monte Carlo samples per candidate for robust scoring "
        "(default 32; requires --robust-quantile)",
    )
    _add_sweep_arguments(explore)

    montecarlo = subparsers.add_parser(
        "montecarlo",
        help="Monte Carlo variation characterization: BER distributions and "
        "yield vs Vdd under sampled per-gate mismatch",
    )
    _add_adder_arguments(montecarlo)
    _add_pattern_arguments(montecarlo)
    _add_sweep_arguments(montecarlo)
    montecarlo.add_argument(
        "--corner",
        choices=[corner.value for corner in ProcessCorner],
        default=ProcessCorner.TYPICAL.value,
        help="process corner the mismatch is sampled around (default TT)",
    )
    montecarlo.add_argument(
        "--samples", type=int, default=64, help="Monte Carlo samples (dies)"
    )
    montecarlo.add_argument(
        "--sigma-vt",
        type=float,
        default=GateVariationModel().sigma_vt,
        help="per-gate threshold-voltage mismatch sigma in volts",
    )
    montecarlo.add_argument(
        "--sigma-current",
        type=float,
        default=GateVariationModel().sigma_current_factor,
        help="per-gate relative current-factor mismatch sigma",
    )
    montecarlo.add_argument(
        "--margin",
        type=float,
        default=0.02,
        help="BER margin (fraction) the yield is evaluated against",
    )
    montecarlo.add_argument(
        "--vdd",
        type=float,
        nargs="+",
        default=list(PAPER_SUPPLY_VOLTAGES),
        help="supply voltages of the yield sweep (matched nominal clock, "
        "no body bias)",
    )

    store = subparsers.add_parser(
        "store", help="inspect and bound the on-disk sweep result store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_commands.add_parser(
        "stats", help="entry count and on-disk footprint of the store"
    )
    _add_store_dir_argument(store_stats)
    store_prune = store_commands.add_parser(
        "prune", help="delete oldest entries until the store fits the limits"
    )
    _add_store_dir_argument(store_prune)
    store_prune.add_argument(
        "--max-entries", type=int, default=None, help="keep at most this many entries"
    )
    store_prune.add_argument(
        "--max-bytes", type=int, default=None, help="keep at most this many bytes"
    )
    store_prune.add_argument(
        "--all", action="store_true", help="delete every entry (same as --max-entries 0)"
    )
    return parser


def _add_adder_arguments(parser: argparse.ArgumentParser, multiple: bool = False) -> None:
    architectures = sorted(ADDER_GENERATORS)
    if multiple:
        parser.add_argument(
            "--adder",
            nargs="+",
            default=["rca8", "bka8", "rca16", "bka16"],
            help="adders as <arch><width>, e.g. rca8 bka16",
        )
    else:
        parser.add_argument(
            "--architecture", choices=architectures, default="rca", help="adder architecture"
        )
        parser.add_argument("--width", type=int, default=8, help="operand width in bits")


def _add_pattern_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pattern",
        choices=sorted(PATTERN_GENERATORS),
        default="uniform",
        help="stimulus generator",
    )
    parser.add_argument("--vectors", type=int, default=4000, help="stimulus vectors")
    parser.add_argument("--seed", type=int, default=2017, help="stimulus seed")


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (default: 1, serial)",
    )
    _add_store_dir_argument(parser)
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the sweep result store",
    )


def _add_store_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        help="sweep result store directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)",
    )


def _resolve_store(args: argparse.Namespace) -> SweepResultStore | None:
    if getattr(args, "no_cache", False):
        if getattr(args, "cache_dir", None):
            raise SystemExit(
                "--no-cache conflicts with --cache-dir (disable the store "
                "or point it somewhere, not both)"
            )
        return None
    if args.cache_dir:
        return SweepResultStore(args.cache_dir)
    return SweepResultStore.default()


def _parse_adder_name(name: str) -> tuple[str, int]:
    try:
        return parse_adder_name(name)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _command_synthesize(args: argparse.Namespace) -> int:
    benchmarks = [_parse_adder_name(name) for name in args.adder]
    _reports, text = table2_synthesis(benchmarks=benchmarks)
    print(text)
    return 0


def _command_characterize(args: argparse.Namespace) -> int:
    flow = CharacterizationFlow.for_benchmark(args.architecture, args.width)
    config = PatternConfig(
        n_vectors=args.vectors, width=args.width, seed=args.seed, kind=args.pattern
    )
    characterization = flow.run(
        pattern=config,
        keep_measurements=False,
        jobs=args.jobs,
        store=_resolve_store(args),
    )
    print(render_fig8(fig8_ber_energy_series(characterization)))
    if args.output:
        save_characterization(characterization, args.output)
        print(f"\nsaved characterization to {args.output}")
    return 0


def _command_table4(args: argparse.Namespace) -> int:
    store = _resolve_store(args)
    characterizations = {}
    for entry in args.dataset:
        path = pathlib.Path(entry)
        if path.is_file():
            characterization = load_characterization(entry)
        elif "." in entry or "/" in entry:
            # Clearly meant as a file path (adder names are bare alnum
            # tokens): report the missing file instead of misparsing it.
            raise SystemExit(f"dataset file not found: {entry}")
        else:
            # Not a file: characterize the named adder on the fly through
            # the cached sweep orchestrator.
            architecture, width = _parse_adder_name(entry)
            flow = CharacterizationFlow.for_benchmark(architecture, width)
            config = PatternConfig(
                n_vectors=args.vectors, width=width, seed=args.seed, kind="uniform"
            )
            characterization = flow.run(
                pattern=config,
                keep_measurements=False,
                jobs=args.jobs,
                store=store,
            )
        characterizations[characterization.adder_name] = characterization
    summaries = {
        name: summarize_by_ber_range(characterization)
        for name, characterization in characterizations.items()
    }
    print(render_table4(summaries))
    return 0


def _command_fig5(args: argparse.Namespace) -> int:
    series = fig5_ber_per_bit(
        architecture=args.architecture,
        width=args.width,
        supply_voltages=tuple(args.vdd),
        n_vectors=args.vectors,
        jobs=args.jobs,
        store=_resolve_store(args),
    )
    width = args.width + 1
    header = "Vdd " + "".join(f"  bit{i:>2}" for i in range(width))
    print(header)
    for entry in series:
        print(
            f"{entry.vdd:0.1f} "
            + "".join(f"{value * 100:7.1f}" for value in entry.ber_per_bit)
        )
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    adder = build_adder(args.architecture, args.width)
    flow = CharacterizationFlow(adder)
    try:
        triad = OperatingTriad(tclk=args.tclk_ns * 1e-9, vdd=args.vdd, vbb=args.vbb)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    config = PatternConfig(
        n_vectors=args.vectors, width=args.width, seed=args.seed, kind=args.pattern
    )
    characterization = flow.run(
        triads=[triad],
        pattern=config,
        jobs=args.jobs,
        store=_resolve_store(args),
    )
    entry = characterization.results[0]
    measurement = characterization.measurement_for(triad)
    result = calibrate_probability_table(
        measurement.in1,
        measurement.in2,
        measurement.latched_words,
        args.width,
        metric=args.metric,
    )
    save_probability_table(result.table, args.output)
    print(
        f"triad {entry.label()}: hardware BER {entry.ber_percent:.2f}%, "
        f"mean best distance {result.mean_best_distance:.3f}"
    )
    print(f"saved probability table to {args.output}")
    return 0


def _command_speculate(args: argparse.Namespace) -> int:
    characterization = load_characterization(args.dataset)
    controller = DynamicSpeculationController(characterization, error_margin=args.margin)
    accurate = controller.accurate_mode()
    approximate = controller.approximate_mode()
    print(f"error margin: {args.margin * 100:.1f}% BER")
    print(
        f"accurate mode   : {accurate.label():<24} BER {accurate.ber_percent:6.2f}% "
        f"saving {characterization.energy_efficiency_of(accurate) * 100:6.1f}%"
    )
    print(
        f"approximate mode: {approximate.label():<24} BER {approximate.ber_percent:6.2f}% "
        f"saving {characterization.energy_efficiency_of(approximate) * 100:6.1f}%"
    )
    return 0


def _parse_windows(tokens: Sequence[str]) -> tuple[int | None, ...]:
    windows: list[int | None] = []
    for token in tokens:
        if token.lower() in ("none", "off"):
            windows.append(None)
            continue
        try:
            windows.append(int(token))
        except ValueError:
            raise SystemExit(
                f"invalid speculation window {token!r} (expected 'none' or an integer)"
            ) from None
    return tuple(windows)


def _command_explore(args: argparse.Namespace) -> int:
    try:
        if args.clock_scales is not None:
            triads = TriadSpec(
                clock_scales=tuple(args.clock_scales),
                supply_voltages=(
                    tuple(args.vdd) if args.vdd else TriadSpec().supply_voltages
                ),
                body_bias_voltages=(
                    tuple(args.vbb) if args.vbb else TriadSpec().body_bias_voltages
                ),
            )
        elif args.vdd or args.vbb:
            raise SystemExit("--vdd/--vbb require --clock-scales (a dense triad grid)")
        else:
            triads = TriadSpec()
        space = DesignSpace.from_axes(
            architectures=args.architectures,
            widths=args.widths,
            speculation_windows=_parse_windows(args.windows),
            triads=triads,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    for width, window in space.skipped_windows():
        print(
            f"note: window {window} does not fit width {width} "
            f"(needs window < width); spa{width}w{window} is not in the space"
        )
    if not space.candidates():
        raise SystemExit(
            "the declared axes produce no candidates "
            "(every window was skipped and no 'none' entry is present)"
        )

    if args.robust_samples is not None and args.robust_quantile is None:
        raise SystemExit("--robust-samples requires --robust-quantile")
    variation = None
    if args.robust_quantile is not None:
        if not 0.0 < args.robust_quantile < 1.0:
            raise SystemExit("--robust-quantile must lie strictly within (0, 1)")
        try:
            variation = MonteCarloConfig(
                n_samples=(
                    32 if args.robust_samples is None else args.robust_samples
                ),
                seed=args.seed,
            )
        except ValueError as error:
            raise SystemExit(str(error)) from None

    expected_robust = (
        None
        if variation is None
        else robust_tag(variation, args.robust_quantile)
    )
    resume = _load_resume_frontier(
        args.frontier, args.vectors, args.seed, expected_robust
    )
    try:
        evaluator = CandidateEvaluator(
            space,
            jobs=args.jobs,
            store=_resolve_store(args),
            seed=args.seed,
            variation=variation,
            robust_quantile=(
                args.robust_quantile if args.robust_quantile is not None else 0.95
            ),
        )
        result = run_search(
            space,
            args.strategy,
            evaluator,
            seed=args.seed,
            budget=args.budget,
            full_vectors=args.vectors,
            screen_vectors=args.screen_vectors,
            resume=resume,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None

    print(
        f"strategy {result.strategy}: {result.total_candidates} candidates, "
        f"{result.screening_evaluations} screened at {result.screen_vectors} vectors, "
        f"{result.full_evaluations} evaluated at {result.full_vectors} vectors"
    )
    if result.evaluated_candidates:
        print("paper-fidelity evaluations: " + ", ".join(result.evaluated_candidates))
    print()
    print(render_frontier(frontier_series(result.frontier)))
    print()
    ranked = ranked_configurations(
        result.frontier, max_ber=args.max_ber, top_n=args.top
    )
    print(render_ranked_configurations(ranked))
    if args.frontier:
        result.frontier.save(args.frontier)
        print(f"\nsaved frontier to {args.frontier}")
    return 0


def _load_resume_frontier(
    path: str | None,
    full_vectors: int,
    seed: int,
    robust: str | None,
) -> ParetoFrontier | None:
    """Load a ``--frontier`` file for resume, keeping one measurement per run.

    Points measured on a different stimulus (size, seed or pattern kind) or
    under a different scoring identity (nominal vs robust quantile-BER, or a
    different Monte Carlo configuration) are dropped with a note: a nominal
    BER is systematically lower than a quantile BER over sampled dies, so
    letting the two compete -- like letting a noisy low-vector point compete
    -- could evict this run's measurements from the frontier.
    """
    if not path:
        return None
    try:
        loaded = ParetoFrontier.load_or_empty(path)
    except Exception as error:  # corrupt/truncated JSON, wrong schema ...
        raise SystemExit(
            f"cannot resume from frontier file {path}: {error}"
        ) from None
    matching = [
        point
        for point in loaded
        if point.n_vectors == full_vectors
        and point.seed == seed
        and point.pattern_kind == "uniform"
        and point.robust == robust
    ]
    dropped = len(loaded) - len(matching)
    if dropped:
        print(
            f"note: dropped {dropped} frontier point(s) measured on a "
            f"different stimulus or scoring than --vectors {full_vectors} "
            f"--seed {seed} "
            + (f"--robust-quantile (tag {robust})" if robust else "(nominal)")
        )
    return ParetoFrontier(matching)


def _command_montecarlo(args: argparse.Namespace) -> int:
    if args.samples <= 0:
        raise SystemExit("--samples must be positive")
    if not 0.0 <= args.margin <= 1.0:
        raise SystemExit("--margin must lie within [0, 1] (a BER fraction)")
    try:
        config = MonteCarloConfig(
            corner=ProcessCorner(args.corner),
            model=GateVariationModel(
                sigma_current_factor=args.sigma_current, sigma_vt=args.sigma_vt
            ),
            n_samples=args.samples,
            seed=args.seed,
        )
        pattern = PatternConfig(
            n_vectors=args.vectors,
            width=args.width,
            seed=args.seed,
            kind=args.pattern,
        )
        flow = CharacterizationFlow.for_benchmark(args.architecture, args.width)
        grid = supply_scaling_grid(flow, tuple(args.vdd))
    except ValueError as error:
        raise SystemExit(str(error)) from None
    in1, in2 = generate_patterns(pattern)
    results = run_montecarlo_sweep(
        flow.adder,
        grid,
        in1,
        in2,
        pattern_stimulus(pattern),
        config=config,
        jobs=args.jobs,
        store=_resolve_store(args),
    )
    model = config.model
    print(
        f"{flow.adder.name} @ corner {config.corner.value}: "
        f"{config.n_samples} samples, seed {config.seed}, "
        f"sigma_vt {model.sigma_vt * 1e3:g} mV, "
        f"sigma_k {model.sigma_current_factor * 100:g}%, "
        f"{args.vectors} vectors"
    )
    print()
    print(render_variation_table(results, args.margin))
    print()
    print(render_yield_series(yield_vs_vdd_series(results, args.margin), args.margin))
    return 0


def _command_store(args: argparse.Namespace) -> int:
    store = _resolve_store(args)
    assert store is not None  # the store subcommands have no --no-cache flag
    if args.store_command == "stats":
        stats = store.disk_stats()
        print(f"store root : {store.root}")
        print(f"entries    : {stats.entries}")
        print(f"total bytes: {stats.total_bytes}")
        if stats.entries:
            span = (stats.newest_mtime or 0.0) - (stats.oldest_mtime or 0.0)
            print(f"age span   : {span:.0f} s between oldest and newest entry")
        return 0
    # store_command == "prune" (the subparser enforces the choice)
    if args.all and (args.max_entries is not None or args.max_bytes is not None):
        raise SystemExit(
            "--all conflicts with --max-entries/--max-bytes (it already "
            "deletes everything)"
        )
    max_entries = 0 if args.all else args.max_entries
    if max_entries is None and args.max_bytes is None:
        raise SystemExit("prune needs --max-entries, --max-bytes or --all")
    removed = store.prune(max_entries=max_entries, max_bytes=args.max_bytes)
    stats = store.disk_stats()
    print(
        f"pruned {removed} entries; {stats.entries} entries "
        f"({stats.total_bytes} bytes) remain in {store.root}"
    )
    return 0


_COMMANDS = {
    "synthesize": _command_synthesize,
    "characterize": _command_characterize,
    "table4": _command_table4,
    "fig5": _command_fig5,
    "calibrate": _command_calibrate,
    "speculate": _command_speculate,
    "explore": _command_explore,
    "montecarlo": _command_montecarlo,
    "store": _command_store,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
