"""Command-line interface for the reproduction library.

The CLI is a thin adapter over the typed Session/Job API
(:mod:`repro.api`): every command parses its arguments into a declarative
job object, runs it through one :class:`~repro.api.session.Session`, and
prints the typed result's rendering.  The commands:

* ``repro synthesize``      -- Table II style synthesis report,
* ``repro characterize``    -- characterize an adder over its triad grid and
  print the Fig. 8 series (optionally saving the JSON dataset),
* ``repro table4``          -- Table IV aggregation from characterization
  JSON files and/or adder names characterized on the fly,
* ``repro fig5``            -- per-bit BER profile of an adder under supply
  scaling,
* ``repro calibrate``       -- run Algorithm 1 at one triad and save the
  probability table,
* ``repro speculate``       -- report accurate/approximate operating modes
  for a given error margin,
* ``repro explore``         -- search the operator design space
  (architecture x width x speculation window x triads) for the BER/energy
  Pareto frontier (optionally robust under variation via
  ``--robust-quantile``),
* ``repro montecarlo``      -- Monte Carlo variation characterization: BER
  distributions and parametric yield vs supply voltage at a process corner,
* ``repro faults``          -- structural single-stuck-at fault campaign
  (coverage and highest-impact faults),
* ``repro batch``           -- run a JSON job-spec file through one session:
  sweep work units shared between jobs are deduplicated and simulated once,
* ``repro serve``           -- characterization-as-a-service: serve job
  submissions over HTTP through one session, batching concurrent requests
  into deduplicated sweep windows (see :mod:`repro.serve`),
* ``repro store``           -- inspect (``stats``), verify (``verify``: fsck
  pass quarantining corrupt entries) and bound (``prune``) the on-disk
  sweep result store,
* ``repro trace``           -- inspect JSONL trace files recorded with
  ``--trace``: ``summary`` renders the per-phase time breakdown and the
  cache/dedup funnel, ``validate`` checks records against the trace schema,
* ``repro lint``            -- run the repo's AST invariant checker
  (:mod:`repro.lint`) over Python sources: determinism, resilience and
  async-discipline rules (``RPL0xx``), with inline suppressions and a
  committed baseline for grandfathered findings (exit 1 on new findings).

Sweep-running commands (``characterize``, ``fig5``, ``table4``,
``calibrate``, ``explore``, ``montecarlo``, ``faults``, ``batch``) execute
on the sharded orchestrator of :mod:`repro.core.sweep`: ``--jobs N`` fans
the triad grid out over N worker processes, and completed triads are
persisted in a content-addressed result store (``--cache-dir``, default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``; disable with
``--no-cache``), so repeated invocations skip the timing simulation.
Results are bit-identical whatever the job count or cache state.

Sharded sweeps run on the fault-tolerant executor of
:mod:`repro.core.resilience`: ``--shard-timeout`` bounds each shard's
wall-clock, ``--max-retries`` bounds re-submission of crashed / timed-out /
corrupt shards, and ``--on-worker-failure`` picks the recovery action
(``retry``, ``split-and-retry``, ``serial-fallback``, ``fail``).  When a
sweep recovered from faults, a one-line execution report goes to stderr --
stdout stays byte-identical to a fault-free run.  Ctrl-C exits cleanly with
status 130; completed shards are already persisted, so the rerun resumes
warm.

Sweep-running commands also accept ``--trace PATH``: the run appends a
hierarchical span tree (session -> job -> sweep -> shard -> engine pass ->
store flush, including worker-process spans) to the JSONL file, viewable
with ``repro trace summary``.  Tracing never changes results: stdout and
store bytes are identical with and without ``--trace``.

``characterize``, ``table4``, ``fig5``, ``montecarlo`` and ``faults``
accept ``--json`` to emit the typed result object as JSON instead of the
text tables, so downstream tooling never scrapes the tables.

Run ``python -m repro.cli --help`` (or ``repro --help`` once installed) for
the full option list.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Callable, Sequence

from repro.api.jobs import (
    CalibrateJob,
    CharacterizeJob,
    ExploreJob,
    FaultSweepJob,
    Fig5Job,
    Job,
    MonteCarloJob,
    SpeculateJob,
    StoreMigrateJob,
    StorePruneJob,
    StoreStatsJob,
    StoreVerifyJob,
    SynthesizeJob,
    Table4Job,
    job_type_name,
    jobs_from_document,
)
from repro.api.options import PatternOptions, StoreOptions, SweepOptions
from repro.api.session import Session, SessionError
from repro.lint import (
    DEFAULT_BASELINE_NAME,
    LintError,
    RULE_CODES,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.obs.report import load_trace, summarize_trace, validate_trace
from repro.circuits.adders import ADDER_GENERATORS
from repro.core.resilience import FAILURE_ACTIONS
from repro.explore.search import SEARCH_STRATEGIES
from repro.simulation.patterns import PATTERN_GENERATORS
from repro.core.triad import PAPER_SUPPLY_VOLTAGES
from repro.technology.corners import GateVariationModel, ProcessCorner


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Voltage over-scaling characterization and modelling (DATE 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synthesize", help="Table II style synthesis report")
    _add_adder_arguments(synth, multiple=True)

    characterize = subparsers.add_parser(
        "characterize", help="characterize an adder over its triad grid (Fig. 8 data)"
    )
    _add_adder_arguments(characterize)
    _add_pattern_arguments(characterize)
    _add_sweep_arguments(characterize)
    characterize.add_argument(
        "--output", help="write the characterization dataset to this JSON file"
    )
    _add_json_argument(characterize)

    table4 = subparsers.add_parser(
        "table4",
        help="Table IV aggregation from characterization JSON files or adder names",
    )
    table4.add_argument(
        "dataset",
        nargs="+",
        help="characterization JSON file(s) and/or adder names (e.g. rca8) "
        "to characterize on the fly",
    )
    table4.add_argument("--vectors", type=int, default=4000, help="stimulus vectors")
    table4.add_argument("--seed", type=int, default=2017, help="stimulus seed")
    _add_sweep_arguments(table4)
    _add_json_argument(table4)

    fig5 = subparsers.add_parser("fig5", help="per-bit BER profile under supply scaling")
    _add_adder_arguments(fig5)
    fig5.add_argument(
        "--vdd",
        type=float,
        nargs="+",
        default=[0.8, 0.7, 0.6, 0.5],
        help="supply voltages to sweep",
    )
    fig5.add_argument("--vectors", type=int, default=4000, help="stimulus vectors")
    _add_sweep_arguments(fig5)
    _add_json_argument(fig5)

    calibrate = subparsers.add_parser(
        "calibrate", help="run Algorithm 1 at one triad and save the probability table"
    )
    _add_adder_arguments(calibrate)
    _add_pattern_arguments(calibrate)
    _add_sweep_arguments(calibrate)
    calibrate.add_argument("--tclk-ns", type=float, required=True, help="clock period (ns)")
    calibrate.add_argument("--vdd", type=float, required=True, help="supply voltage (V)")
    calibrate.add_argument("--vbb", type=float, default=0.0, help="body-bias voltage (V)")
    calibrate.add_argument(
        "--metric",
        choices=("mse", "hamming", "weighted_hamming"),
        default="mse",
        help="calibration distance metric",
    )
    calibrate.add_argument("--output", required=True, help="output JSON file for the table")

    speculate = subparsers.add_parser(
        "speculate", help="accurate/approximate modes for an error margin"
    )
    speculate.add_argument("dataset", help="characterization JSON file")
    speculate.add_argument(
        "--margin", type=float, default=0.10, help="BER tolerance (fraction, default 0.10)"
    )

    explore = subparsers.add_parser(
        "explore",
        help="search the operator design space for the BER/energy Pareto frontier",
    )
    explore.add_argument(
        "--architectures",
        nargs="+",
        choices=sorted(ADDER_GENERATORS),
        default=["rca", "bka"],
        help="adder architectures spanned by the space",
    )
    explore.add_argument(
        "--widths",
        type=int,
        nargs="+",
        default=[8, 16],
        help="operand widths in bits (e.g. 8 16 32 64)",
    )
    explore.add_argument(
        "--windows",
        nargs="+",
        default=["none"],
        help="speculation windows; 'none' selects the plain architectures, "
        "integers add the speculative carry-window operator (e.g. none 4 8)",
    )
    explore.add_argument(
        "--clock-scales",
        type=float,
        nargs="+",
        default=None,
        help="clock periods as fractions of each candidate's guard-banded "
        "critical path (default: the matched Table III grid)",
    )
    explore.add_argument(
        "--vdd",
        type=float,
        nargs="+",
        default=None,
        help="supply voltages of the dense grid (with --clock-scales)",
    )
    explore.add_argument(
        "--vbb",
        type=float,
        nargs="+",
        default=None,
        help="body-bias voltages of the dense grid (with --clock-scales)",
    )
    explore.add_argument(
        "--strategy",
        choices=sorted(SEARCH_STRATEGIES),
        default="successive-halving",
        help="search strategy",
    )
    explore.add_argument(
        "--budget",
        type=int,
        default=None,
        help="maximum paper-fidelity candidate evaluations (default: unbounded)",
    )
    explore.add_argument("--seed", type=int, default=2017, help="sampling/stimulus seed")
    explore.add_argument(
        "--vectors", type=int, default=4000, help="paper-fidelity stimulus vectors"
    )
    explore.add_argument(
        "--screen-vectors",
        type=int,
        default=None,
        help="screening stimulus vectors (default: max(200, vectors // 8))",
    )
    explore.add_argument(
        "--max-ber",
        type=float,
        default=None,
        help="BER budget (fraction) applied to the ranked report",
    )
    explore.add_argument(
        "--top", type=int, default=10, help="rows of the ranked-configuration table"
    )
    explore.add_argument(
        "--frontier",
        help="frontier JSON file: loaded (resume) when present, always written",
    )
    explore.add_argument(
        "--robust-quantile",
        type=float,
        default=None,
        help="score candidates by this BER quantile over Monte Carlo "
        "variation samples instead of nominal BER (e.g. 0.95); on "
        "--frontier resume, points scored differently are dropped",
    )
    explore.add_argument(
        "--robust-samples",
        type=int,
        default=None,
        help="Monte Carlo samples per candidate for robust scoring "
        "(default 32; requires --robust-quantile)",
    )
    _add_sweep_arguments(explore)

    montecarlo = subparsers.add_parser(
        "montecarlo",
        help="Monte Carlo variation characterization: BER distributions and "
        "yield vs Vdd under sampled per-gate mismatch",
    )
    _add_adder_arguments(montecarlo)
    _add_pattern_arguments(montecarlo)
    _add_sweep_arguments(montecarlo)
    montecarlo.add_argument(
        "--corner",
        choices=[corner.value for corner in ProcessCorner],
        default=ProcessCorner.TYPICAL.value,
        help="process corner the mismatch is sampled around (default TT)",
    )
    montecarlo.add_argument(
        "--samples", type=int, default=64, help="Monte Carlo samples (dies)"
    )
    montecarlo.add_argument(
        "--sigma-vt",
        type=float,
        default=GateVariationModel().sigma_vt,
        help="per-gate threshold-voltage mismatch sigma in volts",
    )
    montecarlo.add_argument(
        "--sigma-current",
        type=float,
        default=GateVariationModel().sigma_current_factor,
        help="per-gate relative current-factor mismatch sigma",
    )
    montecarlo.add_argument(
        "--margin",
        type=float,
        default=0.02,
        help="BER margin (fraction) the yield is evaluated against",
    )
    montecarlo.add_argument(
        "--vdd",
        type=float,
        nargs="+",
        default=list(PAPER_SUPPLY_VOLTAGES),
        help="supply voltages of the yield sweep (matched nominal clock, "
        "no body bias)",
    )
    _add_json_argument(montecarlo)

    faults = subparsers.add_parser(
        "faults",
        help="structural single-stuck-at fault campaign (coverage report)",
    )
    _add_adder_arguments(faults)
    _add_pattern_arguments(faults)
    _add_sweep_arguments(faults)
    _add_json_argument(faults)

    batch = subparsers.add_parser(
        "batch",
        help="run a JSON job-spec file through one session with cross-job "
        "sweep deduplication",
    )
    batch.add_argument(
        "jobs_file",
        help="JSON file: a list of job documents or {'jobs': [...]} "
        "(each document carries a 'type' tag, e.g. 'characterize')",
    )
    _add_sweep_arguments(batch)

    serve = subparsers.add_parser(
        "serve",
        help="serve job submissions over HTTP: an async admission queue "
        "batching concurrent requests into deduplicated session windows",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port; 0 picks a free port (printed on the readiness line)",
    )
    serve.add_argument(
        "--window",
        type=float,
        default=0.05,
        help="admission batch window in seconds: requests arriving within "
        "one window run as a single deduplicated session batch "
        "(default: 0.05)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="most jobs dispatched per batch window (default: 16)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=20.0,
        help="sustained admissions per second per client (default: 20)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=40,
        help="admission burst per client before 429s (default: 40)",
    )
    serve.add_argument(
        "--hot-entries",
        type=int,
        default=256,
        help="finished results kept in the in-memory hot tier in front of "
        "the store; 0 disables it (default: 256)",
    )
    _add_sweep_arguments(serve)

    store = subparsers.add_parser(
        "store", help="inspect and bound the on-disk sweep result store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_commands.add_parser(
        "stats", help="entry count and on-disk footprint of the store"
    )
    _add_store_dir_argument(store_stats)
    _add_json_argument(store_stats)
    store_verify = store_commands.add_parser(
        "verify", help="fsck pass: validate every entry, quarantine corrupt ones"
    )
    _add_store_dir_argument(store_verify)
    store_migrate = store_commands.add_parser(
        "migrate",
        help="repack legacy per-entry JSON stores into the current packfile "
        "layout (lossless; unreadable entries are quarantined)",
    )
    _add_store_dir_argument(store_migrate)
    store_prune = store_commands.add_parser(
        "prune", help="delete oldest entries until the store fits the limits"
    )
    _add_store_dir_argument(store_prune)
    store_prune.add_argument(
        "--max-entries", type=int, default=None, help="keep at most this many entries"
    )
    store_prune.add_argument(
        "--max-bytes", type=int, default=None, help="keep at most this many bytes"
    )
    store_prune.add_argument(
        "--all", action="store_true", help="delete every entry (same as --max-entries 0)"
    )

    trace = subparsers.add_parser(
        "trace", help="inspect JSONL trace files recorded with --trace"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_commands.add_parser(
        "summary",
        help="per-phase time breakdown, cache/dedup funnel and shard timing",
    )
    trace_summary.add_argument("trace_file", help="JSONL trace file (from --trace)")
    _add_json_argument(trace_summary)
    trace_validate = trace_commands.add_parser(
        "validate",
        help="check every record against the trace schema and the span-tree "
        "structure (exit 1 on problems)",
    )
    trace_validate.add_argument("trace_file", help="JSONL trace file (from --trace)")

    lint = subparsers.add_parser(
        "lint",
        help="check Python sources against the repo's determinism, "
        "resilience and async invariants (RPL0xx rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0 "
        "(the ratchet: shrink it, never grow it, in normal development)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (code, title, rationale) and exit",
    )
    _add_json_argument(lint)
    return parser


def _add_adder_arguments(parser: argparse.ArgumentParser, multiple: bool = False) -> None:
    architectures = sorted(ADDER_GENERATORS)
    if multiple:
        parser.add_argument(
            "--adder",
            nargs="+",
            default=["rca8", "bka8", "rca16", "bka16"],
            help="adders as <arch><width>, e.g. rca8 bka16",
        )
    else:
        parser.add_argument(
            "--architecture", choices=architectures, default="rca", help="adder architecture"
        )
        parser.add_argument("--width", type=int, default=8, help="operand width in bits")


def _add_pattern_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pattern",
        choices=sorted(PATTERN_GENERATORS),
        default="uniform",
        help="stimulus generator",
    )
    parser.add_argument("--vectors", type=int, default=4000, help="stimulus vectors")
    parser.add_argument("--seed", type=int, default=2017, help="stimulus seed")


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (default: 1, serial)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard wall-clock budget in seconds; a shard running past "
        "it is failed and retried per --on-worker-failure (default: none)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="failed attempts per shard before falling back to in-process "
        "execution (default: 2)",
    )
    parser.add_argument(
        "--on-worker-failure",
        choices=FAILURE_ACTIONS,
        default=None,
        help="recovery action for crashed / timed-out / corrupt shards "
        "(default: retry)",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="pickle the stimulus into every shard instead of passing it "
        "through shared memory (results are byte-identical either way)",
    )
    _add_store_dir_argument(parser)
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the sweep result store",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="append a JSONL span trace of the run to this file (view with "
        "'repro trace summary'); results are byte-identical either way",
    )


def _add_store_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        help="sweep result store directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)",
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the typed result object as JSON instead of text tables",
    )


# ---------------------------------------------------------------------------
# The thin adapter: args -> job -> Session.run -> render
# ---------------------------------------------------------------------------


def _checked(build: Callable[[], Any]) -> Any:
    """Run a job/session constructor, turning ValueError into a clean exit."""
    try:
        return build()
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _session(args: argparse.Namespace) -> Session:
    """Build the invocation's session from the shared store options.

    ``--jobs`` becomes the session default, which is what jobs without their
    own :class:`SweepOptions` (e.g. entries of a ``repro batch`` file)
    inherit.
    """
    options = _checked(
        lambda: StoreOptions(
            cache_dir=getattr(args, "cache_dir", None),
            no_cache=getattr(args, "no_cache", False),
        )
    )
    sweep = _sweep_options(args)
    return _checked(
        lambda: Session.from_options(
            options,
            jobs=getattr(args, "jobs", 1),
            policy=sweep.policy(),
            shared_memory=sweep.shared_memory,
            trace=getattr(args, "trace", None),
        )
    )


def _sweep_options(args: argparse.Namespace) -> SweepOptions:
    return _checked(
        lambda: SweepOptions(
            jobs=getattr(args, "jobs", 1),
            shard_timeout=getattr(args, "shard_timeout", None),
            max_retries=getattr(args, "max_retries", None),
            on_worker_failure=getattr(args, "on_worker_failure", None),
            shared_memory=False if getattr(args, "no_shm", False) else None,
        )
    )


def _pattern_options(args: argparse.Namespace) -> PatternOptions:
    return PatternOptions(kind=args.pattern, vectors=args.vectors, seed=args.seed)


def _emit(args: argparse.Namespace, result: Any) -> int:
    """Print a typed result: rendered text, or JSON under ``--json``.

    A fault-recovery execution report, when the run has one with actual
    faults, goes to stderr -- stdout stays byte-identical to a fault-free
    run in both output modes.
    """
    execution = getattr(result, "execution", None)
    if execution is not None and execution.faulted:
        print(execution.render(), file=sys.stderr)
    if getattr(args, "json", False):
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.render())
    return 0


def _run(session: Session, job: Job) -> Any:
    """Run a job, exiting cleanly only on user-facing session errors.

    Library defects surfacing as other exceptions keep their traceback.
    """
    try:
        return session.run(job)
    except SessionError as error:
        raise SystemExit(str(error)) from None


def _command_synthesize(args: argparse.Namespace) -> int:
    job = _checked(lambda: SynthesizeJob(operators=tuple(args.adder)))
    session = Session(store=None)
    return _emit(args, _run(session, job))


def _command_characterize(args: argparse.Namespace) -> int:
    job = _checked(
        lambda: CharacterizeJob(
            operator=f"{args.architecture}{args.width}",
            pattern=_pattern_options(args),
            sweep=_sweep_options(args),
            output=args.output,
        )
    )
    return _emit(args, _run(_session(args), job))


def _command_table4(args: argparse.Namespace) -> int:
    job = _checked(
        lambda: Table4Job(
            datasets=tuple(args.dataset),
            vectors=args.vectors,
            seed=args.seed,
            sweep=_sweep_options(args),
        )
    )
    return _emit(args, _run(_session(args), job))


def _command_fig5(args: argparse.Namespace) -> int:
    job = _checked(
        lambda: Fig5Job(
            operator=f"{args.architecture}{args.width}",
            supply_voltages=tuple(args.vdd),
            vectors=args.vectors,
            sweep=_sweep_options(args),
        )
    )
    return _emit(args, _run(_session(args), job))


def _command_calibrate(args: argparse.Namespace) -> int:
    job = _checked(
        lambda: CalibrateJob(
            operator=f"{args.architecture}{args.width}",
            tclk_ns=args.tclk_ns,
            vdd=args.vdd,
            vbb=args.vbb,
            metric=args.metric,
            pattern=_pattern_options(args),
            sweep=_sweep_options(args),
            output=args.output,
        )
    )
    return _emit(args, _run(_session(args), job))


def _command_speculate(args: argparse.Namespace) -> int:
    job = _checked(lambda: SpeculateJob(dataset=args.dataset, margin=args.margin))
    session = Session(store=None)
    return _emit(args, _run(session, job))


def _command_explore(args: argparse.Namespace) -> int:
    job = _checked(
        lambda: ExploreJob(
            architectures=tuple(args.architectures),
            widths=tuple(args.widths),
            windows=tuple(args.windows),
            clock_scales=(
                tuple(args.clock_scales) if args.clock_scales is not None else None
            ),
            supply_voltages=tuple(args.vdd) if args.vdd else None,
            body_bias_voltages=tuple(args.vbb) if args.vbb else None,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            vectors=args.vectors,
            screen_vectors=args.screen_vectors,
            max_ber=args.max_ber,
            top=args.top,
            frontier=args.frontier,
            robust_quantile=args.robust_quantile,
            robust_samples=args.robust_samples,
            sweep=_sweep_options(args),
        )
    )
    return _emit(args, _run(_session(args), job))


def _command_montecarlo(args: argparse.Namespace) -> int:
    job = _checked(
        lambda: MonteCarloJob(
            operator=f"{args.architecture}{args.width}",
            pattern=_pattern_options(args),
            corner=args.corner,
            samples=args.samples,
            sigma_vt=args.sigma_vt,
            sigma_current=args.sigma_current,
            margin=args.margin,
            supply_voltages=tuple(args.vdd),
            sweep=_sweep_options(args),
        )
    )
    return _emit(args, _run(_session(args), job))


def _command_faults(args: argparse.Namespace) -> int:
    job = _checked(
        lambda: FaultSweepJob(
            operator=f"{args.architecture}{args.width}",
            pattern=_pattern_options(args),
            sweep=_sweep_options(args),
        )
    )
    return _emit(args, _run(_session(args), job))


def _command_batch(args: argparse.Namespace) -> int:
    path = pathlib.Path(args.jobs_file)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise SystemExit(f"cannot read jobs file {args.jobs_file}: {error}") from None
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"jobs file {args.jobs_file} is not valid JSON: {error}"
        ) from None
    jobs = _checked(lambda: jobs_from_document(document))
    session = _session(args)
    try:
        batch = session.run_batch(jobs)
    except SessionError as error:
        raise SystemExit(str(error)) from None
    for index, (job, result) in enumerate(zip(jobs, batch.results), start=1):
        print(f"== job {index}: {job_type_name(job)} ==")
        print(result.render())
        print()
    print(batch.report.render())
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import CharacterizationService, ServeConfig

    session = _session(args)
    config = _checked(
        lambda: ServeConfig(
            host=args.host,
            port=args.port,
            window_s=args.window,
            max_batch_jobs=args.max_batch,
            rate_per_s=args.rate,
            burst=args.burst,
            hot_entries=args.hot_entries,
        )
    )
    service = CharacterizationService(session, config, trace=args.trace)
    return asyncio.run(service.run())


def _command_store(args: argparse.Namespace) -> int:
    if args.store_command == "stats":
        job: Job = StoreStatsJob()
    elif args.store_command == "verify":
        job = StoreVerifyJob()
    elif args.store_command == "migrate":
        job = StoreMigrateJob()
    else:  # store_command == "prune" (the subparser enforces the choice)
        job = _checked(
            lambda: StorePruneJob(
                max_entries=args.max_entries,
                max_bytes=args.max_bytes,
                prune_all=args.all,
            )
        )
    return _emit(args, _run(_session(args), job))


def _command_trace(args: argparse.Namespace) -> int:
    try:
        records = load_trace(args.trace_file)
    except OSError as error:
        raise SystemExit(
            f"cannot read trace file {args.trace_file}: {error}"
        ) from None
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if args.trace_command == "validate":
        problems = validate_trace(records)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        print(f"{args.trace_file}: {len(records)} span(s), schema OK")
        return 0
    summary = summarize_trace(records)
    if getattr(args, "json", False):
        print(json.dumps(summary.to_json(), indent=2))
    else:
        print(summary.render())
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in sorted(RULE_CODES):
            title, rationale = RULE_CODES[code]
            print(f"{code}  {title}")
            print(f"        {rationale}")
        return 0
    baseline_path: pathlib.Path | None = None
    if args.baseline is not None and args.no_baseline:
        raise SystemExit("--baseline and --no-baseline are mutually exclusive")
    if args.baseline is not None:
        baseline_path = pathlib.Path(args.baseline)
    elif not args.no_baseline:
        default = pathlib.Path(DEFAULT_BASELINE_NAME)
        if default.is_file():
            baseline_path = default
    if args.update_baseline:
        target = baseline_path or pathlib.Path(DEFAULT_BASELINE_NAME)
        try:
            everything = lint_paths(args.paths)
        except LintError as error:
            raise SystemExit(str(error)) from None
        write_baseline(target, everything.new_findings)
        print(
            f"baseline written: {target} "
            f"({len(everything.new_findings)} finding(s))"
        )
        return 0
    try:
        baseline = load_baseline(baseline_path) if baseline_path else {}
        report = lint_paths(args.paths, baseline=baseline)
    except LintError as error:
        raise SystemExit(str(error)) from None
    if getattr(args, "json", False):
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        output = report.render()
        if output:
            print(output)
    return 0 if report.clean else 1


_COMMANDS = {
    "synthesize": _command_synthesize,
    "characterize": _command_characterize,
    "table4": _command_table4,
    "fig5": _command_fig5,
    "calibrate": _command_calibrate,
    "speculate": _command_speculate,
    "explore": _command_explore,
    "montecarlo": _command_montecarlo,
    "faults": _command_faults,
    "batch": _command_batch,
    "serve": _command_serve,
    "store": _command_store,
    "trace": _command_trace,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Ctrl-C exits with the conventional status 130 (128 + SIGINT) and a
    one-line note instead of a traceback; shards completed before the
    interrupt are already persisted in the result store, so rerunning the
    same command resumes warm.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print(
            "interrupted; completed sweep shards are persisted -- rerun to "
            "resume warm",
            file=sys.stderr,
        )
        return 130


if __name__ == "__main__":
    sys.exit(main())
