"""Committed baseline of grandfathered lint findings.

A freshly written rule usually surfaces legacy findings that cannot all be
fixed in the PR that introduces it.  Rather than watering the rule down,
the surplus is *grandfathered*: the committed baseline file maps
``path::code`` keys to allowed finding counts, the gate tolerates exactly
that many, and anything beyond is a new finding that fails CI.  Counts --
not line numbers -- keep the baseline stable under unrelated edits to the
same file, and make every fix visible: when a grandfathered finding is
removed, the stale allowance is reported so the baseline can be ratcheted
down (``repro lint --update-baseline``).

File format (sorted keys, trailing newline -- diff-friendly)::

    {
      "entries": {
        "src/repro/cli.py::RPL004": 2
      },
      "version": 1
    }
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Mapping

from repro.lint.framework import Finding, LintError, finding_counts

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]

#: Baseline file ``repro lint`` picks up automatically from the working
#: directory (the committed repo-root file).
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_VERSION = 1


def load_baseline(path: str | pathlib.Path) -> dict[str, int]:
    """Read a baseline file into the ``path::code -> count`` map."""
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise LintError(f"cannot read baseline {path}: {error}") from None
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise LintError(f"baseline {path} is not valid JSON: {error}") from None
    if not isinstance(document, Mapping) or document.get("version") != _VERSION:
        raise LintError(
            f"baseline {path} has an unsupported layout (expected "
            f'{{"version": {_VERSION}, "entries": {{...}}}})'
        )
    entries = document.get("entries", {})
    if not isinstance(entries, Mapping):
        raise LintError(f"baseline {path}: 'entries' must be an object")
    baseline: dict[str, int] = {}
    for key, count in entries.items():
        if not isinstance(key, str) or "::" not in key:
            raise LintError(f"baseline {path}: malformed key {key!r}")
        if not isinstance(count, int) or count < 1:
            raise LintError(
                f"baseline {path}: count for {key!r} must be a positive "
                f"integer, got {count!r}"
            )
        baseline[key] = count
    return baseline


def render_baseline(findings: Iterable[Finding]) -> str:
    """The baseline file text grandfathering exactly these findings."""
    document = {"entries": finding_counts(findings), "version": _VERSION}
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(path: str | pathlib.Path, findings: Iterable[Finding]) -> None:
    """Write (or rewrite) the baseline file for these findings."""
    try:
        pathlib.Path(path).write_text(render_baseline(findings), encoding="utf-8")
    except OSError as error:
        raise LintError(f"cannot write baseline {path}: {error}") from None
