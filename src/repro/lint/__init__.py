"""``repro lint``: AST-based enforcement of the repo's own contracts.

A dependency-free, single-pass static analyzer whose rules encode the
invariants the codebase's guarantees rest on -- determinism (seeded RNG,
clock seam, ordered iteration, sorted JSON), resilience hygiene (executor
and shared-memory seams, counted-not-swallowed errors), async discipline
in the serving layer, and the JSON round-trip contract of the job API.

* :mod:`repro.lint.framework` -- rule registry, single-pass walker,
  inline suppressions, report shaping.
* :mod:`repro.lint.rules`     -- the ``RPL0xx`` rules themselves.
* :mod:`repro.lint.baseline`  -- the committed grandfathering baseline.

Importing this package registers every rule; ``repro lint [paths]`` is
the CLI front-end.
"""

from repro.lint.framework import (
    Finding,
    LintError,
    LintReport,
    LintRule,
    all_rules,
    lint_paths,
    lint_source,
)
from repro.lint import rules as _rules  # registers the RPL rules
from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.rules import RULE_CODES

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintError",
    "LintReport",
    "LintRule",
    "RULE_CODES",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]

del _rules
