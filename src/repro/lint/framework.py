"""Single-pass AST lint framework behind ``repro lint``.

The repo's headline guarantees -- byte-identical serial/sharded/traced/
served results, crash-consistent stores, counted-not-swallowed errors --
are invariants of *how the code is written*, not just of what the tests
happen to execute.  This module is the dependency-free framework that
checks them statically:

* :class:`LintRule` -- one registered invariant with an ``RPL0xx`` code.
  Rules declare the AST node types they care about (``interests``) and the
  framework walks each file's tree exactly once, dispatching every node to
  the interested rules, so adding rules never adds passes.
* :class:`FileContext` -- per-file services shared by all rules: the source
  lines, an import-alias map so ``np.random.rand`` resolves to
  ``numpy.random.rand`` whatever the import spelling, and the enclosing
  function/class stacks maintained during the walk.
* Inline suppressions -- ``# repro-lint: disable=RPL001[,RPL002]`` on the
  finding's line, or ``# repro-lint: disable-next-line=...`` on the line
  above.  ``disable=all`` silences every rule for that line.  Suppressions
  are deliberate, reviewable exceptions; the committed baseline (see
  :mod:`repro.lint.baseline`) is for *grandfathered* findings only.

The runner (:func:`lint_paths`) accepts files and directories, walks
directories for ``*.py`` (skipping hidden directories and caches), and
returns a :class:`LintReport` with the findings split into new /
baselined / suppressed, ready for the human or ``--json`` renderers in
:mod:`repro.cli`.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "LintError",
    "LintReport",
    "LintRule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]


class LintError(Exception):
    """A path or file the linter cannot process (user-facing)."""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    @property
    def baseline_key(self) -> str:
        """The ``path::code`` key findings are grandfathered under."""
        return f"{self.path}::{self.code}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintRule:
    """Base class of one registered invariant.

    Subclasses set ``code`` (``RPL0xx``), ``title`` (one line, shown by
    ``--list-rules``), ``rationale`` (why the invariant matters),
    ``interests`` (the AST node types to dispatch), and implement
    :meth:`check`.  A fresh instance is created per linted file, so rules
    may keep per-file state between dispatched nodes.
    """

    code: str = ""
    title: str = ""
    rationale: str = ""
    interests: tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, ctx: "FileContext", message: str) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Registered rule classes, in registration (= code) order.
_RULES: list[type[LintRule]] = []


def register(rule_cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry (duplicate codes refused)."""
    if not rule_cls.code or not re.fullmatch(r"RPL\d{3}", rule_cls.code):
        raise ValueError(f"rule {rule_cls.__name__} needs an RPL0xx code")
    if any(existing.code == rule_cls.code for existing in _RULES):
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _RULES.append(rule_cls)
    return rule_cls


def all_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [cls() for cls in sorted(_RULES, key=lambda cls: cls.code)]


class FileContext:
    """Per-file services shared by every rule during the single pass."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = _collect_imports(tree)
        #: Innermost-last stack of enclosing function definitions.
        self.func_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        #: Innermost-last stack of enclosing class definitions.
        self.class_stack: list[ast.ClassDef] = []

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a name/attribute chain, through import aliases.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; a bare name that was never imported
        resolves to itself (builtins keep their own name).  Anything that
        is not a pure name/attribute chain resolves to ``None``.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def path_is(self, *suffixes: str) -> bool:
        """Whether the file path ends with any of the posix suffixes."""
        posix = pathlib.PurePath(self.path).as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, over the whole module (any scope)."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = alias.name if alias.asname else local
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{module}.{alias.name}" if module else alias.name
    return imports


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next-line)\s*=\s*"
    r"(all|RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
)


def _suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Line number (1-based) -> codes suppressed on that line."""
    table: dict[int, frozenset[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        target = number + 1 if match.group(1) == "disable-next-line" else number
        codes = frozenset(
            code.strip() for code in match.group(2).split(",")
        )
        table[target] = table.get(target, frozenset()) | codes
    return table


def _suppressed(finding: Finding, table: Mapping[int, frozenset[str]]) -> bool:
    codes = table.get(finding.line)
    return codes is not None and (finding.code in codes or "all" in codes)


class _Walker:
    """One recursive pass dispatching nodes to interested rules."""

    def __init__(self, rules: Sequence[LintRule], ctx: FileContext) -> None:
        self._dispatch: dict[type, list[LintRule]] = {}
        for rule in rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)
        self._ctx = ctx
        self.findings: list[Finding] = []

    def walk(self, node: ast.AST) -> None:
        for rule in self._dispatch.get(type(node), ()):
            self.findings.extend(rule.check(node, self._ctx))
        is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        is_class = isinstance(node, ast.ClassDef)
        if is_func:
            self._ctx.func_stack.append(node)
        if is_class:
            self._ctx.class_stack.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                self.walk(child)
        finally:
            if is_func:
                self._ctx.func_stack.pop()
            if is_class:
                self._ctx.class_stack.pop()


def _lint_tree(
    source: str, path: str, rules: Sequence[LintRule] | None
) -> tuple[list[Finding], int]:
    """Findings plus the count suppressed inline, for one source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintError(f"{path}: cannot parse: {error}") from None
    ctx = FileContext(path, source, tree)
    walker = _Walker(all_rules() if rules is None else rules, ctx)
    walker.walk(tree)
    table = _suppressions(ctx.lines)
    findings = [f for f in walker.findings if not _suppressed(f, table)]
    suppressed = len(walker.findings) - len(findings)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings, suppressed


def lint_source(
    source: str, path: str, rules: Sequence[LintRule] | None = None
) -> list[Finding]:
    """Lint one source text; returns unsuppressed findings, in line order.

    ``path`` is the path findings carry and rules scope on; it need not
    exist on disk (the fixture tests lint synthetic paths).
    """
    findings, _suppressed_count = _lint_tree(source, path, rules)
    return findings


@dataclasses.dataclass
class LintReport:
    """Outcome of one linter run over a set of paths."""

    files: int
    new_findings: list[Finding]
    baselined: int
    suppressed: int
    stale_baseline: list[str]

    @property
    def clean(self) -> bool:
        return not self.new_findings

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "files": self.files,
            "findings": [finding.to_json() for finding in self.new_findings],
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "stale_baseline": sorted(self.stale_baseline),
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [finding.render() for finding in self.new_findings]
        summary = (
            f"{len(self.new_findings)} new finding(s) across {self.files} "
            f"file(s) ({self.baselined} baselined, {self.suppressed} "
            f"suppressed)"
        )
        if self.stale_baseline:
            summary += (
                f"; {len(self.stale_baseline)} stale baseline entr"
                f"{'y' if len(self.stale_baseline) == 1 else 'ies'} "
                f"(fixed findings -- tighten the baseline)"
            )
        lines.append(summary)
        return "\n".join(lines)


_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", ".venv", "node_modules"})


def collect_files(paths: Sequence[str]) -> list[str]:
    """Expand files and directories into a sorted, deduplicated file list."""
    seen: dict[str, None] = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            seen[_normalize(path)] = None
        elif path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if any(
                    part in _SKIP_DIRS or part.startswith(".")
                    for part in file.parts
                ):
                    continue
                seen[_normalize(file)] = None
        else:
            raise LintError(f"no such file or directory: {raw}")
    return sorted(seen)


def _normalize(path: pathlib.Path) -> str:
    """Posix path relative to the working directory when inside it."""
    try:
        relative = path.resolve().relative_to(pathlib.Path.cwd().resolve())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str],
    baseline: Mapping[str, int] | None = None,
    rules: Sequence[LintRule] | None = None,
    read: Callable[[str], str] | None = None,
) -> LintReport:
    """Lint files/directories and fold in the baseline allowances.

    ``baseline`` maps ``path::code`` keys to grandfathered finding counts
    (see :mod:`repro.lint.baseline`): for each key, that many findings are
    tolerated (oldest line first) and the surplus is *new*.  Baseline keys
    with fewer findings than their allowance are reported stale so the
    allowance can be ratcheted down.
    """
    files = collect_files(paths)
    all_findings: list[Finding] = []
    suppressed = 0
    for file in files:
        if read is not None:
            source = read(file)
        else:
            try:
                source = pathlib.Path(file).read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as error:
                raise LintError(f"cannot read {file}: {error}") from None
        findings, file_suppressed = _lint_tree(source, file, rules)
        all_findings.extend(findings)
        suppressed += file_suppressed
    return _apply_baseline(all_findings, dict(baseline or {}), len(files), suppressed)


def _apply_baseline(
    findings: Sequence[Finding],
    baseline: dict[str, int],
    files: int,
    suppressed: int,
) -> LintReport:
    remaining = dict(baseline)
    new_findings: list[Finding] = []
    baselined = 0
    for finding in findings:
        allowance = remaining.get(finding.baseline_key, 0)
        if allowance > 0:
            remaining[finding.baseline_key] = allowance - 1
            baselined += 1
        else:
            new_findings.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return LintReport(
        files=files,
        new_findings=new_findings,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
    )


def finding_counts(findings: Iterable[Finding]) -> dict[str, int]:
    """``path::code`` -> count map (the baseline-file payload)."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    return counts
