"""The project-specific ``RPL0xx`` rules behind ``repro lint``.

Every rule encodes an invariant the repo actually depends on -- each
docstring names the guarantee it protects and the PR history that made it
a contract.  The codes group by theme:

=========  ===========================================================
RPL001     determinism: no unseeded ``np.random`` / ``random`` use
RPL002     determinism: wall-clock reads only via ``repro.obs.clock``
RPL003     determinism: no iteration over set expressions
RPL004     determinism: ``json.dumps`` must pass ``sort_keys=True``
RPL005     resilience: ``ProcessPoolExecutor`` only in ``core/resilience``
RPL006     resilience: broad excepts must re-raise or count
RPL007     resilience: shared-memory segments via the ``core/shm`` seam,
           paired with close/unlink or ownership transfer
RPL008     async: no blocking calls inside ``async def`` bodies
RPL009     api: every ``*Job`` dataclass registered in ``JOB_TYPES``
RPL010     api: hand-written ``to_json`` on ``*Job``/``*Options``
           dataclasses must cover every declared field
=========  ===========================================================

Suppress a deliberate exception inline with
``# repro-lint: disable=RPL0xx``; grandfather legacy findings in the
committed baseline (``lint-baseline.json``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import FileContext, Finding, LintRule, register

__all__ = ["RULE_CODES"]


def _call_qualname(node: ast.Call, ctx: FileContext) -> str | None:
    return ctx.resolve(node.func)


def _keyword(node: ast.Call, name: str) -> ast.keyword | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword
    return None


def _has_double_star(node: ast.Call) -> bool:
    return any(keyword.arg is None for keyword in node.keywords)


# ---------------------------------------------------------------------------
# determinism


@register
class UnseededRandomRule(LintRule):
    """RPL001: calls into process-global random state.

    Byte-identical serial vs sharded vs warm reruns (the PR-2/PR-4 store
    contract) require every stochastic draw to come from an explicitly
    seeded generator object (``np.random.default_rng(seed)``,
    ``random.Random(seed)``).  Module-level functions (``np.random.rand``,
    ``random.choice``) draw from interpreter-global state whose sequence
    depends on import order and worker interleaving -- and ``seed()`` on
    that global state just moves the problem around.
    """

    code = "RPL001"
    title = "unseeded global RNG use (np.random.*/random.* module functions)"
    rationale = (
        "global RNG state breaks byte-identical serial/sharded/warm reruns"
    )
    interests = (ast.Call,)

    #: Constructors of explicitly seeded generator objects are fine.
    _ALLOWED_NUMPY = frozenset(
        {
            "default_rng",
            "Generator",
            "RandomState",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "MT19937",
            "SFC64",
        }
    )
    _ALLOWED_STDLIB = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = _call_qualname(node, ctx)
        if name is None:
            return
        if name.startswith("numpy.random."):
            leaf = name.rsplit(".", 1)[1]
            if leaf not in self._ALLOWED_NUMPY:
                yield self.finding(
                    node,
                    ctx,
                    f"call to global-state RNG {name!r}; draw from a seeded "
                    "np.random.default_rng(seed) generator instead",
                )
        elif name.startswith("random.") and name.count(".") == 1:
            leaf = name.rsplit(".", 1)[1]
            if leaf not in self._ALLOWED_STDLIB:
                yield self.finding(
                    node,
                    ctx,
                    f"call to global-state RNG {name!r}; use a seeded "
                    "random.Random(seed) instance instead",
                )


@register
class WallClockRule(LintRule):
    """RPL002: wall-clock reads outside the ``repro.obs.clock`` seam.

    Store entries, trace records and reports embed timestamps; reading the
    wall clock ad hoc scatters nondeterminism and forces tests to
    monkeypatch each call site separately (the pre-PR-10 store test did
    exactly that).  ``repro.obs.clock.wall_time()`` is the single
    sanctioned read: monkeypatch it once and every timestamp in the
    process follows.  Monotonic duration clocks (``perf_counter``,
    ``process_time``, ``monotonic``) are unaffected -- they never leak
    into persisted bytes.
    """

    code = "RPL002"
    title = "wall-clock read outside the repro.obs.clock seam"
    rationale = "ad-hoc timestamps scatter nondeterminism across persisted data"
    interests = (ast.Call,)

    _WALL_CLOCKS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )
    _ALLOWED_PATHS = ("repro/obs/clock.py",)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_is(*self._ALLOWED_PATHS):
            return
        name = _call_qualname(node, ctx)
        if name in self._WALL_CLOCKS:
            yield self.finding(
                node,
                ctx,
                f"direct wall-clock read {name}(); route it through "
                "repro.obs.clock.wall_time() so tests can pin time once",
            )


@register
class SetIterationRule(LintRule):
    """RPL003: iterating a set expression.

    Set iteration order depends on insertion history and hash
    randomization; a set feeding a loop, a join, or a serialized sequence
    makes output bytes run-dependent.  Everything rendered or persisted in
    this repo is sorted first -- iterate ``sorted(...)`` instead.
    """

    code = "RPL003"
    title = "iteration over a set expression (unordered)"
    rationale = "set order is run-dependent; rendered/serialized output is not"
    interests = (ast.For, ast.AsyncFor, ast.comprehension, ast.Call)

    #: Sequence constructors that freeze the (unordered) iteration order.
    _ORDER_FREEZERS = frozenset({"list", "tuple", "enumerate"})

    @staticmethod
    def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.resolve(node.func) in {"set", "frozenset"}
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            target = node.iter
            if self._is_set_expr(target, ctx):
                yield self.finding(
                    target,
                    ctx,
                    "iterating a set expression; wrap it in sorted(...) to fix "
                    "the order",
                )
        elif isinstance(node, ast.Call):
            name = ctx.resolve(node.func)
            freezes = name in self._ORDER_FREEZERS or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "join"
            )
            if freezes and node.args and self._is_set_expr(node.args[0], ctx):
                yield self.finding(
                    node.args[0],
                    ctx,
                    "freezing a set's unordered elements into a sequence; "
                    "use sorted(...) instead",
                )


@register
class JsonSortKeysRule(LintRule):
    """RPL004: ``json.dumps``/``json.dump`` without ``sort_keys=True``.

    Store entries, ``--json`` output and service responses are diffed
    byte-for-byte by the CI gates (obs-smoke, store-migration); key order
    must come from the data, not from dict insertion history.  Passing a
    computed ``sort_keys=...`` or ``**kwargs`` is accepted -- the rule only
    flags call sites that provably never sort.
    """

    code = "RPL004"
    title = "json.dumps/json.dump without sort_keys=True"
    rationale = "insertion-ordered keys make persisted/rendered JSON fragile"
    interests = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = _call_qualname(node, ctx)
        if name not in {"json.dumps", "json.dump"}:
            return
        if _has_double_star(node):
            return
        keyword = _keyword(node, "sort_keys")
        if keyword is None or (
            isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            yield self.finding(
                node,
                ctx,
                f"{name} without sort_keys=True; serialized key order must "
                "not depend on dict insertion history",
            )


# ---------------------------------------------------------------------------
# resilience


@register
class ExecutorSeamRule(LintRule):
    """RPL005: ``ProcessPoolExecutor`` constructed outside the resilience seam.

    ``repro.core.resilience.run_shards`` is the only executor owner: it is
    what retries crashed shards, rebuilds broken pools, enforces timeouts,
    caps backoff, and keeps every recovery path byte-identical (PR 6).  A
    directly constructed pool silently opts out of all of that.
    """

    code = "RPL005"
    title = "ProcessPoolExecutor constructed outside core/resilience.py"
    rationale = "pools built elsewhere bypass retry/timeout/recovery guarantees"
    interests = (ast.Call,)

    _ALLOWED_PATHS = ("repro/core/resilience.py",)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_is(*self._ALLOWED_PATHS):
            return
        name = _call_qualname(node, ctx)
        if name is None:
            return
        if name == "ProcessPoolExecutor" or name.endswith(
            ".ProcessPoolExecutor"
        ):
            yield self.finding(
                node,
                ctx,
                "direct ProcessPoolExecutor construction; dispatch through "
                "repro.core.resilience.run_shards for fault tolerance",
            )


@register
class SwallowedExceptionRule(LintRule):
    """RPL006: a broad except whose body neither re-raises nor counts.

    PR 6 turned every silent ``except ...: pass`` in the store into a
    counted ``stats.io_errors`` precisely because swallowed errors hide
    data loss until an integration test happens to trip over it.  A
    handler for ``Exception``/``BaseException`` (or a bare ``except``)
    must re-raise (any ``raise``), or record the event in a metric -- an
    augmented assignment on a counter attribute (``stats.errors += 1``)
    or an ``.add()/.observe()/.inc()`` call.
    """

    code = "RPL006"
    title = "broad except neither re-raises nor increments a counter"
    rationale = "swallowed errors hide data loss; count them or narrow the except"
    interests = (ast.ExceptHandler,)

    _COUNTING_ATTRS = frozenset({"add", "observe", "inc", "increment"})

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler, ctx: FileContext) -> bool:
        def broad(expr: ast.AST) -> bool:
            return ctx.resolve(expr) in {"Exception", "BaseException"}

        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Tuple):
            return any(broad(element) for element in handler.type.elts)
        return broad(handler.type)

    def _body_accounts(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._COUNTING_ATTRS
            ):
                return True
        return False

    def check(self, node: ast.ExceptHandler, ctx: FileContext) -> Iterator[Finding]:
        if not self._is_broad(node, ctx):
            return
        if self._body_accounts(node):
            return
        yield self.finding(
            node,
            ctx,
            "broad exception handler neither re-raises nor increments a "
            "metrics counter; narrow it, re-raise, or count the swallow",
        )


@register
class SharedMemorySeamRule(LintRule):
    """RPL007: shared-memory discipline.

    Two checks.  Outside ``repro/core/shm.py``, constructing
    ``multiprocessing.shared_memory.SharedMemory`` directly is flagged:
    the seam module owns naming (janitor-reapable ``repro_shm_<pid>_*``),
    spawn-safe attach, and the inline fallback -- ad-hoc segments leak on
    crash.  Inside any module, a function that binds a ``SharedMemory``
    handle must release it in a ``finally`` (``.close()``/``.unlink()``)
    or visibly transfer ownership (return it, or pass it to another
    callable that takes over) -- PR 9 fixed exactly the leak this catches.
    """

    code = "RPL007"
    title = "SharedMemory outside core/shm.py or without paired cleanup"
    rationale = "POSIX segments outlive their creator; unpaired handles leak"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Call)

    _SEAM = ("repro/core/shm.py",)

    @staticmethod
    def _is_shared_memory_call(node: ast.AST, ctx: FileContext) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = ctx.resolve(node.func)
        return name is not None and (
            name == "SharedMemory" or name.endswith(".SharedMemory")
        )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            if self._is_shared_memory_call(node, ctx) and not ctx.path_is(
                *self._SEAM
            ):
                yield self.finding(
                    node,
                    ctx,
                    "direct SharedMemory use; go through the repro.core.shm "
                    "seam (share_arrays/SharedArrayRef) so segments are "
                    "janitor-reapable and crash-safe",
                )
            return
        yield from self._check_pairing(node, ctx)

    def _check_pairing(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, ctx: FileContext
    ) -> Iterator[Finding]:
        bound: dict[str, ast.Call] = {}
        for stmt in ast.walk(func):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and self._is_shared_memory_call(stmt.value, ctx)
            ):
                bound[stmt.targets[0].id] = stmt.value
        for name, call in bound.items():
            if not self._released(func, name):
                yield self.finding(
                    call,
                    ctx,
                    f"SharedMemory handle {name!r} is neither released in a "
                    "finally (.close()/.unlink()) nor ownership-transferred "
                    "(returned / passed on); it leaks on any exception",
                )

    @staticmethod
    def _released(
        func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
    ) -> bool:
        def mentions(node: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node)
            )

        def transfers(value: ast.AST) -> bool:
            # Only the *bare* handle transfers ownership; returning a view
            # into it (``segment.buf[0]``) still leaks the handle itself.
            accessed = {
                id(sub.value)
                for sub in ast.walk(value)
                if isinstance(sub, (ast.Attribute, ast.Subscript))
                and isinstance(sub.value, ast.Name)
            }
            return any(
                isinstance(sub, ast.Name)
                and sub.id == name
                and id(sub) not in accessed
                for sub in ast.walk(value)
            )

        for node in ast.walk(func):
            if isinstance(node, ast.Try):
                for final_stmt in node.finalbody:
                    for sub in ast.walk(final_stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in {"close", "unlink"}
                            and mentions(sub.func.value)
                        ):
                            return True
            if isinstance(node, ast.Return) and node.value is not None:
                if transfers(node.value):
                    return True
            if isinstance(node, ast.Call):
                if any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in node.args
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# async / serve


@register
class AsyncBlockingRule(LintRule):
    """RPL008: blocking calls inside ``async def`` bodies.

    The serving layer runs one asyncio event loop for every client; a
    single blocking call stalls *all* connections for its duration (which
    is why ``Session.run_batch`` runs on a dedicated worker thread, PR 9).
    Flagged: ``time.sleep``, synchronous file I/O (``open``,
    ``Path.read_text``-style helpers), ``subprocess``/``os.system``, and
    direct ``session.run``/``run_batch`` calls.  Nested synchronous
    ``def``s are exempt -- they execute wherever they are called from.
    """

    code = "RPL008"
    title = "blocking call inside an async def body"
    rationale = "one blocking call stalls every connection on the event loop"
    interests = (ast.Call,)

    _BLOCKING_QUALNAMES = frozenset(
        {
            "time.sleep",
            "open",
            "os.system",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "subprocess.Popen",
            "socket.create_connection",
            "urllib.request.urlopen",
        }
    )
    _BLOCKING_ATTRS = frozenset(
        {"read_text", "write_text", "read_bytes", "write_bytes"}
    )
    _SESSION_HINTS = ("session",)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.func_stack or not isinstance(
            ctx.func_stack[-1], ast.AsyncFunctionDef
        ):
            return
        name = _call_qualname(node, ctx)
        if name in self._BLOCKING_QUALNAMES:
            yield self.finding(
                node,
                ctx,
                f"blocking call {name}() inside an async def; await an "
                "executor/thread instead of stalling the event loop",
            )
            return
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in self._BLOCKING_ATTRS:
                yield self.finding(
                    node,
                    ctx,
                    f"synchronous file I/O .{attr}() inside an async def; "
                    "stalls the event loop",
                )
            elif attr in {"run", "run_batch"}:
                base = ctx.resolve(node.func.value) or ""
                leaf = base.rsplit(".", 1)[-1].lstrip("_").lower()
                if any(hint in leaf for hint in self._SESSION_HINTS):
                    yield self.finding(
                        node,
                        ctx,
                        f"Session.{attr}() runs whole sweeps; inside an async "
                        "def it must be dispatched to a worker thread "
                        "(run_in_executor), never called directly",
                    )


# ---------------------------------------------------------------------------
# API surface


def _is_dataclass(node: ast.ClassDef, ctx: FileContext) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = ctx.resolve(target)
        if name in {"dataclass", "dataclasses.dataclass"}:
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[str]:
    names: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if isinstance(stmt.annotation, ast.Name) and stmt.annotation.id == (
                "ClassVar"
            ):
                continue
            if (
                isinstance(stmt.annotation, ast.Subscript)
                and isinstance(stmt.annotation.value, ast.Name)
                and stmt.annotation.value.id == "ClassVar"
            ):
                continue
            names.append(stmt.target.id)
    return names


@register
class JobRegistryRule(LintRule):
    """RPL009: a ``*Job`` dataclass missing from the ``JOB_TYPES`` registry.

    ``job_to_json``/``job_from_json`` -- the ``repro batch`` file format
    and the service admission path -- can only round-trip job types listed
    in ``JOB_TYPES``.  A new ``FooJob`` dataclass that is not registered
    constructs and runs fine locally, then fails the moment a batch file
    or an HTTP client names it; this rule turns that latent break into a
    lint finding in the defining module.
    """

    code = "RPL009"
    title = "*Job dataclass not registered in JOB_TYPES"
    rationale = "unregistered jobs cannot round-trip through batch/serve JSON"
    interests = (ast.Module,)

    def check(self, node: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        registry_values: set[str] | None = None
        job_classes: list[ast.ClassDef] = []
        for stmt in node.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name.endswith("Job"):
                if _is_dataclass(stmt, ctx):
                    job_classes.append(stmt)
            elif isinstance(stmt, ast.Assign):
                targets = [
                    target.id
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                ]
                if "JOB_TYPES" in targets:
                    registry_values = self._dict_value_names(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.target.id == "JOB_TYPES" and stmt.value is not None:
                    registry_values = self._dict_value_names(stmt.value)
        if registry_values is None:
            return
        for cls in job_classes:
            if cls.name not in registry_values:
                yield self.finding(
                    cls,
                    ctx,
                    f"dataclass {cls.name} is not registered in JOB_TYPES; "
                    "it cannot round-trip through job_to_json/job_from_json",
                )

    @staticmethod
    def _dict_value_names(node: ast.AST) -> set[str]:
        names: set[str] = set()
        if isinstance(node, ast.Dict):
            for value in node.values:
                if isinstance(value, ast.Name):
                    names.add(value.id)
        return names


@register
class RoundTripCoverageRule(LintRule):
    """RPL010: hand-written ``to_json`` dropping declared fields.

    ``*Job`` and ``*Options`` dataclasses are contractually *fully*
    JSON-round-trippable (the batch-file and serve admission formats).
    The generic ``dataclasses.asdict`` path covers every field by
    construction; a hand-written ``to_json`` returning a dict literal can
    silently drop a newly added field -- the job still runs, but a
    save/load cycle loses the option.  The rule checks literal-dict
    ``to_json`` bodies for full field coverage.  (Result dataclasses are
    exempt: their JSON is a curated document, not a field dump.)
    """

    code = "RPL010"
    title = "to_json on a *Job/*Options dataclass drops declared fields"
    rationale = "a dropped field silently loses options across save/load"
    interests = (ast.ClassDef,)

    def check(self, node: ast.ClassDef, ctx: FileContext) -> Iterator[Finding]:
        if not (node.name.endswith("Job") or node.name.endswith("Options")):
            return
        if not _is_dataclass(node, ctx):
            return
        fields = set(_dataclass_fields(node))
        if not fields:
            return
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "to_json":
                yield from self._check_to_json(stmt, fields, ctx)

    def _check_to_json(
        self, func: ast.FunctionDef, fields: set[str], ctx: FileContext
    ) -> Iterator[Finding]:
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            if not isinstance(stmt.value, ast.Dict):
                # asdict(self) or a computed document: coverage is either
                # automatic or beyond static reach; accept.
                return
            keys = {
                key.value
                for key in stmt.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            if any(key is None for key in stmt.value.keys):
                return  # **spread: cannot prove anything missing
            missing = sorted(fields - keys)
            if missing:
                yield self.finding(
                    stmt.value,
                    ctx,
                    "to_json drops declared field(s) "
                    f"{', '.join(missing)}; every *Job/*Options field must "
                    "round-trip through to_json/from_json",
                )
            return


#: Code -> (title, rationale) of every registered rule, for docs and CLI.
RULE_CODES = {
    cls.code: (cls.title, cls.rationale)
    for cls in (
        UnseededRandomRule,
        WallClockRule,
        SetIterationRule,
        JsonSortKeysRule,
        ExecutorSeamRule,
        SwallowedExceptionRule,
        SharedMemorySeamRule,
        AsyncBlockingRule,
        JobRegistryRule,
        RoundTripCoverageRule,
    )
}
