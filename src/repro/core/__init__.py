"""Core VOS characterization and statistical modelling (the paper's contribution).

Modules:

* :mod:`repro.core.triad`           -- operating triads (Tclk, Vdd, Vbb) and
  the Table III triad grids.
* :mod:`repro.core.metrics`         -- BER, MSE, Hamming / weighted Hamming
  distances, SNR and per-bit error probability.
* :mod:`repro.core.carry_model`     -- carry-chain arithmetic: theoretical
  maximal carry chain, carry-truncated addition, and the conditional
  probability table of Table I.
* :mod:`repro.core.calibration`     -- Algorithm 1: offline optimisation of
  the probability table against characterization data.
* :mod:`repro.core.modified_adder`  -- the equivalent statistical operator
  used at algorithm level in place of the VOS hardware.
* :mod:`repro.core.characterization`-- the Fig. 4 flow: sweep triads, collect
  BER / MSE / energy statistics.
* :mod:`repro.core.energy`          -- energy-efficiency analysis and the
  Table IV aggregation.
* :mod:`repro.core.speculation`     -- dynamic speculation: runtime triad
  selection under a user-defined error margin.
* :mod:`repro.core.error_detection` -- double-sampling (shadow register)
  error monitor and online BER estimator feeding the speculation loop.
* :mod:`repro.core.dataset`         -- JSON serialisation of characterization
  results and trained models.
* :mod:`repro.core.sweep`           -- sharded, cache-backed sweep
  orchestration (worker processes + deterministic merge).
* :mod:`repro.core.store`           -- content-addressed on-disk result
  store backing the sweep orchestrator.
"""

from repro.core.triad import (
    OperatingTriad,
    TriadGrid,
    paper_triad_grid,
    matched_triad_grid,
    benchmark_triad_grid,
    PAPER_CLOCK_PERIODS_NS,
    PAPER_CRITICAL_PATHS_NS,
    PAPER_SUPPLY_VOLTAGES,
    PAPER_BODY_BIAS_VOLTAGES,
)
from repro.core.metrics import (
    bit_error_rate,
    bitwise_error_probability,
    mean_squared_error,
    hamming_distance,
    normalized_hamming_distance,
    weighted_hamming_distance,
    signal_to_noise_ratio_db,
    DISTANCE_METRICS,
    distance_metric,
)
from repro.core.carry_model import (
    generate_propagate,
    theoretical_max_carry_chain,
    carry_truncated_add,
    CarryProbabilityTable,
)
from repro.core.calibration import CalibrationResult, calibrate_probability_table
from repro.core.modified_adder import ApproximateAdderModel
from repro.core.characterization import (
    TriadCharacterization,
    AdderCharacterization,
    CharacterizationFlow,
    characterize_benchmarks,
)
from repro.core.store import (
    SweepResultStore,
    library_fingerprint,
    netlist_fingerprint,
    operand_fingerprint,
)
from repro.core.sweep import (
    CircuitSpec,
    run_characterization_sweep,
    run_fault_sweep,
    shard_triads,
)
from repro.core.energy import (
    energy_efficiency,
    EfficiencySummary,
    summarize_by_ber_range,
    pareto_front,
    PAPER_BER_RANGES,
)
from repro.core.speculation import DynamicSpeculationController, SpeculationDecision
from repro.core.error_detection import (
    ShadowRegisterMonitor,
    ShadowComparisonResult,
    OnlineBerEstimator,
)
from repro.core.dataset import (
    save_characterization,
    load_characterization,
    save_probability_table,
    load_probability_table,
)

__all__ = [
    "OperatingTriad",
    "TriadGrid",
    "paper_triad_grid",
    "matched_triad_grid",
    "benchmark_triad_grid",
    "PAPER_CLOCK_PERIODS_NS",
    "PAPER_CRITICAL_PATHS_NS",
    "PAPER_SUPPLY_VOLTAGES",
    "PAPER_BODY_BIAS_VOLTAGES",
    "bit_error_rate",
    "bitwise_error_probability",
    "mean_squared_error",
    "hamming_distance",
    "normalized_hamming_distance",
    "weighted_hamming_distance",
    "signal_to_noise_ratio_db",
    "DISTANCE_METRICS",
    "distance_metric",
    "generate_propagate",
    "theoretical_max_carry_chain",
    "carry_truncated_add",
    "CarryProbabilityTable",
    "CalibrationResult",
    "calibrate_probability_table",
    "ApproximateAdderModel",
    "TriadCharacterization",
    "AdderCharacterization",
    "CharacterizationFlow",
    "characterize_benchmarks",
    "SweepResultStore",
    "library_fingerprint",
    "netlist_fingerprint",
    "operand_fingerprint",
    "CircuitSpec",
    "run_characterization_sweep",
    "run_fault_sweep",
    "shard_triads",
    "energy_efficiency",
    "EfficiencySummary",
    "summarize_by_ber_range",
    "pareto_front",
    "PAPER_BER_RANGES",
    "DynamicSpeculationController",
    "SpeculationDecision",
    "ShadowRegisterMonitor",
    "ShadowComparisonResult",
    "OnlineBerEstimator",
    "save_characterization",
    "load_characterization",
    "save_probability_table",
    "load_probability_table",
]
