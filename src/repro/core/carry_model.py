"""Carry-chain arithmetic and the conditional probability table of Table I.

The paper's statistical model of a VOS-scaled adder has a single parameter:
``Cmax``, the longest carry-propagation chain that completes within the clock
period.  This module provides the three ingredients of that model:

* :func:`theoretical_max_carry_chain` -- ``Cth_max(in1, in2)``, the longest
  carry chain the *exact* addition of the operands would exercise;
* :func:`carry_truncated_add`         -- the "modified adder": the sum of the
  operands with every carry chain truncated after ``Cmax`` positions;
* :class:`CarryProbabilityTable`      -- ``P(Cmax = k | Cth_max = l)``,
  the lower-triangular conditional probability table of Table I, with
  sampling support used by the run-time model.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.signals import int_to_bits, bits_to_int


def generate_propagate(
    in1: np.ndarray, in2: np.ndarray, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bit generate and propagate signals of the operand pair.

    Returns ``(generate, propagate)`` boolean arrays of shape
    ``operands.shape + (width,)`` with bit 0 first.
    """
    a_bits = int_to_bits(np.asarray(in1), width)
    b_bits = int_to_bits(np.asarray(in2), width)
    return a_bits & b_bits, a_bits ^ b_bits


def theoretical_max_carry_chain(
    in1: np.ndarray, in2: np.ndarray, width: int
) -> np.ndarray:
    """Longest carry-propagation chain of the exact addition, per operand pair.

    A chain starts at a *generate* position (both operand bits set) and
    extends through the consecutive *propagate* positions (exactly one
    operand bit set) above it.  Its length counts the generate position plus
    the propagate positions it travels through, so the value ranges from 0
    (no carry generated anywhere) to ``width`` (a carry born at bit 0 that
    ripples through every remaining position).  This is the column index
    ``Cth_max`` of the paper's Table I.
    """
    generate, propagate = generate_propagate(in1, in2, width)
    flat_generate = generate.reshape(-1, width)
    flat_propagate = propagate.reshape(-1, width)
    n_vectors = flat_generate.shape[0]
    longest = np.zeros(n_vectors, dtype=np.int64)
    current = np.zeros(n_vectors, dtype=np.int64)
    for position in range(width):
        g = flat_generate[:, position]
        p = flat_propagate[:, position]
        # A generate restarts the chain at length 1; a propagate extends a
        # live chain by one; a kill position terminates it.
        current = np.where(g, 1, np.where(p & (current > 0), current + 1, 0))
        longest = np.maximum(longest, current)
    return longest.reshape(np.asarray(in1).shape)


def carry_truncated_add(
    in1: np.ndarray,
    in2: np.ndarray,
    width: int,
    cmax: np.ndarray | int,
) -> np.ndarray:
    """Sum of the operands with carry chains truncated after ``cmax`` positions.

    This is the paper's "modified adder" ``add_modified(in1, in2, C)``: the
    carry into bit ``j`` is produced only by generates at positions
    ``j - cmax .. j - 1`` whose propagation path to ``j`` is unbroken.  With
    ``cmax = 0`` the result is the carry-free sum ``in1 XOR in2``; with
    ``cmax >= Cth_max(in1, in2)`` the result is exact.

    Parameters
    ----------
    in1, in2:
        Operand arrays (non-negative integers below ``2**width``).
    width:
        Operand width in bits; the result has ``width + 1`` bits.
    cmax:
        Scalar or per-operand-pair array of maximal carry-chain lengths.
    """
    in1_arr = np.asarray(in1, dtype=np.int64)
    in2_arr = np.asarray(in2, dtype=np.int64)
    if in1_arr.shape != in2_arr.shape:
        raise ValueError("in1 and in2 must have the same shape")
    cmax_arr = np.broadcast_to(np.asarray(cmax, dtype=np.int64), in1_arr.shape)
    if np.any(cmax_arr < 0) or np.any(cmax_arr > width):
        raise ValueError(f"cmax values must lie within [0, {width}]")

    generate, propagate = generate_propagate(in1_arr, in2_arr, width)
    flat_g = generate.reshape(-1, width)
    flat_p = propagate.reshape(-1, width)
    flat_cmax = cmax_arr.reshape(-1)
    n_vectors = flat_g.shape[0]

    # carry[:, j] = carry into bit position j (j in 0..width); position 0 has
    # no carry in.  chain_age tracks how many positions the live carry has
    # travelled, so it can be killed once it exceeds the per-vector budget.
    sum_bits = np.zeros((n_vectors, width + 1), dtype=bool)
    carry = np.zeros(n_vectors, dtype=bool)
    age = np.zeros(n_vectors, dtype=np.int64)
    for position in range(width):
        sum_bits[:, position] = flat_p[:, position] ^ carry
        propagated = flat_p[:, position] & carry
        new_age = np.where(
            flat_g[:, position], 1, np.where(propagated, age + 1, 0)
        )
        new_carry = flat_g[:, position] | propagated
        # Truncate: a chain older than the budget is dropped.
        over_budget = new_age > flat_cmax
        carry = new_carry & ~over_budget
        age = np.where(carry, new_age, 0)
    sum_bits[:, width] = carry
    result = bits_to_int(sum_bits)
    return result.reshape(in1_arr.shape)


class CarryProbabilityTable:
    """Conditional probability table ``P(Cmax = k | Cth_max = l)`` (Table I).

    The table is lower triangular: the effective carry chain can never exceed
    the theoretical one, so ``P(k | l) = 0`` for ``k > l``; the column for
    ``l = 0`` is the point mass at ``k = 0``.

    Parameters
    ----------
    width:
        Operand width ``N``; the table has ``(N + 1) x (N + 1)`` entries.
    probabilities:
        Optional initial matrix, rows indexed by ``k`` (realised chain) and
        columns by ``l`` (theoretical chain).  Defaults to the identity
        (error-free adder: every chain completes).
    """

    def __init__(self, width: int, probabilities: np.ndarray | None = None) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self._width = width
        size = width + 1
        if probabilities is None:
            matrix = np.eye(size)
        else:
            matrix = np.array(probabilities, dtype=float, copy=True)
            if matrix.shape != (size, size):
                raise ValueError(f"probabilities must have shape ({size}, {size})")
        self._validate(matrix)
        self._matrix = matrix

    def _validate(self, matrix: np.ndarray) -> None:
        if np.any(matrix < -1e-12):
            raise ValueError("probabilities must be non-negative")
        upper = np.triu(matrix, k=1)
        # Upper triangle must be zero *above* the diagonal when read as
        # (row=k, column=l): entries with k > l live below the diagonal, so
        # the invalid region is the strictly lower triangle transposed --
        # i.e. matrix[k, l] for k > l.
        invalid = np.tril(matrix, k=-1)
        if np.any(invalid > 1e-9):
            raise ValueError("P(Cmax=k | Cth_max=l) must be zero for k > l")
        del upper
        column_sums = matrix.sum(axis=0)
        for column, total in enumerate(column_sums):
            if not (abs(total - 1.0) < 1e-6 or abs(total) < 1e-12):
                raise ValueError(
                    f"column {column} must sum to 1 (or be all-zero), got {total!r}"
                )

    @property
    def width(self) -> int:
        """Operand width the table was built for."""
        return self._width

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the probability matrix (rows: Cmax, columns: Cth_max)."""
        return self._matrix.copy()

    def probability(self, cmax: int, cth_max: int) -> float:
        """``P(Cmax = cmax | Cth_max = cth_max)``."""
        return float(self._matrix[cmax, cth_max])

    def expected_cmax(self, cth_max: int) -> float:
        """Expected realised chain length for a given theoretical length."""
        column = self._matrix[:, cth_max]
        if column.sum() == 0:
            return float(cth_max)
        return float(np.dot(np.arange(self._width + 1), column))

    def sample(self, cth_max: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw ``Cmax`` values for an array of theoretical chain lengths.

        Columns that were never observed during calibration (all-zero) fall
        back to the identity behaviour (``Cmax = Cth_max``), which keeps the
        model exact for unseen chain lengths instead of silently corrupting
        them.
        """
        lengths = np.asarray(cth_max, dtype=np.int64)
        if np.any(lengths < 0) or np.any(lengths > self._width):
            raise ValueError(f"cth_max values must lie within [0, {self._width}]")
        flat = lengths.reshape(-1)
        samples = np.empty_like(flat)
        uniforms = rng.random(flat.shape[0])
        for column in np.unique(flat):
            mask = flat == column
            distribution = self._matrix[:, column]
            total = distribution.sum()
            if total == 0:
                samples[mask] = column
                continue
            cumulative = np.cumsum(distribution / total)
            samples[mask] = np.searchsorted(cumulative, uniforms[mask], side="right")
        samples = np.minimum(samples, self._width)
        return samples.reshape(lengths.shape)

    @classmethod
    def from_counts(cls, width: int, counts: np.ndarray) -> "CarryProbabilityTable":
        """Build a table from raw occurrence counts (Algorithm 1 output).

        Each column is normalised by its own total; unobserved columns stay
        all-zero and are treated as identity by :meth:`sample`.
        """
        count_matrix = np.asarray(counts, dtype=float)
        size = width + 1
        if count_matrix.shape != (size, size):
            raise ValueError(f"counts must have shape ({size}, {size})")
        if np.any(count_matrix < 0):
            raise ValueError("counts must be non-negative")
        totals = count_matrix.sum(axis=0)
        matrix = np.zeros_like(count_matrix)
        nonzero = totals > 0
        matrix[:, nonzero] = count_matrix[:, nonzero] / totals[nonzero]
        return cls(width, matrix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CarryProbabilityTable):
            return NotImplemented
        return self._width == other._width and np.allclose(self._matrix, other._matrix)

    def __repr__(self) -> str:
        return f"CarryProbabilityTable(width={self._width})"
