"""Operating triads: (clock period, supply voltage, body-bias voltage).

The paper controls the energy/accuracy trade-off exclusively through the
*operating triad* ``(Tclk, Vdd, Vbb)`` of the hardware operator.  Table III
lists the triads simulated per adder: four clock periods (taken from the
synthesis timing reports), supply voltages from 1.0 V down to 0.4 V in 0.1 V
steps, and body-bias voltages of -2 V, 0 V and +2 V.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, Sequence

from repro.technology.library import SUPPORTED_BODY_BIAS_RANGE


@dataclasses.dataclass(frozen=True, order=True)
class OperatingTriad:
    """One operating point of a VOS-scaled operator.

    Attributes
    ----------
    tclk:
        Clock period in seconds.
    vdd:
        Supply voltage in volts.
    vbb:
        Body-bias voltage in volts (signed; positive = forward body bias).
    """

    tclk: float
    vdd: float
    vbb: float

    def __post_init__(self) -> None:
        if self.tclk <= 0:
            raise ValueError("tclk must be positive")
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        low, high = SUPPORTED_BODY_BIAS_RANGE
        if not low <= self.vbb <= high:
            # Reject unsupported body bias here instead of letting the delay
            # lookup silently clamp the threshold voltage much later.
            raise ValueError(
                f"vbb {self.vbb:g} V is outside the library's supported "
                f"body-bias range [{low:g}, {high:g}] V"
            )

    @property
    def tclk_ns(self) -> float:
        """Clock period in nanoseconds (the unit used in the paper's labels)."""
        return self.tclk * 1e9

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in hertz."""
        return 1.0 / self.tclk

    def label(self) -> str:
        """The paper's x-axis label format: ``Tclk(ns),Vdd(V),Vbb(V)``."""
        vbb_text = "±2" if abs(self.vbb) == 2.0 else f"{self.vbb:g}"
        return f"{self.tclk_ns:g},{self.vdd:g},{vbb_text}"

    def replace(self, **changes: float) -> "OperatingTriad":
        """Return a copy with selected fields replaced."""
        return dataclasses.replace(self, **changes)


#: Clock periods (ns) per benchmark, from the paper's Table III.  The first
#: entry of each list is the relaxed clock, the second the synthesis-reported
#: critical path at 1.0 V, the remaining ones are over-clocked periods.
PAPER_CLOCK_PERIODS_NS: dict[str, tuple[float, ...]] = {
    "rca8": (0.5, 0.28, 0.19, 0.13),
    "bka8": (0.5, 0.19, 0.13, 0.064),
    "rca16": (0.7, 0.53, 0.25, 0.20),
    "bka16": (0.7, 0.25, 0.20, 0.15),
}

#: Supply voltages (V) swept by the paper: 1.0 V down to 0.4 V in 0.1 V steps.
PAPER_SUPPLY_VOLTAGES: tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4)

#: Body-bias voltages (V) swept by the paper.
PAPER_BODY_BIAS_VOLTAGES: tuple[float, ...] = (-2.0, 0.0, 2.0)

#: Critical path (ns) reported by the paper's synthesis (Table II).  Each
#: benchmark's second Table III clock equals its critical path.
PAPER_CRITICAL_PATHS_NS: dict[str, float] = {
    "rca8": 0.28,
    "bka8": 0.19,
    "rca16": 0.53,
    "bka16": 0.25,
}


class TriadGrid:
    """An ordered collection of operating triads.

    The grid is the Cartesian product of clock periods, supply voltages and
    body-bias voltages, optionally filtered.  Iteration order is
    deterministic (sorted by clock period descending, then Vdd descending,
    then Vbb ascending) so experiment outputs are reproducible.
    """

    def __init__(self, triads: Sequence[OperatingTriad]) -> None:
        if not triads:
            raise ValueError("a triad grid needs at least one triad")
        unique = sorted(set(triads), key=lambda t: (-t.tclk, -t.vdd, t.vbb))
        self._triads: tuple[OperatingTriad, ...] = tuple(unique)

    @classmethod
    def from_product(
        cls,
        clock_periods_ns: Sequence[float],
        supply_voltages: Sequence[float] = PAPER_SUPPLY_VOLTAGES,
        body_bias_voltages: Sequence[float] = PAPER_BODY_BIAS_VOLTAGES,
    ) -> "TriadGrid":
        """Build the Cartesian-product grid (Table III style)."""
        triads = [
            OperatingTriad(tclk=tclk_ns * 1e-9, vdd=vdd, vbb=vbb)
            for tclk_ns, vdd, vbb in itertools.product(
                clock_periods_ns, supply_voltages, body_bias_voltages
            )
        ]
        return cls(triads)

    def __iter__(self) -> Iterator[OperatingTriad]:
        return iter(self._triads)

    def __len__(self) -> int:
        return len(self._triads)

    def __getitem__(self, index: int) -> OperatingTriad:
        return self._triads[index]

    @property
    def triads(self) -> tuple[OperatingTriad, ...]:
        """All triads in deterministic order."""
        return self._triads

    def filter(
        self,
        min_vdd: float | None = None,
        max_vdd: float | None = None,
        vbb_values: Sequence[float] | None = None,
    ) -> "TriadGrid":
        """Return a sub-grid restricted by supply / body-bias constraints."""
        selected = [
            triad
            for triad in self._triads
            if (min_vdd is None or triad.vdd >= min_vdd)
            and (max_vdd is None or triad.vdd <= max_vdd)
            and (vbb_values is None or triad.vbb in set(vbb_values))
        ]
        return TriadGrid(selected)

    def nominal(self) -> OperatingTriad:
        """The reference (ideal) triad: slowest clock, highest Vdd, no body bias.

        The paper computes energy efficiency "compared to the ideal test
        case", which is the relaxed clock at nominal supply without body
        bias.
        """
        candidates = [t for t in self._triads if t.vbb == 0.0]
        pool = candidates or list(self._triads)
        return max(pool, key=lambda t: (t.vdd, t.tclk))


def benchmark_triad_grid(clock_periods_ns: Sequence[float]) -> TriadGrid:
    """Build the paper's 43-triad structure from a benchmark's clock list.

    Reading the labels of Fig. 8 shows the evaluation does not sweep the full
    Cartesian product of Table III: the *relaxed* clock (the first entry of
    the benchmark's clock list) is only run at the nominal supply without
    body bias -- it is the "ideal test case" energy reference -- while the
    remaining three clocks are swept over all supply voltages with either no
    body bias or the symmetric +/-2 V forward body-bias scheme.  That yields
    ``1 + 3 * 7 * 2 = 43`` operating triads per adder, matching the paper's
    "43 operating triads".
    """
    if len(clock_periods_ns) < 2:
        raise ValueError("a benchmark clock list needs at least two periods")
    relaxed, *aggressive = clock_periods_ns
    triads = [OperatingTriad(tclk=relaxed * 1e-9, vdd=PAPER_SUPPLY_VOLTAGES[0], vbb=0.0)]
    for tclk_ns, vdd, vbb in itertools.product(
        aggressive, PAPER_SUPPLY_VOLTAGES, (0.0, 2.0)
    ):
        triads.append(OperatingTriad(tclk=tclk_ns * 1e-9, vdd=vdd, vbb=vbb))
    return TriadGrid(triads)


def paper_triad_grid(adder_name: str) -> TriadGrid:
    """The Table III / Fig. 8 triad grid for one of the paper's benchmarks.

    Parameters
    ----------
    adder_name:
        One of ``"rca8"``, ``"bka8"``, ``"rca16"``, ``"bka16"``.
    """
    try:
        periods = PAPER_CLOCK_PERIODS_NS[adder_name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {adder_name!r}; "
            f"available: {', '.join(sorted(PAPER_CLOCK_PERIODS_NS))}"
        ) from None
    return benchmark_triad_grid(periods)


def matched_triad_grid(adder_name: str, measured_critical_path: float) -> TriadGrid:
    """Table III grid rescaled to this substrate's own critical path.

    The paper picks its clock periods from *its* synthesis timing report.
    Because the analytical library of this reproduction does not land on
    exactly the same absolute delays, using the paper's nanosecond values
    verbatim would shift every triad's over-/under-clocking ratio.  This
    helper preserves the paper's ratios instead: each Table III clock period
    is scaled by ``measured_critical_path / paper_critical_path``, so "the
    nominal clock", "1.8x relaxed", "30% over-clocked" and so on mean the
    same thing for this substrate as they do in the paper.

    Parameters
    ----------
    adder_name:
        One of the paper's benchmarks (``"rca8"`` ...).
    measured_critical_path:
        This substrate's synthesised critical path of the same adder, in
        seconds (e.g. from
        :class:`repro.synthesis.StaticTimingAnalysis`).
    """
    if measured_critical_path <= 0:
        raise ValueError("measured_critical_path must be positive")
    name = adder_name.lower()
    try:
        periods = PAPER_CLOCK_PERIODS_NS[name]
        paper_critical = PAPER_CRITICAL_PATHS_NS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {adder_name!r}; "
            f"available: {', '.join(sorted(PAPER_CLOCK_PERIODS_NS))}"
        ) from None
    scale = (measured_critical_path * 1e9) / paper_critical
    scaled = tuple(round(period * scale, 4) for period in periods)
    return benchmark_triad_grid(scaled)
