"""Accuracy metrics used for characterization and model calibration.

The paper uses:

* **BER** -- ratio of faulty output bits over total output bits (the headline
  accuracy metric of Figs. 5 and 8 and Table IV);
* **MSE** -- mean squared error between faulty and golden output words;
* **bit-wise error probability** -- per output position, the ratio of faulty
  bits over vectors (Fig. 5);
* three **distance metrics** used to calibrate the statistical model
  (Section IV): MSE, Hamming distance, and weighted Hamming distance;
* **SNR** -- to report how close the statistical model is to the
  characterized hardware (Fig. 7a).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.circuits.signals import int_to_bits

#: Signature of a distance metric: (reference words, candidate words, width) -> per-vector distances.
DistanceMetric = Callable[[np.ndarray, np.ndarray, int], np.ndarray]


def _as_int_arrays(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x_arr = np.asarray(x, dtype=np.int64)
    y_arr = np.asarray(y, dtype=np.int64)
    if x_arr.shape != y_arr.shape:
        raise ValueError("arrays must have the same shape")
    return x_arr, y_arr


def bit_error_rate(reference: np.ndarray, observed: np.ndarray, width: int) -> float:
    """Ratio of faulty output bits over total output bits.

    Parameters
    ----------
    reference:
        Golden output words.
    observed:
        Faulty output words (same shape).
    width:
        Number of output bits per word.
    """
    ref, obs = _as_int_arrays(reference, observed)
    differing = int_to_bits(ref, width) != int_to_bits(obs, width)
    return float(differing.mean())


def bitwise_error_probability(
    reference: np.ndarray, observed: np.ndarray, width: int
) -> np.ndarray:
    """Per-bit-position error probability (LSB first), the Fig. 5 quantity."""
    ref, obs = _as_int_arrays(reference, observed)
    differing = int_to_bits(ref, width) != int_to_bits(obs, width)
    return differing.reshape(-1, width).mean(axis=0)


def mean_squared_error(reference: np.ndarray, observed: np.ndarray) -> float:
    """Mean squared numerical error between output words."""
    ref, obs = _as_int_arrays(reference, observed)
    deviation = (obs - ref).astype(float)
    return float(np.mean(deviation**2))


def hamming_distance(reference: np.ndarray, observed: np.ndarray, width: int) -> np.ndarray:
    """Per-vector Hamming distance (number of differing bits)."""
    ref, obs = _as_int_arrays(reference, observed)
    differing = int_to_bits(ref, width) != int_to_bits(obs, width)
    return differing.reshape(-1, width).sum(axis=1)


def normalized_hamming_distance(
    reference: np.ndarray, observed: np.ndarray, width: int
) -> float:
    """Mean Hamming distance normalised by the word width (Fig. 7b)."""
    return float(hamming_distance(reference, observed, width).mean() / width)


def weighted_hamming_distance(
    reference: np.ndarray,
    observed: np.ndarray,
    width: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Per-vector Hamming distance weighted by bit significance.

    By default bit ``i`` carries weight ``2**i`` (its arithmetic
    significance), so an MSB flip costs as much as it costs numerically.
    """
    ref, obs = _as_int_arrays(reference, observed)
    differing = int_to_bits(ref, width) != int_to_bits(obs, width)
    if weights is None:
        weights = 2.0 ** np.arange(width)
    weight_arr = np.asarray(weights, dtype=float)
    if weight_arr.shape != (width,):
        raise ValueError(f"weights must have shape ({width},)")
    return (differing.reshape(-1, width) * weight_arr).sum(axis=1)


def signal_to_noise_ratio_db(reference: np.ndarray, observed: np.ndarray) -> float:
    """SNR (dB) of ``observed`` with respect to ``reference``.

    ``SNR = 10 log10( sum(reference^2) / sum((observed - reference)^2) )``.
    Returns ``inf`` when the two signals are identical.
    """
    ref, obs = _as_int_arrays(reference, observed)
    noise_power = float(np.sum((obs - ref).astype(float) ** 2))
    signal_power = float(np.sum(ref.astype(float) ** 2))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_power / noise_power)


# -- distance metrics for Algorithm 1 ----------------------------------------


def _mse_distance(reference: np.ndarray, candidate: np.ndarray, width: int) -> np.ndarray:
    del width
    ref, cand = _as_int_arrays(reference, candidate)
    return (cand - ref).astype(float) ** 2


def _hamming_metric(reference: np.ndarray, candidate: np.ndarray, width: int) -> np.ndarray:
    return hamming_distance(reference, candidate, width).astype(float)


def _weighted_hamming_metric(
    reference: np.ndarray, candidate: np.ndarray, width: int
) -> np.ndarray:
    return weighted_hamming_distance(reference, candidate, width).astype(float)


#: The three calibration metrics of Section IV, keyed by the names used in Fig. 7.
DISTANCE_METRICS: dict[str, DistanceMetric] = {
    "mse": _mse_distance,
    "hamming": _hamming_metric,
    "weighted_hamming": _weighted_hamming_metric,
}


def distance_metric(name: str) -> DistanceMetric:
    """Look up a calibration distance metric by name."""
    try:
        return DISTANCE_METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown distance metric {name!r}; "
            f"available: {', '.join(sorted(DISTANCE_METRICS))}"
        ) from None
