"""Binary record codec of the packfile result store.

The v2 :class:`~repro.core.store.SweepResultStore` keeps result payloads in
append-only *pack segments* instead of one JSON file per entry.  This module
defines the self-describing record format those segments are made of, plus
the low-level encode/decode/scan primitives; segment and index management
live in :mod:`repro.core.store`.

Record layout (all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
         0     4  magic  b"RPK2"
         4     4  u32    record length (header through trailing CRC)
         8     4  u32    meta length
        12    64  ascii  entry key (SHA-256 hex)
        76     M  json   meta document
      76+M     B  raw    blob bytes, concatenated in meta order
    -4           u32    CRC-32 over everything before it

The meta document is ``{"payload": {...}, "blobs": [[field, nbytes], ...]}``:
the entry payload with its large array fields *removed* and listed as raw
blobs instead.  Which fields qualify is a fixed registry
(:data:`BINARY_FIELDS`): exactly the payload fields the sweep orchestrators
fill with raw ``pack_int64_array`` / ``pack_float64_array`` bytes (legacy
payloads carry the same content base64-packed; both forms are accepted and
produce identical records).  Blob bytes are written verbatim -- no
megabyte-sized JSON strings to build or parse -- and on decode they come
back as *raw bytes*: the expensive base64 text is never materialised on
the hot path, because every consumer (the array codec in
:mod:`repro.core.store`) accepts bytes directly.  :func:`encode_blobs`
restores the base64 form where JSON is unavoidable (canonical snapshots);
``encode_blobs(decoded)`` compares equal -- byte for byte after canonical
JSON -- to the payload that was stored.  Unknown or non-canonical fields
simply stay inside the JSON meta, which keeps the format forward-compatible
with new payload shapes.

Corruption of any kind -- bad magic, implausible lengths, CRC mismatch,
garbled JSON, a key that does not match -- raises :class:`PackRecordError`
on decode, which is what the store's read path and ``verify`` fsck key
their quarantine handling on.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
import zlib
from typing import Any, Iterator, Mapping

#: Magic bytes opening every record ("RePro pacK, layout 2").
RECORD_MAGIC = b"RPK2"

#: Fixed-size record prefix: magic, record length, meta length.
_HEADER = struct.Struct("<4sII")

#: Trailing CRC-32.
_CRC = struct.Struct("<I")

#: Length of an entry key (SHA-256 hex digest).
KEY_LENGTH = 64

#: Payload fields stored as raw binary blobs instead of base64 JSON strings.
#: These are exactly the array-carrying fields the sweep orchestrators emit
#: (:mod:`repro.core.sweep` and :mod:`repro.variation.montecarlo`); any other
#: field travels inside the JSON meta unchanged.
BINARY_FIELDS = frozenset(
    {
        "latched_words",
        "ber_samples",
        "faulty_fraction_samples",
        "energy_samples",
        "static_energy_samples",
    }
)

#: Upper bound on a single record (1 GiB): lengths beyond it are treated as
#: corruption rather than attempted as allocations.
MAX_RECORD_BYTES = 1 << 30

#: Shared decoder for record meta (``json.loads`` on bytes would redo
#: encoding detection and whitespace scanning on every record).
_META_DECODER = json.JSONDecoder()


class PackRecordError(ValueError):
    """A pack record failed to decode (truncated, garbled, or mismatched)."""


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _blob_bytes(name: str, value: Any) -> bytes | None:
    """Raw bytes of a blob-eligible field, or ``None`` to keep it in JSON.

    Blob fields arrive either as raw bytes (a payload handed back by
    :func:`decode_record`) or as base64 text (a payload fresh from the
    array codec).  Only canonical base64 round-trips exactly
    (``b64encode(b64decode(s)) == s``), so any other string -- or a value
    that is neither bytes nor text -- stays in the JSON meta rather than
    risking a lossy rewrite.
    """
    if name not in BINARY_FIELDS:
        return None
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if not isinstance(value, str):
        return None
    try:
        raw = base64.b64decode(value, validate=True)
    except (binascii.Error, ValueError):
        return None
    if base64.b64encode(raw).decode("ascii") != value:
        return None
    return raw


def encode_record(key: str, payload: Mapping[str, Any]) -> bytes:
    """Serialise one entry into a self-describing binary record."""
    if len(key) != KEY_LENGTH:
        raise ValueError(f"entry keys are {KEY_LENGTH}-char hex digests")
    meta_payload: dict[str, Any] = {}
    blobs: list[tuple[str, bytes]] = []
    for name, value in payload.items():
        raw = _blob_bytes(name, value)
        if raw is None:
            meta_payload[name] = value
        else:
            blobs.append((name, raw))
    meta = _canonical_json(
        {
            "payload": meta_payload,
            "blobs": [[name, len(raw)] for name, raw in blobs],
        }
    ).encode("utf-8")
    body = b"".join([key.encode("ascii"), meta, *(raw for _, raw in blobs)])
    length = _HEADER.size + len(body) + _CRC.size
    head = _HEADER.pack(RECORD_MAGIC, length, len(meta))
    crc = zlib.crc32(head + body)
    return b"".join([head, body, _CRC.pack(crc)])


def encode_blobs(payload: Mapping[str, Any]) -> dict[str, Any]:
    """A copy of ``payload`` with raw-bytes blob fields as base64 text.

    The inverse of what :func:`decode_record` leaves raw: apply it wherever
    a decoded payload must render as JSON (canonical snapshots, legacy
    downgrades).  Fields already in text form pass through untouched, so the
    result is identical for a decoded payload and the original it encodes.
    """
    return {
        name: (
            base64.b64encode(value).decode("ascii")
            if name in BINARY_FIELDS and isinstance(value, (bytes, bytearray))
            else value
        )
        for name, value in payload.items()
    }


def decode_record(data: bytes | memoryview) -> tuple[str, dict[str, Any], int]:
    """Decode the record at the start of ``data``.

    Returns ``(key, payload, record_length)``.  ``data`` may extend past the
    record (a whole segment); only the first record is examined.  Passing a
    ``memoryview`` is the zero-copy path for bulk readers that hold a whole
    segment in memory -- nothing but the blob bytes themselves is copied out
    of it.  Blob fields come back as raw ``bytes`` (see :func:`encode_blobs`).

    Raises
    ------
    PackRecordError
        On any structural damage: short buffer, bad magic, implausible
        lengths, CRC mismatch, or a meta document that does not parse.
    """
    if len(data) < _HEADER.size + KEY_LENGTH + _CRC.size:
        raise PackRecordError("record truncated before header")
    magic, length, meta_length = _HEADER.unpack_from(data)
    if magic != RECORD_MAGIC:
        raise PackRecordError("bad record magic")
    if length > MAX_RECORD_BYTES or length < _HEADER.size + KEY_LENGTH + _CRC.size:
        raise PackRecordError("implausible record length")
    if length > len(data):
        raise PackRecordError("record truncated mid-body")
    if meta_length > length - _HEADER.size - KEY_LENGTH - _CRC.size:
        raise PackRecordError("implausible meta length")
    (crc,) = _CRC.unpack_from(data, length - _CRC.size)
    if zlib.crc32(memoryview(data)[: length - _CRC.size]) != crc:
        raise PackRecordError("record CRC mismatch")
    key_start = _HEADER.size
    meta_start = key_start + KEY_LENGTH
    try:
        key = bytes(data[key_start:meta_start]).decode("ascii")
        meta, _ = _META_DECODER.raw_decode(
            bytes(data[meta_start : meta_start + meta_length]).decode("utf-8")
        )
        payload = meta["payload"]
        blob_specs = meta["blobs"]
        if not isinstance(payload, dict) or not isinstance(blob_specs, list):
            raise PackRecordError("malformed record meta")
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as error:
        raise PackRecordError(f"unreadable record meta: {error}") from None
    position = meta_start + meta_length
    for spec in blob_specs:
        try:
            name, nbytes = spec
            nbytes = int(nbytes)
        except (TypeError, ValueError):
            raise PackRecordError("malformed blob descriptor") from None
        if nbytes < 0 or position + nbytes > length - _CRC.size:
            raise PackRecordError("blob overruns its record")
        payload[str(name)] = bytes(data[position : position + nbytes])
        position += nbytes
    if position != length - _CRC.size:
        raise PackRecordError("record has unaccounted trailing bytes")
    return key, payload, length


def scan_records(data: bytes, start: int = 0) -> Iterator[tuple[int, int, str, dict[str, Any]]]:
    """Walk valid records from ``start``; stop at the first damaged one.

    Yields ``(offset, length, key, payload)`` per record.  Used for index
    repair after a crash (the tail of a segment may hold records appended
    after the last index flush) and by the ``verify`` fsck: trailing garbage
    simply ends the scan, it never raises.
    """
    view = memoryview(data)
    offset = start
    while offset < len(view):
        try:
            key, payload, length = decode_record(view[offset:])
        except PackRecordError:
            return
        yield offset, length, key, payload
        offset += length
