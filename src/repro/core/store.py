"""Content-addressed on-disk store for sweep results.

Characterizing an operator over a triad grid is pure: the summary of one
triad depends only on the circuit structure, the stimulus, the operating
triad, the cell library and the simulation-engine version.  This module
persists those per-triad summaries keyed by a cryptographic hash of exactly
those ingredients, so repeated sweeps -- across CLI runs, benchmark sessions
and CI jobs -- become warm-cache hits instead of recomputation.

Design points:

* **Content addressing.**  A key is the SHA-256 of the canonical JSON of the
  key components (see :meth:`SweepResultStore.entry_key`).  Any change to the
  circuit (netlist fingerprint), stimulus (pattern config or operand hash),
  triad, library parameters or :data:`repro.simulation.engine.ENGINE_VERSION`
  changes the key, which *is* the invalidation mechanism -- stale entries are
  simply never looked up again (and can be purged with :meth:`clear`).
* **One file per entry.**  Entries are small JSON documents (a triad summary
  plus, optionally, the base64-packed latched output words that allow full
  measurement reconstruction), fanned out over 256 subdirectories by key
  prefix.  Writes are atomic (temp file + rename) so concurrent sweeps can
  share one store.
* **Corruption tolerance.**  A truncated/garbled entry is detected on read,
  quarantined (moved aside under ``quarantine/``, never silently deleted --
  the bytes stay available for diagnosis), and treated as a miss; any
  OS-level error degrades to a miss as well, so a broken cache can never
  fail a sweep.  Unlike a plain missing file, real I/O errors are counted
  in :attr:`StoreStats.io_errors` so silent degradation is observable in
  ``store stats``, and :meth:`SweepResultStore.verify` offers an explicit
  fsck pass over every entry (``store verify``).  All directory walks are
  ENOENT-tolerant: entries deleted by a concurrent session between listing
  and stat/unlink are simply skipped.
"""

from __future__ import annotations

import base64
import collections
import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Mapping

import numpy as np

from repro.circuits.netlist import Netlist
from repro.technology.library import StandardCellLibrary

#: Version of the on-disk entry layout.  Part of every key: bumping it
#: invalidates all previously stored entries.
STORE_FORMAT_VERSION = 1

#: Environment variable selecting the default store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


# ---------------------------------------------------------------------------
# Fingerprints of the cache-key ingredients
# ---------------------------------------------------------------------------


def netlist_fingerprint(netlist: Netlist) -> str:
    """Stable content hash of a netlist's structure.

    Covers the primary ports and every gate (type, input nets, output net) in
    topological order -- two netlists with the same fingerprint simulate
    identically, whatever generator built them.
    """
    digest = hashlib.sha256()
    digest.update(f"nets={netlist.net_count}".encode())
    for port, net in sorted(netlist.primary_inputs.items()):
        digest.update(f"|in:{port}={net}".encode())
    for port, net in sorted(netlist.primary_outputs.items()):
        digest.update(f"|out:{port}={net}".encode())
    for gate in netlist.topological_gates:
        digest.update(
            f"|{gate.gate_type.value}:{','.join(map(str, gate.inputs))}>{gate.output}".encode()
        )
    return digest.hexdigest()


def library_fingerprint(library: StandardCellLibrary) -> str:
    """Stable content hash of a standard-cell library's parameters.

    Covers the technology parameter set and every cell's timing/power
    description, so a retuned library never reuses results computed with the
    old parameters.
    """
    digest = hashlib.sha256()
    digest.update(_canonical_json(dataclasses.asdict(library.technology)).encode())
    for name in library.cell_names:
        digest.update(_canonical_json(dataclasses.asdict(library.cell(name))).encode())
    return digest.hexdigest()


def operand_fingerprint(in1: np.ndarray, in2: np.ndarray) -> str:
    """Content hash of an explicit operand-pair stimulus."""
    digest = hashlib.sha256()
    for array in (in1, in2):
        data = np.ascontiguousarray(np.asarray(array, dtype=np.int64))
        digest.update(repr(data.shape).encode())
        digest.update(data.tobytes())
    return digest.hexdigest()


def _canonical_json(data: Any) -> str:
    """Deterministic JSON encoding used for hashing key components."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Array <-> JSON helpers (exact round-trips)
# ---------------------------------------------------------------------------


def encode_int64_array(values: np.ndarray) -> str:
    """Base64 encoding of an int64 array (exact, little-endian)."""
    data = np.ascontiguousarray(np.asarray(values, dtype="<i8"))
    return base64.b64encode(data.tobytes()).decode("ascii")


def decode_int64_array(text: str) -> np.ndarray:
    """Inverse of :func:`encode_int64_array`."""
    return np.frombuffer(base64.b64decode(text), dtype="<i8").astype(
        np.int64, copy=True
    )


def encode_float64_array(values: np.ndarray) -> str:
    """Base64 encoding of a float64 array (bit-exact, little-endian).

    Used by the Monte Carlo payloads for per-sample statistics: the encoding
    is byte-identical for byte-identical inputs, which is what makes
    serial-vs-sharded store entries comparable file for file.
    """
    data = np.ascontiguousarray(np.asarray(values, dtype="<f8"))
    return base64.b64encode(data.tobytes()).decode("ascii")


def decode_float64_array(text: str) -> np.ndarray:
    """Inverse of :func:`encode_float64_array`."""
    return np.frombuffer(base64.b64decode(text), dtype="<f8").astype(
        np.float64, copy=True
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class StoreStats:
    """Hit/miss counters of one store instance (not persisted).

    ``io_errors`` counts OS-level failures that silently degraded an
    operation (an unwritable ``put``, an unreadable entry, a failed
    quarantine move) -- *not* ordinary misses or files that vanished under
    a concurrent session, which are normal operation.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    io_errors: int = 0


#: Subdirectory corrupt entries are moved into (never globbed as entries).
QUARANTINE_DIR = "quarantine"

#: Filename suffix of quarantined entries.
QUARANTINE_SUFFIX = ".quarantined"


@dataclasses.dataclass(frozen=True)
class StoreDiskStats:
    """On-disk footprint of a store directory.

    Attributes
    ----------
    entries:
        Number of stored result entries.
    total_bytes:
        Bytes occupied by the entry files.
    oldest_mtime / newest_mtime:
        Modification-time range of the entries (Unix seconds), or ``None``
        for an empty store.
    quarantined:
        Corrupt entries moved aside into the quarantine directory.
    """

    entries: int
    total_bytes: int
    oldest_mtime: float | None
    newest_mtime: float | None
    quarantined: int = 0


@dataclasses.dataclass(frozen=True)
class StoreVerifyReport:
    """Outcome of a :meth:`SweepResultStore.verify` fsck pass.

    Attributes
    ----------
    scanned:
        Entry files examined.
    valid:
        Entries that parsed and matched their key.
    quarantined:
        Corrupt entries moved into the quarantine directory by this pass.
    io_errors:
        Entries that could not be read (or moved) due to OS-level errors;
        files that vanished concurrently are skipped and counted nowhere.
    """

    scanned: int
    valid: int
    quarantined: int
    io_errors: int


class SweepResultStore:
    """Content-addressed result store rooted at one directory.

    Parameters
    ----------
    root:
        Directory holding the entries.  Created on first write; a missing
        directory reads as an empty store.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = pathlib.Path(root)
        self.stats = StoreStats()

    @classmethod
    def default(cls) -> "SweepResultStore":
        """The store at ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro/sweeps``)."""
        configured = os.environ.get(CACHE_DIR_ENV)
        if configured:
            return cls(configured)
        return cls(pathlib.Path.home() / ".cache" / "repro" / "sweeps")

    @property
    def root(self) -> pathlib.Path:
        """Root directory of the store."""
        return self._root

    @staticmethod
    def entry_key(components: Mapping[str, Any]) -> str:
        """Content-addressed key of one result entry.

        ``components`` must be a JSON-serialisable mapping fully describing
        the computation (circuit fingerprint, stimulus, triad, library
        fingerprint, engine version ...).  The store format version is mixed
        in so layout changes invalidate everything at once.
        """
        payload = dict(components)
        payload["store_format"] = STORE_FORMAT_VERSION
        return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()

    def _entry_path(self, key: str) -> pathlib.Path:
        return self._root / key[:2] / f"{key}.json"

    def _quarantine(self, path: pathlib.Path) -> bool:
        """Move a corrupt entry aside (keeping its bytes for diagnosis).

        The quarantine directory sits outside the ``*/*.json`` entry glob
        and the files gain a non-``.json`` suffix, so quarantined entries
        are invisible to lookups, stats and prune.  Returns whether the
        entry is out of the way (moved, or already gone).
        """
        target = self._root / QUARANTINE_DIR / (path.name + QUARANTINE_SUFFIX)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            return True
        except FileNotFoundError:
            return True
        except OSError:
            pass
        # Quarantine failed (e.g. read-only directory): deleting is still
        # better than re-reading garbage forever.
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return True
        except OSError:
            self.stats.io_errors += 1
            return False

    def get(self, key: str) -> dict[str, Any] | None:
        """Fetch an entry payload, or ``None`` on miss.

        A corrupted entry (unreadable JSON, wrong shape) is quarantined and
        reported as a miss; OS-level errors also degrade to a miss -- counted
        in :attr:`StoreStats.io_errors` -- so a broken cache never fails the
        sweep.
        """
        path = self._entry_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            # Unreadable cache degrades to a miss, but observably so.
            self.stats.misses += 1
            self.stats.io_errors += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict) or payload.get("key") != key:
                raise ValueError("entry does not match its key")
        except (ValueError, TypeError):
            # Corrupted entry: move it aside and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        # The embedded key is integrity metadata, not part of the payload:
        # strip it so cached payloads compare equal to freshly computed ones.
        payload.pop("key", None)
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store an entry payload atomically (temp file + rename)."""
        document = dict(payload)
        document["key"] = key
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            temp.write_text(_canonical_json(document), encoding="utf-8")
            os.replace(temp, path)
        except OSError:
            # Read-only or full filesystem: run uncached rather than fail,
            # but leave a trace in the counters.
            self.stats.io_errors += 1
            return
        self.stats.stores += 1

    def __len__(self) -> int:
        if not self._root.is_dir():
            return 0
        return sum(1 for _ in self._root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry (explicit invalidation); returns the count."""
        removed = 0
        if not self._root.is_dir():
            return removed
        for path in self._root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
            except OSError:
                self.stats.io_errors += 1
        return removed

    def _entry_files(self) -> list[tuple[pathlib.Path, os.stat_result]]:
        """Stat every entry file, skipping ones that vanish concurrently."""
        entries: list[tuple[pathlib.Path, os.stat_result]] = []
        if not self._root.is_dir():
            return entries
        for path in self._root.glob("*/*.json"):
            try:
                entries.append((path, path.stat()))
            except FileNotFoundError:
                # Deleted by a concurrent session between listing and stat.
                continue
            except OSError:
                self.stats.io_errors += 1
                continue
        return entries

    def quarantined_count(self) -> int:
        """Number of corrupt entries currently sitting in quarantine."""
        quarantine = self._root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return 0
        return sum(1 for _ in quarantine.glob(f"*{QUARANTINE_SUFFIX}"))

    def disk_stats(self) -> StoreDiskStats:
        """Measure the store's on-disk footprint (``repro store stats``)."""
        files = self._entry_files()
        quarantined = self.quarantined_count()
        if not files:
            return StoreDiskStats(
                entries=0,
                total_bytes=0,
                oldest_mtime=None,
                newest_mtime=None,
                quarantined=quarantined,
            )
        mtimes = [stat.st_mtime for _, stat in files]
        return StoreDiskStats(
            entries=len(files),
            total_bytes=sum(stat.st_size for _, stat in files),
            oldest_mtime=min(mtimes),
            newest_mtime=max(mtimes),
            quarantined=quarantined,
        )

    def verify(self) -> StoreVerifyReport:
        """Fsck pass: validate every entry, quarantining the corrupt ones.

        A valid entry is a JSON document embedding the key its filename
        claims.  Corrupt entries move into ``quarantine/`` exactly as a
        read-path detection would move them; entries deleted concurrently
        are skipped.  The store remains fully usable during and after the
        pass (``repro store verify``).
        """
        scanned = 0
        valid = 0
        quarantined = 0
        io_errors = 0
        if not self._root.is_dir():
            return StoreVerifyReport(
                scanned=0, valid=0, quarantined=0, io_errors=0
            )
        for path in sorted(self._root.glob("*/*.json")):
            try:
                text = path.read_text(encoding="utf-8")
            except FileNotFoundError:
                continue
            except OSError:
                scanned += 1
                io_errors += 1
                self.stats.io_errors += 1
                continue
            scanned += 1
            key = path.stem
            try:
                payload = json.loads(text)
                if not isinstance(payload, dict) or payload.get("key") != key:
                    raise ValueError("entry does not match its key")
            except (ValueError, TypeError):
                self.stats.corrupt += 1
                if self._quarantine(path):
                    quarantined += 1
                else:
                    io_errors += 1
                continue
            valid += 1
        return StoreVerifyReport(
            scanned=scanned,
            valid=valid,
            quarantined=quarantined,
            io_errors=io_errors,
        )

    def prune(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> int:
        """Bound the store by deleting the oldest entries first.

        Entries are removed in ascending modification-time order (path as a
        deterministic tie-break) until both limits hold.  Returns the number
        of entries deleted.  With no limit given nothing is removed.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if max_entries is None and max_bytes is None:
            return 0
        files = sorted(
            self._entry_files(), key=lambda item: (item[1].st_mtime, str(item[0]))
        )
        remaining = len(files)
        remaining_bytes = sum(stat.st_size for _, stat in files)
        removed = 0
        for path, stat in files:
            over_entries = max_entries is not None and remaining > max_entries
            over_bytes = max_bytes is not None and remaining_bytes > max_bytes
            if not over_entries and not over_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                # A concurrent session already deleted it: not our removal,
                # but it no longer occupies the store either.
                remaining -= 1
                remaining_bytes -= stat.st_size
                continue
            except OSError:
                self.stats.io_errors += 1
                continue
            removed += 1
            remaining -= 1
            remaining_bytes -= stat.st_size
        return removed


#: Default entry bound of a :class:`MemoryOverlayStore`.  Sized for whole
#: batches (tens of adders x 43-triad grids) while keeping a long-lived
#: session's memory bounded; least-recently-used entries evict first.
OVERLAY_MAX_ENTRIES = 4096


class MemoryOverlayStore:
    """In-memory read-through / write-through overlay over an optional store.

    A :class:`~repro.api.session.Session` shares one overlay across every
    job it runs: the first lookup of an entry reads the backing store (when
    present) and memoises the payload; every later lookup -- from the same
    job or from any other job of the same session/batch -- is served from
    memory.  Writes go to both layers, so persistence semantics are exactly
    those of the backing store.  With ``backing=None`` the overlay acts as a
    session-lifetime cache, which is what makes ``run_batch`` dedup work
    even for uncached sessions.

    The memory layer is an LRU bounded by ``max_entries`` so a long-lived
    session cannot grow without limit; an evicted entry is only a
    performance miss (it re-reads the backing store, or in the uncached
    case re-simulates), never a correctness issue.

    The overlay duck-types the ``get``/``put`` subset of
    :class:`SweepResultStore` that every sweep orchestrator uses.
    """

    def __init__(
        self,
        backing: SweepResultStore | None = None,
        max_entries: int = OVERLAY_MAX_ENTRIES,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._backing = backing
        self._max_entries = max_entries
        self._memory: "collections.OrderedDict[str, dict[str, Any]]" = (
            collections.OrderedDict()
        )

    @property
    def backing(self) -> SweepResultStore | None:
        """The persistent store underneath (or ``None``)."""
        return self._backing

    def _remember(self, key: str, payload: dict[str, Any]) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self._max_entries:
            self._memory.popitem(last=False)

    def get(self, key: str) -> dict[str, Any] | None:
        """Fetch an entry, memoising backing-store hits."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            return cached
        if self._backing is None:
            return None
        payload = self._backing.get(key)
        if payload is not None:
            self._remember(key, payload)
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store an entry in memory and (when present) the backing store."""
        self._remember(key, dict(payload))
        if self._backing is not None:
            self._backing.put(key, payload)

    def __len__(self) -> int:
        return len(self._memory)
