"""Content-addressed on-disk store for sweep results.

Characterizing an operator over a triad grid is pure: the summary of one
triad depends only on the circuit structure, the stimulus, the operating
triad, the cell library and the simulation-engine version.  This module
persists those per-triad summaries keyed by a cryptographic hash of exactly
those ingredients, so repeated sweeps -- across CLI runs, benchmark sessions
and CI jobs -- become warm-cache hits instead of recomputation.

Design points:

* **Content addressing.**  A key is the SHA-256 of the canonical JSON of the
  key components (see :meth:`SweepResultStore.entry_key`).  Any change to the
  circuit (netlist fingerprint), stimulus (pattern config or operand hash),
  triad, library parameters or :data:`repro.simulation.engine.ENGINE_VERSION`
  changes the key, which *is* the invalidation mechanism -- stale entries are
  simply never looked up again (and can be purged with :meth:`clear`).
* **Packfile layout (v2).**  Entries are appended as self-describing binary
  records (:mod:`repro.core.packfile`) to per-process *pack segments* under
  ``<root>/packs/``, each paired with an append-only JSONL index mapping
  ``key -> (offset, length)``.  A warm read is one seek + one read + one CRC
  check instead of a JSON parse of megabyte base64 strings; ``disk_stats``
  and ``prune`` walk the index, not the filesystem.  Each put appends the
  record, flushes, then appends the index line and flushes -- the same
  crash-consistency contract as the old atomic-rename files: a record
  missing its index line is recovered by a tail scan on the next open, and
  a torn record fails its CRC and is ignored.  Segment names embed the
  writing process's pid plus a random token, so concurrent sessions never
  share a write file and readers pick up each other's appends by re-reading
  the grown index files.
* **v1 compatibility.**  The previous layout (one atomic JSON document per
  entry fanned out over 256 two-hex subdirectories) is still read through:
  a key missing from the pack index falls back to the v1 file, with the old
  corruption handling intact.  :meth:`migrate` converts a v1 store in place
  (``repro store migrate``); entry *keys* are unchanged -- the hash still
  mixes :data:`STORE_FORMAT_VERSION` ``= 1`` -- so a migrated store keeps
  every warm hit.  :data:`STORE_VERSION` ``= 2`` names the container layout
  only and is recorded in ``<root>/format.json``, never hashed into keys.
* **Corruption tolerance.**  A record that fails its CRC or key check is
  quarantined (its bytes copied under ``quarantine/``, never silently
  discarded) and dropped from the index via a durable tombstone line, then
  treated as a miss; any OS-level error degrades to a miss as well, so a
  broken cache can never fail a sweep.  Real I/O errors are counted in
  :attr:`StoreStats.io_errors` so silent degradation is observable in
  ``store stats``, and :meth:`SweepResultStore.verify` offers an explicit
  fsck pass over every record (``store verify``) that also makes tail-scan
  recoveries durable.  All walks are ENOENT-tolerant: segments or legacy
  entries deleted by a concurrent session are simply skipped.  ``verify``
  and ``prune`` rewrite segments and are maintenance operations: run them
  from one session at a time (readers stay safe throughout -- a stale
  offset fails validation and reads as a miss, never as wrong data).
"""

from __future__ import annotations

import base64
import collections
import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, BinaryIO, Iterator, Mapping, Sequence

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.packfile import (
    PackRecordError,
    decode_record,
    encode_blobs,
    encode_record,
    scan_records,
)
from repro.obs import clock, metrics
from repro.technology.library import StandardCellLibrary

#: Version of the *key schema*.  Part of every entry key: bumping it
#: invalidates all previously stored entries.  The packfile migration kept
#: it at 1 on purpose -- v1 entries stay addressable after ``store migrate``.
STORE_FORMAT_VERSION = 1

#: Version of the on-disk *container* layout (recorded in ``format.json``,
#: never part of entry keys).  1 = one JSON file per entry; 2 = packfile.
STORE_VERSION = 2

#: Environment variable selecting the default store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable that, when set to ``0``/``off``/``false``, disables
#: shared-memory stimulus transport in the sweep orchestrators (documented
#: here with the other store/cache knobs; consumed by :mod:`repro.core.shm`).
SHM_ENV = "REPRO_SHM"

#: Subdirectory holding the pack segments and their indexes.
PACKS_DIR = "packs"

#: Marker file recording the container layout version of a store root.
FORMAT_FILE = "format.json"

#: Pack segments rotate once they grow past this size, bounding the cost of
#: a segment rewrite during ``prune``/``verify``.
MAX_SEGMENT_BYTES = 64 * 1024 * 1024


# ---------------------------------------------------------------------------
# Fingerprints of the cache-key ingredients
# ---------------------------------------------------------------------------


def netlist_fingerprint(netlist: Netlist) -> str:
    """Stable content hash of a netlist's structure.

    Covers the primary ports and every gate (type, input nets, output net) in
    topological order -- two netlists with the same fingerprint simulate
    identically, whatever generator built them.
    """
    digest = hashlib.sha256()
    digest.update(f"nets={netlist.net_count}".encode())
    for port, net in sorted(netlist.primary_inputs.items()):
        digest.update(f"|in:{port}={net}".encode())
    for port, net in sorted(netlist.primary_outputs.items()):
        digest.update(f"|out:{port}={net}".encode())
    for gate in netlist.topological_gates:
        digest.update(
            f"|{gate.gate_type.value}:{','.join(map(str, gate.inputs))}>{gate.output}".encode()
        )
    return digest.hexdigest()


def library_fingerprint(library: StandardCellLibrary) -> str:
    """Stable content hash of a standard-cell library's parameters.

    Covers the technology parameter set and every cell's timing/power
    description, so a retuned library never reuses results computed with the
    old parameters.
    """
    digest = hashlib.sha256()
    digest.update(_canonical_json(dataclasses.asdict(library.technology)).encode())
    for name in library.cell_names:
        digest.update(_canonical_json(dataclasses.asdict(library.cell(name))).encode())
    return digest.hexdigest()


def operand_fingerprint(in1: np.ndarray, in2: np.ndarray) -> str:
    """Content hash of an explicit operand-pair stimulus."""
    digest = hashlib.sha256()
    for array in (in1, in2):
        data = np.ascontiguousarray(np.asarray(array, dtype=np.int64))
        digest.update(repr(data.shape).encode())
        digest.update(data.tobytes())
    return digest.hexdigest()


def _canonical_json(data: Any) -> str:
    """Deterministic JSON encoding used for hashing key components."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Array <-> JSON helpers (exact round-trips)
# ---------------------------------------------------------------------------


def pack_int64_array(values: np.ndarray) -> bytes:
    """Raw little-endian bytes of an int64 array (exact).

    The wire/storage form of a payload array field: workers and the
    packfile store exchange these bytes directly; :func:`encode_int64_array`
    is the same content wrapped in base64 for JSON contexts.
    """
    return np.ascontiguousarray(np.asarray(values, dtype="<i8")).tobytes()


def encode_int64_array(values: np.ndarray) -> str:
    """Base64 encoding of an int64 array (exact, little-endian)."""
    return base64.b64encode(pack_int64_array(values)).decode("ascii")


def decode_int64_array(data: str | bytes | bytearray) -> np.ndarray:
    """Inverse of :func:`encode_int64_array`.

    Accepts either the base64 text or the raw little-endian bytes it wraps:
    packfile reads (:func:`repro.core.packfile.decode_record`) hand the
    array fields over as raw bytes so the hot path never round-trips
    through base64.
    """
    raw = data if isinstance(data, (bytes, bytearray)) else base64.b64decode(data)
    return np.frombuffer(raw, dtype="<i8").astype(np.int64, copy=True)


def pack_float64_array(values: np.ndarray) -> bytes:
    """Raw little-endian bytes of a float64 array (bit-exact).

    Used by the Monte Carlo payloads for per-sample statistics: the packing
    is byte-identical for byte-identical inputs, which is what makes
    serial-vs-sharded store entries comparable entry for entry.
    """
    return np.ascontiguousarray(np.asarray(values, dtype="<f8")).tobytes()


def encode_float64_array(values: np.ndarray) -> str:
    """Base64 encoding of a float64 array (see :func:`pack_float64_array`)."""
    return base64.b64encode(pack_float64_array(values)).decode("ascii")


def decode_float64_array(data: str | bytes | bytearray) -> np.ndarray:
    """Inverse of :func:`encode_float64_array` (text or raw bytes, like
    :func:`decode_int64_array`)."""
    raw = data if isinstance(data, (bytes, bytearray)) else base64.b64decode(data)
    return np.frombuffer(raw, dtype="<f8").astype(np.float64, copy=True)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@metrics.bind_registry_fields
class StoreStats(metrics.RegistryView):
    """Hit/miss counters of one store instance (not persisted).

    ``io_errors`` counts OS-level failures that silently degraded an
    operation (an unwritable ``put``, an unreadable segment, a failed
    quarantine copy) -- *not* ordinary misses or files that vanished under
    a concurrent session, which are normal operation.

    The counters are views over a :class:`~repro.obs.metrics.MetricsRegistry`
    (namespace ``store``), shared with run reports and ``to_json``; the
    ``store.stats.hits += 1`` mutation surface of the former dataclass is
    unchanged.
    """

    _NAMESPACE = "store"
    _FIELDS = {
        "hits": 0,
        "misses": 0,
        "stores": 0,
        "corrupt": 0,
        "io_errors": 0,
    }


#: Subdirectory corrupt entries are moved into (never read as entries).
QUARANTINE_DIR = "quarantine"

#: Filename suffix of quarantined entries.
QUARANTINE_SUFFIX = ".quarantined"


@dataclasses.dataclass(frozen=True)
class StoreDiskStats:
    """On-disk footprint of a store directory.

    Attributes
    ----------
    entries:
        Number of stored result entries.
    total_bytes:
        Bytes occupied by the entry records (pack records plus any
        unmigrated v1 entry files).
    oldest_mtime / newest_mtime:
        Store-time range of the entries (Unix seconds), or ``None`` for an
        empty store.
    quarantined:
        Corrupt entries moved aside into the quarantine directory.
    """

    entries: int
    total_bytes: int
    oldest_mtime: float | None
    newest_mtime: float | None
    quarantined: int = 0


@dataclasses.dataclass(frozen=True)
class StoreVerifyReport:
    """Outcome of a :meth:`SweepResultStore.verify` fsck pass.

    Attributes
    ----------
    scanned:
        Entry records examined (pack records plus v1 entry files).
    valid:
        Entries that decoded cleanly and matched their key.
    quarantined:
        Corrupt entries moved into the quarantine directory by this pass.
    io_errors:
        Entries that could not be read (or quarantined) due to OS-level
        errors; entries that vanished concurrently are skipped and counted
        nowhere.
    """

    scanned: int
    valid: int
    quarantined: int
    io_errors: int


@dataclasses.dataclass(frozen=True)
class StoreMigrateReport:
    """Outcome of a :meth:`SweepResultStore.migrate` pass.

    Attributes
    ----------
    migrated:
        v1 entries repacked into the packfile layout (and their JSON files
        removed).
    quarantined:
        Corrupt v1 entries moved into the quarantine directory.
    io_errors:
        Entries left in place because reading or repacking them failed with
        an OS-level error (they remain readable through the v1 fallback).
    """

    migrated: int
    quarantined: int
    io_errors: int


@dataclasses.dataclass(frozen=True)
class _Location:
    """Where one entry lives: ``packs/<segment>.pack[offset : offset+length]``."""

    segment: str
    offset: int
    length: int
    timestamp: float


def _format_payload() -> str:
    return _canonical_json({"store_version": STORE_VERSION}) + "\n"


def write_legacy_entry(
    root: str | os.PathLike[str], key: str, payload: Mapping[str, Any]
) -> pathlib.Path:
    """Write one entry in the *v1* one-JSON-file-per-entry layout.

    This is the old :meth:`SweepResultStore.put` kept as a fixture/test
    helper: migration tests and the ``tests/fixtures`` generator use it to
    build v1 stores on the previous release's layout.  Production code
    always writes packfiles.
    """
    root = pathlib.Path(root)
    # v1 entries are pure JSON: render any raw-bytes array fields as base64.
    document = encode_blobs(payload)
    document["key"] = key
    path = root / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    temp.write_text(_canonical_json(document), encoding="utf-8")
    os.replace(temp, path)
    return path


def store_layout_version(root: str | os.PathLike[str]) -> int:
    """Container layout version of a store root.

    Reads ``format.json`` when present; otherwise a root holding v1 entry
    directories reports 1 and anything else (including an empty or missing
    root) reports the current :data:`STORE_VERSION`.
    """
    root = pathlib.Path(root)
    try:
        document = json.loads((root / FORMAT_FILE).read_text(encoding="utf-8"))
        return int(document["store_version"])
    except (OSError, ValueError, TypeError, KeyError):
        pass
    if any(_iter_legacy_files(root)):
        return 1
    return STORE_VERSION


def _iter_legacy_files(root: pathlib.Path) -> Iterator[pathlib.Path]:
    """v1 entry files under ``root`` (ENOENT-tolerant)."""
    try:
        subdirs = sorted(root.iterdir())
    except OSError:
        return
    for subdir in subdirs:
        name = subdir.name
        if len(name) != 2 or any(c not in "0123456789abcdef" for c in name):
            continue
        try:
            children = sorted(subdir.iterdir())
        except OSError:
            continue
        for path in children:
            if path.suffix == ".json" and not path.name.startswith("."):
                yield path


class SweepResultStore:
    """Content-addressed result store rooted at one directory.

    Parameters
    ----------
    root:
        Directory holding the entries.  Created on first write; a missing
        directory reads as an empty store.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = pathlib.Path(root)
        self.stats = StoreStats()
        self._loaded = False
        self._legacy = False
        self._index: dict[str, _Location] = {}
        self._segments: dict[str, dict[str, _Location]] = {}
        self._coverage: dict[str, int] = {}
        self._idx_progress: dict[str, int] = {}
        self._recovered: set[str] = set()
        self._read_handles: dict[str, BinaryIO] = {}
        self._write_segment: str | None = None
        self._pack_handle: BinaryIO | None = None
        self._idx_handle: BinaryIO | None = None
        self._pack_size = 0

    @classmethod
    def default(cls) -> "SweepResultStore":
        """The store at ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro/sweeps``)."""
        configured = os.environ.get(CACHE_DIR_ENV)
        if configured:
            return cls(configured)
        return cls(pathlib.Path.home() / ".cache" / "repro" / "sweeps")

    @property
    def root(self) -> pathlib.Path:
        """Root directory of the store."""
        return self._root

    @staticmethod
    def entry_key(components: Mapping[str, Any]) -> str:
        """Content-addressed key of one result entry.

        ``components`` must be a JSON-serialisable mapping fully describing
        the computation (circuit fingerprint, stimulus, triad, library
        fingerprint, engine version ...).  The key-schema version is mixed
        in so semantic changes invalidate everything at once.  The container
        layout (:data:`STORE_VERSION`) is deliberately *not* part of the
        key: migrating a store must not lose warm hits.
        """
        payload = dict(components)
        payload["store_format"] = STORE_FORMAT_VERSION
        return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()

    # -- index bookkeeping --------------------------------------------------

    @property
    def _packs(self) -> pathlib.Path:
        return self._root / PACKS_DIR

    def _pack_path(self, segment: str) -> pathlib.Path:
        return self._packs / f"{segment}.pack"

    def _idx_path(self, segment: str) -> pathlib.Path:
        return self._packs / f"{segment}.idx"

    def _reindex(self, key: str) -> None:
        """Recompute the global view of ``key`` from the per-segment maps.

        Duplicate records of one key across segments hold identical payloads
        (content addressing), so any surviving copy is as good as another.
        """
        for seg_map in self._segments.values():
            location = seg_map.get(key)
            if location is not None:
                self._index[key] = location
                return
        self._index.pop(key, None)

    def _set_location(self, key: str, location: _Location) -> None:
        self._segments.setdefault(location.segment, {})[key] = location
        self._index[key] = location
        self._recovered.discard(key)
        end = location.offset + location.length
        if end > self._coverage.get(location.segment, 0):
            self._coverage[location.segment] = end

    def _drop_segment(self, segment: str) -> None:
        """Forget all in-memory state of one segment (it was rewritten)."""
        dropped = self._segments.pop(segment, {})
        for key in dropped:
            if self._index.get(key) is dropped[key]:
                self._reindex(key)
        self._coverage.pop(segment, None)
        self._idx_progress.pop(f"{segment}.idx", None)
        handle = self._read_handles.pop(segment, None)
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def _apply_index_line(self, segment: str, line: str) -> None:
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                return
        except ValueError:
            return
        if "x" in record:
            key = record.get("x")
            seg_map = self._segments.get(segment)
            current = seg_map.get(key) if seg_map else None
            if current is not None and current.offset == record.get("o"):
                del seg_map[key]
                self._reindex(key)
            return
        try:
            key = record["k"]
            location = _Location(
                segment=segment,
                offset=int(record["o"]),
                length=int(record["l"]),
                timestamp=float(record["t"]),
            )
        except (KeyError, TypeError, ValueError):
            return
        self._set_location(key, location)

    def _read_index_file(self, path: pathlib.Path) -> None:
        segment = path.name[: -len(".idx")]
        progress = self._idx_progress.get(path.name, 0)
        try:
            size = path.stat().st_size
        except OSError:
            return
        if size < progress:
            # The segment was rewritten (prune/verify in another session):
            # restart from scratch.
            self._drop_segment(segment)
            progress = 0
        if size == progress:
            return
        try:
            with open(path, "rb") as handle:
                handle.seek(progress)
                data = handle.read(size - progress)
        except OSError:
            return
        # Only complete lines: a line still being appended is left for the
        # next refresh.
        end = data.rfind(b"\n")
        if end < 0:
            return
        for raw in data[: end + 1].splitlines():
            self._apply_index_line(segment, raw.decode("utf-8", errors="replace"))
        self._idx_progress[path.name] = progress + end + 1

    def _scan_pack_tail(self, path: pathlib.Path) -> None:
        """Recover records appended after the last index flush (crash tail)."""
        segment = path.name[: -len(".pack")]
        covered = self._coverage.get(segment, 0)
        try:
            stat = path.stat()
        except OSError:
            return
        if stat.st_size <= covered:
            return
        try:
            with open(path, "rb") as handle:
                handle.seek(covered)
                tail = handle.read(stat.st_size - covered)
        except OSError:
            return
        for offset, length, key, _payload in scan_records(tail):
            self._set_location(
                key,
                _Location(
                    segment=segment,
                    offset=covered + offset,
                    length=length,
                    timestamp=stat.st_mtime,
                ),
            )
            # Remember for verify(), which appends the missing index lines.
            self._recovered.add(key)

    def _refresh(self) -> None:
        """Fold on-disk growth (other sessions' appends) into the index."""
        self._loaded = True
        try:
            names = sorted(os.listdir(self._packs))
        except OSError:
            names = []
        for name in names:
            if name.endswith(".idx"):
                self._read_index_file(self._packs / name)
        for name in names:
            if name.endswith(".pack"):
                self._scan_pack_tail(self._packs / name)
        try:
            self._legacy = any(True for _ in _iter_legacy_files(self._root))
        except OSError:
            self._legacy = False

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self._refresh()

    # -- write path ---------------------------------------------------------

    def _write_format_marker(self) -> None:
        marker = self._root / FORMAT_FILE
        if marker.exists():
            return
        temp = marker.with_name(f".{marker.name}.{os.getpid()}.tmp")
        temp.write_text(_format_payload(), encoding="utf-8")
        os.replace(temp, marker)

    def _close_writer(self) -> None:
        for handle in (self._pack_handle, self._idx_handle):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        self._pack_handle = None
        self._idx_handle = None
        self._write_segment = None
        self._pack_size = 0

    def _ensure_writer(self, incoming: int) -> None:
        """Open (or rotate) this session's private pack segment."""
        if (
            self._pack_handle is not None
            and self._pack_size > 0
            and self._pack_size + incoming > MAX_SEGMENT_BYTES
        ):
            self._close_writer()
        if self._pack_handle is not None:
            return
        self._packs.mkdir(parents=True, exist_ok=True)
        self._write_format_marker()
        while True:
            segment = f"seg-{os.getpid()}-{os.urandom(4).hex()}"
            try:
                pack = open(self._pack_path(segment), "xb")
            except FileExistsError:
                continue
            break
        try:
            idx = open(self._idx_path(segment), "ab")
        except OSError:
            pack.close()
            raise
        self._write_segment = segment
        self._pack_handle = pack
        self._idx_handle = idx
        self._pack_size = 0

    def _append_record(self, key: str, payload: Mapping[str, Any], timestamp: float) -> None:
        """Append one record + index line to this session's segment.

        Raises ``OSError`` on failure; callers decide how to degrade.
        """
        record = encode_record(key, payload)
        self._ensure_writer(len(record))
        assert self._pack_handle is not None and self._idx_handle is not None
        offset = self._pack_size
        self._pack_handle.write(record)
        self._pack_handle.flush()
        self._pack_size = offset + len(record)
        line = (
            _canonical_json(
                {"k": key, "o": offset, "l": len(record), "t": timestamp}
            )
            + "\n"
        ).encode("utf-8")
        self._idx_handle.write(line)
        self._idx_handle.flush()
        segment = self._write_segment
        assert segment is not None
        self._set_location(
            key,
            _Location(
                segment=segment, offset=offset, length=len(record), timestamp=timestamp
            ),
        )
        self._idx_progress[f"{segment}.idx"] = (
            self._idx_progress.get(f"{segment}.idx", 0) + len(line)
        )

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store an entry payload (crash-consistent append to a packfile)."""
        self._ensure_loaded()
        try:
            self._append_record(key, payload, clock.wall_time())
        except OSError:
            # Read-only or full filesystem: run uncached rather than fail,
            # but leave a trace in the counters.
            self._close_writer()
            self.stats.io_errors += 1
            return
        self.stats.stores += 1

    # -- read path ----------------------------------------------------------

    def _read_handle(self, segment: str) -> BinaryIO:
        handle = self._read_handles.get(segment)
        if handle is None:
            handle = open(self._pack_path(segment), "rb")
            self._read_handles[segment] = handle
        return handle

    def _quarantine_record(
        self, location: _Location, data: bytes | memoryview
    ) -> bool:
        """Copy a corrupt record's bytes into quarantine for diagnosis.

        The name is deterministic (segment + offset) so repeated detection
        of the same damage is idempotent.  Returns whether the bytes were
        preserved.
        """
        target = (
            self._root
            / QUARANTINE_DIR
            / f"{location.segment}@{location.offset}{QUARANTINE_SUFFIX}"
        )
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            temp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
            temp.write_bytes(data)
            os.replace(temp, target)
            return True
        except OSError:
            self.stats.io_errors += 1
            return False

    def _drop_corrupt(
        self, key: str, location: _Location, data: bytes | memoryview
    ) -> None:
        self.stats.corrupt += 1
        self._quarantine_record(location, data)
        self._drop_corrupt_quietly(key, location)

    def _decode_chunk(
        self, key: str, location: _Location, data: bytes | memoryview
    ) -> dict[str, Any] | None:
        """Decode one record's bytes; ``None`` (+ bookkeeping) on damage."""
        try:
            found, payload, length = decode_record(data)
            if found != key or length != location.length:
                raise PackRecordError("record does not match its index entry")
        except PackRecordError:
            self._drop_corrupt(key, location, data)
            return None
        return payload

    def _read_location(self, key: str, location: _Location) -> dict[str, Any] | None:
        """Decode the record at ``location``; ``None`` (+ bookkeeping) on damage."""
        try:
            handle = self._read_handle(location.segment)
            handle.seek(location.offset)
            data = handle.read(location.length)
        except FileNotFoundError:
            # Segment removed by a concurrent clear/prune: a plain miss.
            self._drop_segment(location.segment)
            return None
        except OSError:
            self.stats.io_errors += 1
            return None
        return self._decode_chunk(key, location, data)

    def _legacy_path(self, key: str) -> pathlib.Path:
        return self._root / key[:2] / f"{key}.json"

    def _quarantine_legacy(self, path: pathlib.Path) -> bool:
        """Move a corrupt v1 entry aside (keeping its bytes for diagnosis)."""
        target = self._root / QUARANTINE_DIR / (path.name + QUARANTINE_SUFFIX)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            return True
        except FileNotFoundError:
            return True
        except OSError:
            pass
        # Quarantine failed (e.g. read-only directory): deleting is still
        # better than re-reading garbage forever.
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return True
        except OSError:
            self.stats.io_errors += 1
            return False

    def _legacy_get(self, key: str) -> dict[str, Any] | None:
        """v1 fallback read (counts hits/misses exactly like the old store)."""
        path = self._legacy_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.io_errors += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict) or payload.get("key") != key:
                raise ValueError("entry does not match its key")
        except (ValueError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._quarantine_legacy(path)
            return None
        self.stats.hits += 1
        # The embedded key is integrity metadata, not part of the payload:
        # strip it so cached payloads compare equal to freshly computed ones.
        payload.pop("key", None)
        return payload

    def get(self, key: str) -> dict[str, Any] | None:
        """Fetch an entry payload, or ``None`` on miss.

        Payloads served from pack records carry their binary array fields
        as raw ``bytes`` rather than base64 text (the array codec accepts
        both; :func:`repro.core.packfile.encode_blobs` restores the JSON
        form).  Entries served through the v1 fallback keep base64 text.

        A corrupted record (CRC failure, key mismatch) is quarantined,
        dropped from the index and reported as a miss; OS-level errors also
        degrade to a miss -- counted in :attr:`StoreStats.io_errors` -- so a
        broken cache never fails the sweep.  Keys absent from the pack index
        fall back to the v1 per-file layout when one is present.
        """
        self._ensure_loaded()
        location = self._index.get(key)
        if location is None:
            # Pick up appends from concurrent sessions before concluding.
            self._refresh()
            location = self._index.get(key)
        if location is None:
            if self._legacy:
                return self._legacy_get(key)
            self.stats.misses += 1
            return None
        payload = self._read_location(key, location)
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Fetch a batch of entries in one pass; misses are simply absent.

        Result-identical to calling :meth:`get` per key -- same payloads,
        same hit/miss/corruption accounting, same v1 fallback -- but each
        pack segment is visited once in offset order, and loaded wholesale
        when the batch covers most of it, instead of seeking per key.  This
        is the read path of warm sweeps and batch merges, where per-entry
        seeks dominate on multi-thousand-entry stores.
        """
        self._ensure_loaded()
        if any(key not in self._index for key in keys):
            # Pick up appends from concurrent sessions before concluding.
            self._refresh()
        by_segment: dict[str, list[tuple[str, _Location]]] = {}
        absent: list[str] = []
        for key in keys:
            location = self._index.get(key)
            if location is None:
                absent.append(key)
            else:
                by_segment.setdefault(location.segment, []).append(
                    (key, location)
                )
        result: dict[str, dict[str, Any]] = {}
        for segment, items in sorted(by_segment.items()):
            items.sort(key=lambda item: item[1].offset)
            data: memoryview | None = None
            wanted = sum(location.length for _, location in items)
            try:
                if wanted * 2 >= os.path.getsize(self._pack_path(segment)):
                    data = memoryview(self._pack_path(segment).read_bytes())
            except OSError:
                data = None
            for key, location in items:
                end = location.offset + location.length
                if data is not None and end <= len(data):
                    payload = self._decode_chunk(
                        key, location, data[location.offset : end]
                    )
                else:
                    payload = self._read_location(key, location)
                if payload is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
                    result[key] = payload
        for key in absent:
            if self._legacy:
                payload = self._legacy_get(key)
                if payload is not None:
                    result[key] = payload
            else:
                self.stats.misses += 1
        return result

    # -- maintenance --------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_loaded()
        self._refresh()
        total = len(self._index)
        if self._legacy:
            total += sum(1 for _ in _iter_legacy_files(self._root))
        return total

    def entry_keys(self) -> list[str]:
        """Sorted keys of every stored entry (both layouts)."""
        self._refresh()
        keys = set(self._index)
        if self._legacy:
            keys.update(path.stem for path in _iter_legacy_files(self._root))
        return sorted(keys)

    def snapshot(self) -> dict[str, str]:
        """Canonical-JSON payloads of every entry, keyed by entry key.

        The canonical rendering is layout-independent, which is what makes
        before/after-migration (and serial-vs-sharded) comparisons exact:
        two stores holding the same results produce equal snapshots whatever
        container they use.  Corrupt or unreadable entries are skipped.
        """
        self._refresh()
        result: dict[str, str] = {}
        for key in list(self._index):
            location = self._index.get(key)
            if location is None:
                continue
            payload = self._read_location(key, location)
            if payload is not None:
                result[key] = _canonical_json(encode_blobs(payload))
        if self._legacy:
            for path in _iter_legacy_files(self._root):
                key = path.stem
                if key in result:
                    continue
                try:
                    document = json.loads(path.read_text(encoding="utf-8"))
                    if not isinstance(document, dict) or document.get("key") != key:
                        continue
                except (OSError, ValueError, TypeError):
                    continue
                document.pop("key", None)
                result[key] = _canonical_json(document)
        return result

    def clear(self) -> int:
        """Delete every entry (explicit invalidation); returns the count."""
        self._refresh()
        self._close_writer()
        removed = 0
        by_segment: dict[str, int] = collections.Counter(
            loc.segment for loc in self._index.values()
        )
        for segment, count in sorted(by_segment.items()):
            gone = True
            for path in (self._pack_path(segment), self._idx_path(segment)):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                except OSError:
                    self.stats.io_errors += 1
                    gone = False
            if gone:
                removed += count
            self._drop_segment(segment)
        # Segments holding only tombstones (or empty) would survive the loop
        # above: sweep the directory for leftovers.
        try:
            for name in os.listdir(self._packs):
                if name.endswith(".pack") or name.endswith(".idx"):
                    try:
                        (self._packs / name).unlink()
                    except OSError:
                        pass
        except OSError:
            pass
        for path in list(_iter_legacy_files(self._root)):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
            except OSError:
                self.stats.io_errors += 1
        self._index.clear()
        self._segments.clear()
        self._coverage.clear()
        self._idx_progress.clear()
        self._recovered.clear()
        self._legacy = False
        return removed

    def quarantined_count(self) -> int:
        """Number of corrupt entries currently sitting in quarantine."""
        quarantine = self._root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return 0
        return sum(1 for _ in quarantine.glob(f"*{QUARANTINE_SUFFIX}"))

    def _legacy_stats(self) -> tuple[int, int, list[float]]:
        """(count, bytes, mtimes) of unmigrated v1 entries."""
        count = 0
        total = 0
        mtimes: list[float] = []
        for path in _iter_legacy_files(self._root):
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            except OSError:
                self.stats.io_errors += 1
                continue
            count += 1
            total += stat.st_size
            mtimes.append(stat.st_mtime)
        return count, total, mtimes

    def disk_stats(self) -> StoreDiskStats:
        """Measure the store's on-disk footprint (``repro store stats``).

        O(index) on the packfile layout: entry counts, byte totals and the
        age range all come from the in-memory index -- no per-entry stat
        calls.  Unmigrated v1 entries (if any) are still walked on disk.
        """
        self._refresh()
        entries = len(self._index)
        total_bytes = sum(loc.length for loc in self._index.values())
        times = [loc.timestamp for loc in self._index.values()]
        if self._legacy:
            legacy_count, legacy_bytes, legacy_mtimes = self._legacy_stats()
            entries += legacy_count
            total_bytes += legacy_bytes
            times.extend(legacy_mtimes)
        quarantined = self.quarantined_count()
        if not entries:
            return StoreDiskStats(
                entries=0,
                total_bytes=0,
                oldest_mtime=None,
                newest_mtime=None,
                quarantined=quarantined,
            )
        return StoreDiskStats(
            entries=entries,
            total_bytes=total_bytes,
            oldest_mtime=min(times),
            newest_mtime=max(times),
            quarantined=quarantined,
        )

    def verify(self) -> StoreVerifyReport:
        """Fsck pass: validate every record, quarantining the corrupt ones.

        Each indexed record is decoded and checked against its key; corrupt
        ones have their bytes copied into ``quarantine/`` and are dropped
        via durable index tombstones, exactly as a read-path detection
        would.  Records recovered by the crash tail scan gain their missing
        index lines, making the recovery durable.  Unmigrated v1 entries
        are verified with the v1 rules.  The store remains fully usable
        during and after the pass (``repro store verify``).
        """
        self._refresh()
        scanned = 0
        valid = 0
        quarantined = 0
        io_errors = 0
        by_segment: dict[str, list[tuple[str, _Location]]] = collections.defaultdict(list)
        for key, location in self._index.items():
            by_segment[location.segment].append((key, location))
        for segment in sorted(by_segment):
            entries = sorted(by_segment[segment], key=lambda item: item[1].offset)
            try:
                data = self._pack_path(segment).read_bytes()
            except FileNotFoundError:
                # Removed by a concurrent session: its entries are gone.
                self._drop_segment(segment)
                continue
            except OSError:
                scanned += len(entries)
                io_errors += len(entries)
                self.stats.io_errors += len(entries)
                continue
            for key, location in entries:
                scanned += 1
                chunk = data[location.offset : location.offset + location.length]
                try:
                    found, _payload, length = decode_record(chunk)
                    if found != key or length != location.length:
                        raise PackRecordError("record does not match its index entry")
                except PackRecordError:
                    before = self.stats.io_errors
                    if self._quarantine_record(location, chunk):
                        quarantined += 1
                    else:
                        io_errors += self.stats.io_errors - before
                    self.stats.corrupt += 1
                    self._drop_corrupt_quietly(key, location)
                    continue
                if key in self._recovered:
                    # Make the crash-tail recovery durable.
                    try:
                        with open(self._idx_path(segment), "ab") as handle:
                            line = (
                                _canonical_json(
                                    {
                                        "k": key,
                                        "o": location.offset,
                                        "l": location.length,
                                        "t": location.timestamp,
                                    }
                                )
                                + "\n"
                            ).encode("utf-8")
                            handle.write(line)
                            handle.flush()
                        self._idx_progress[f"{segment}.idx"] = (
                            self._idx_progress.get(f"{segment}.idx", 0) + len(line)
                        )
                        self._recovered.discard(key)
                    except OSError:
                        self.stats.io_errors += 1
                valid += 1
        if self._legacy:
            for path in sorted(_iter_legacy_files(self._root)):
                try:
                    text = path.read_text(encoding="utf-8")
                except FileNotFoundError:
                    continue
                except OSError:
                    scanned += 1
                    io_errors += 1
                    self.stats.io_errors += 1
                    continue
                scanned += 1
                key = path.stem
                try:
                    payload = json.loads(text)
                    if not isinstance(payload, dict) or payload.get("key") != key:
                        raise ValueError("entry does not match its key")
                except (ValueError, TypeError):
                    self.stats.corrupt += 1
                    if self._quarantine_legacy(path):
                        quarantined += 1
                    else:
                        io_errors += 1
                    continue
                valid += 1
        return StoreVerifyReport(
            scanned=scanned,
            valid=valid,
            quarantined=quarantined,
            io_errors=io_errors,
        )

    def _drop_corrupt_quietly(self, key: str, location: _Location) -> None:
        """Tombstone + forget one entry without re-quarantining its bytes."""
        tombstone = (
            _canonical_json({"x": key, "o": location.offset}) + "\n"
        ).encode("utf-8")
        path = self._idx_path(location.segment)
        try:
            with open(path, "ab") as handle:
                handle.write(tombstone)
                handle.flush()
            self._idx_progress[path.name] = (
                self._idx_progress.get(path.name, 0) + len(tombstone)
            )
        except OSError:
            self.stats.io_errors += 1
        seg_map = self._segments.get(location.segment)
        if seg_map is not None:
            seg_map.pop(key, None)
        self._reindex(key)
        self._recovered.discard(key)

    def _rewrite_segment(self, segment: str, keep: list[tuple[str, _Location]]) -> bool:
        """Compact one segment down to ``keep`` (empty ``keep`` removes it).

        Surviving record bytes are copied verbatim (still CRC-protected), so
        a rewrite can never alter a payload.  The pack is replaced before
        the index; a crash in between leaves stale offsets that fail record
        validation and read as misses -- degraded, never wrong.
        """
        if segment == self._write_segment:
            self._close_writer()
        pack_path = self._pack_path(segment)
        idx_path = self._idx_path(segment)
        if not keep:
            ok = True
            for path in (pack_path, idx_path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                except OSError:
                    self.stats.io_errors += 1
                    ok = False
            self._drop_segment(segment)
            return ok
        try:
            data = pack_path.read_bytes()
        except OSError:
            self.stats.io_errors += 1
            return False
        keep = sorted(keep, key=lambda item: item[1].offset)
        chunks: list[bytes] = []
        lines: list[bytes] = []
        new_locations: dict[str, _Location] = {}
        offset = 0
        for key, location in keep:
            chunk = data[location.offset : location.offset + location.length]
            chunks.append(chunk)
            lines.append(
                (
                    _canonical_json(
                        {
                            "k": key,
                            "o": offset,
                            "l": location.length,
                            "t": location.timestamp,
                        }
                    )
                    + "\n"
                ).encode("utf-8")
            )
            new_locations[key] = _Location(
                segment=segment,
                offset=offset,
                length=location.length,
                timestamp=location.timestamp,
            )
            offset += location.length
        try:
            pack_temp = pack_path.with_name(f".{pack_path.name}.{os.getpid()}.tmp")
            idx_temp = idx_path.with_name(f".{idx_path.name}.{os.getpid()}.tmp")
            pack_temp.write_bytes(b"".join(chunks))
            idx_temp.write_bytes(b"".join(lines))
            os.replace(pack_temp, pack_path)
            os.replace(idx_temp, idx_path)
        except OSError:
            self.stats.io_errors += 1
            return False
        self._drop_segment(segment)
        for key, location in new_locations.items():
            self._set_location(key, location)
        self._idx_progress[f"{segment}.idx"] = sum(len(line) for line in lines)
        return True

    def prune(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> int:
        """Bound the store by deleting the oldest entries first.

        Entries are removed in ascending store-time order (key as a
        deterministic tie-break) until both limits hold; affected pack
        segments are compacted so the bytes are actually reclaimed.
        Returns the number of entries deleted.  With no limit given
        nothing is removed.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if max_entries is None and max_bytes is None:
            return 0
        self._refresh()
        # (timestamp, tie-break, size, kind, identity)
        candidates: list[tuple[float, str, int, str, Any]] = []
        for key, location in self._index.items():
            candidates.append(
                (location.timestamp, key, location.length, "pack", key)
            )
        if self._legacy:
            for path in _iter_legacy_files(self._root):
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue
                except OSError:
                    self.stats.io_errors += 1
                    continue
                candidates.append(
                    (stat.st_mtime, str(path), stat.st_size, "legacy", path)
                )
        candidates.sort(key=lambda item: (item[0], item[1]))
        remaining = len(candidates)
        remaining_bytes = sum(item[2] for item in candidates)
        legacy_victims: list[pathlib.Path] = []
        pack_victims: set[str] = set()
        for _ts, _tie, size, kind, identity in candidates:
            over_entries = max_entries is not None and remaining > max_entries
            over_bytes = max_bytes is not None and remaining_bytes > max_bytes
            if not over_entries and not over_bytes:
                break
            if kind == "legacy":
                legacy_victims.append(identity)
            else:
                pack_victims.add(identity)
            remaining -= 1
            remaining_bytes -= size
        removed = 0
        for path in legacy_victims:
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            except OSError:
                self.stats.io_errors += 1
                continue
            removed += 1
        by_segment: dict[str, list[tuple[str, _Location]]] = collections.defaultdict(list)
        for key, location in self._index.items():
            by_segment[location.segment].append((key, location))
        for segment in sorted(by_segment):
            entries = by_segment[segment]
            keep = [(key, loc) for key, loc in entries if key not in pack_victims]
            if len(keep) == len(entries):
                continue
            if self._rewrite_segment(segment, keep):
                removed += len(entries) - len(keep)
        return removed

    def migrate(self) -> StoreMigrateReport:
        """Repack every v1 JSON entry into the packfile layout, in place.

        Valid entries keep their keys (the key schema never changed) and
        their store times (the file mtime becomes the pack timestamp, so
        prune ordering survives migration); the JSON file is removed only
        after its record and index line are flushed, so a crash mid-migration
        loses nothing -- rerunning completes the job.  Corrupt v1 entries
        are quarantined exactly as a read would quarantine them; entries
        that cannot be repacked due to I/O errors stay in place and remain
        readable through the v1 fallback.  Exposed as ``repro store
        migrate``.
        """
        self._refresh()
        migrated = 0
        quarantined = 0
        io_errors = 0
        for path in sorted(_iter_legacy_files(self._root)):
            key = path.stem
            try:
                stat = path.stat()
                text = path.read_text(encoding="utf-8")
            except FileNotFoundError:
                continue
            except OSError:
                io_errors += 1
                self.stats.io_errors += 1
                continue
            try:
                document = json.loads(text)
                if not isinstance(document, dict) or document.get("key") != key:
                    raise ValueError("entry does not match its key")
            except (ValueError, TypeError):
                self.stats.corrupt += 1
                if self._quarantine_legacy(path):
                    quarantined += 1
                else:
                    io_errors += 1
                continue
            document.pop("key", None)
            try:
                self._append_record(key, document, stat.st_mtime)
            except OSError:
                # Leave the v1 file in place: still readable via fallback.
                self._close_writer()
                io_errors += 1
                self.stats.io_errors += 1
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                # The pack copy exists and shadows the file; the leftover
                # JSON only wastes space until the next migrate/clear.
                io_errors += 1
                self.stats.io_errors += 1
            migrated += 1
            try:
                path.parent.rmdir()
            except OSError:
                pass
        try:
            self._root.mkdir(parents=True, exist_ok=True)
            self._write_format_marker()
        except OSError:
            self.stats.io_errors += 1
        self._legacy = any(True for _ in _iter_legacy_files(self._root))
        return StoreMigrateReport(
            migrated=migrated, quarantined=quarantined, io_errors=io_errors
        )


#: Default entry bound of a :class:`MemoryOverlayStore`.  Sized for whole
#: batches (tens of adders x 43-triad grids) while keeping a long-lived
#: session's memory bounded; least-recently-used entries evict first.
OVERLAY_MAX_ENTRIES = 4096


class MemoryOverlayStore:
    """In-memory read-through / write-through overlay over an optional store.

    A :class:`~repro.api.session.Session` shares one overlay across every
    job it runs: the first lookup of an entry reads the backing store (when
    present) and memoises the payload; every later lookup -- from the same
    job or from any other job of the same session/batch -- is served from
    memory.  Writes go to both layers, so persistence semantics are exactly
    those of the backing store.  With ``backing=None`` the overlay acts as a
    session-lifetime cache, which is what makes ``run_batch`` dedup work
    even for uncached sessions.

    The memory layer is an LRU bounded by ``max_entries`` so a long-lived
    session cannot grow without limit; an evicted entry is only a
    performance miss (it re-reads the backing store, or in the uncached
    case re-simulates), never a correctness issue.

    The overlay duck-types the ``get``/``get_many``/``put`` subset of
    :class:`SweepResultStore` that every sweep orchestrator uses.
    """

    def __init__(
        self,
        backing: SweepResultStore | None = None,
        max_entries: int = OVERLAY_MAX_ENTRIES,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._backing = backing
        self._max_entries = max_entries
        self._memory: "collections.OrderedDict[str, dict[str, Any]]" = (
            collections.OrderedDict()
        )
        self.memory_hits = 0
        self.memory_misses = 0

    @property
    def backing(self) -> SweepResultStore | None:
        """The persistent store underneath (or ``None``)."""
        return self._backing

    @property
    def max_entries(self) -> int:
        """Capacity of the in-memory LRU tier."""
        return self._max_entries

    def __len__(self) -> int:
        """Entries currently held in the in-memory tier."""
        return len(self._memory)

    def snapshot(self) -> dict[str, int]:
        """Hot-tier accounting for monitoring surfaces (``/v1/stats``).

        ``hits``/``misses`` count lookups served from / falling through the
        memory tier (a miss may still be answered by the backing store);
        they are intentionally separate from the backing
        :class:`StoreStats`, which counts disk traffic only.
        """
        return {
            "entries": len(self._memory),
            "max_entries": self._max_entries,
            "hits": self.memory_hits,
            "misses": self.memory_misses,
        }

    def _remember(self, key: str, payload: dict[str, Any]) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self._max_entries:
            self._memory.popitem(last=False)

    def get(self, key: str) -> dict[str, Any] | None:
        """Fetch an entry, memoising backing-store hits."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return cached
        self.memory_misses += 1
        if self._backing is None:
            return None
        payload = self._backing.get(key)
        if payload is not None:
            self._remember(key, payload)
        return payload

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Batch :meth:`get`: memory first, one backing batch for the rest."""
        result: dict[str, dict[str, Any]] = {}
        missing: list[str] = []
        for key in keys:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.memory_hits += 1
                result[key] = cached
            else:
                self.memory_misses += 1
                missing.append(key)
        if missing and self._backing is not None:
            for key, payload in self._backing.get_many(missing).items():
                self._remember(key, payload)
                result[key] = payload
        return result

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store an entry in memory and (when present) the backing store."""
        self._remember(key, dict(payload))
        if self._backing is not None:
            self._backing.put(key, payload)

    def __len__(self) -> int:
        return len(self._memory)
