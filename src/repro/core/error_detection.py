"""Online timing-error detection (the double-sampling monitor).

The paper relies on double-sampling registers [3] and its companion dynamic
speculation work [17] to *measure* the error rate at run time, which is what
allows triads to be switched without offline knowledge of the input
statistics.  This module provides the functional equivalent:

* :class:`ShadowRegisterMonitor` -- compares the main register's value
  (captured at ``Tclk``) with a shadow capture taken after an extra timing
  margin, flagging the cycles where the two disagree, exactly like a Razor /
  double-sampling stage.
* :class:`OnlineBerEstimator`    -- turns the per-cycle flags into windowed
  BER observations for the :class:`~repro.core.speculation.DynamicSpeculationController`.

Together with the speculation controller this closes the paper's control
loop entirely inside the library: simulate a workload at the current triad,
detect the errors with the shadow monitor, estimate the BER, and let the
controller move along the Pareto front.
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np

from repro.circuits.adders import AdderCircuit
from repro.simulation.timing_sim import VosTimingSimulator
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


@dataclasses.dataclass(frozen=True)
class ShadowComparisonResult:
    """Outcome of one shadow-register comparison window.

    Attributes
    ----------
    flagged_cycles:
        Boolean array: True where the main and shadow captures disagree.
    detected_bit_errors:
        Number of differing bits per cycle between main and shadow captures.
    observed_ber:
        Detected bit errors over total observed bits in the window.
    missed_ber:
        Bit errors present in the *shadow* capture itself (errors the
        detector cannot see because even the delayed capture was too early).
        Zero when the shadow margin is generous enough.
    """

    flagged_cycles: np.ndarray
    detected_bit_errors: np.ndarray
    observed_ber: float
    missed_ber: float


class ShadowRegisterMonitor:
    """Double-sampling (Razor-style) error monitor for an adder under VOS.

    Parameters
    ----------
    adder:
        The circuit being monitored.
    shadow_margin:
        Extra fraction of the clock period given to the shadow capture
        (0.5 = the shadow register samples at ``1.5 * Tclk``).
    library:
        Standard-cell library for the underlying timing simulation.
    """

    def __init__(
        self,
        adder: AdderCircuit,
        shadow_margin: float = 0.5,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> None:
        if shadow_margin <= 0:
            raise ValueError("shadow_margin must be positive")
        self._adder = adder
        self._margin = shadow_margin
        self._simulator = VosTimingSimulator(
            adder.netlist, output_ports=adder.output_ports(), library=library
        )

    @property
    def adder(self) -> AdderCircuit:
        """The monitored circuit."""
        return self._adder

    @property
    def shadow_margin(self) -> float:
        """Extra clock fraction given to the shadow capture."""
        return self._margin

    def observe_window(
        self,
        in1: np.ndarray,
        in2: np.ndarray,
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
    ) -> ShadowComparisonResult:
        """Run one observation window and compare main vs shadow captures."""
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        assignment = self._adder.input_assignment(in1_arr, in2_arr)
        main = self._simulator.run(assignment, tclk=tclk, vdd=vdd, vbb=vbb)
        shadow = self._simulator.run(
            assignment, tclk=tclk * (1.0 + self._margin), vdd=vdd, vbb=vbb
        )
        disagreement = main.latched_bits != shadow.latched_bits
        detected_per_cycle = disagreement.sum(axis=1)
        total_bits = disagreement.size
        exact_bits = shadow.settled_bits  # settled values are always exact
        missed = float((shadow.latched_bits != exact_bits).mean())
        return ShadowComparisonResult(
            flagged_cycles=detected_per_cycle > 0,
            detected_bit_errors=detected_per_cycle,
            observed_ber=float(disagreement.sum() / total_bits),
            missed_ber=missed,
        )


class OnlineBerEstimator:
    """Sliding-window BER estimator fed by shadow-register observations.

    Parameters
    ----------
    window_count:
        Number of recent observation windows averaged into the estimate.
    """

    def __init__(self, window_count: int = 8) -> None:
        if window_count <= 0:
            raise ValueError("window_count must be positive")
        self._history: deque[float] = deque(maxlen=window_count)

    def update(self, observation: ShadowComparisonResult | float) -> float:
        """Add one window observation and return the current estimate."""
        value = (
            observation.observed_ber
            if isinstance(observation, ShadowComparisonResult)
            else float(observation)
        )
        if value < 0.0 or value > 1.0:
            raise ValueError("BER observations must lie within [0, 1]")
        self._history.append(value)
        return self.estimate

    @property
    def estimate(self) -> float:
        """Current BER estimate (0.0 before any observation)."""
        if not self._history:
            return 0.0
        return float(np.mean(self._history))

    @property
    def observation_count(self) -> int:
        """Number of observations currently contributing to the estimate."""
        return len(self._history)

    def reset(self) -> None:
        """Forget all past observations (e.g. after a triad switch)."""
        self._history.clear()
