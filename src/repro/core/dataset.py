"""JSON serialisation of characterization results and trained models.

Characterizing an adder over the full Table III grid with 20 K vectors takes
a while; applications and benchmarks therefore persist the results.  The
format is plain JSON so it stays inspectable and diff-able: a top-level
object with the adder identity, the stimulus configuration, and one record
per triad.  Probability tables are stored as nested lists.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from repro.core.carry_model import CarryProbabilityTable
from repro.core.characterization import AdderCharacterization, TriadCharacterization
from repro.core.triad import OperatingTriad

_FORMAT_VERSION = 1


def characterization_to_dict(characterization: AdderCharacterization) -> dict[str, Any]:
    """Convert a characterization (without raw measurements) to plain data."""
    return {
        "format_version": _FORMAT_VERSION,
        "adder_name": characterization.adder_name,
        "width": characterization.width,
        "pattern_kind": characterization.pattern_kind,
        "n_vectors": characterization.n_vectors,
        "seed": characterization.seed,
        "reference_triad": _triad_to_dict(characterization.reference_triad),
        "results": [_entry_to_dict(entry) for entry in characterization.results],
    }


def characterization_from_dict(data: dict[str, Any]) -> AdderCharacterization:
    """Rebuild a characterization from :func:`characterization_to_dict` data."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported characterization format version: {version!r}")
    return AdderCharacterization(
        adder_name=data["adder_name"],
        width=int(data["width"]),
        results=[_entry_from_dict(entry) for entry in data["results"]],
        reference_triad=_triad_from_dict(data["reference_triad"]),
        measurements=[],
        pattern_kind=data.get("pattern_kind", "uniform"),
        n_vectors=int(data.get("n_vectors", 0)),
        seed=int(data.get("seed", 0)),
    )


def save_characterization(
    characterization: AdderCharacterization, path: str | pathlib.Path
) -> None:
    """Write a characterization to a JSON file."""
    payload = characterization_to_dict(characterization)
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )


def load_characterization(path: str | pathlib.Path) -> AdderCharacterization:
    """Read a characterization from a JSON file."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return characterization_from_dict(payload)


def save_probability_table(
    table: CarryProbabilityTable, path: str | pathlib.Path
) -> None:
    """Write a carry probability table to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "width": table.width,
        "matrix": table.matrix.tolist(),
    }
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )


def load_probability_table(path: str | pathlib.Path) -> CarryProbabilityTable:
    """Read a carry probability table from a JSON file."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported table format version: {version!r}")
    return CarryProbabilityTable(
        width=int(payload["width"]),
        probabilities=np.asarray(payload["matrix"], dtype=float),
    )


# -- helpers -------------------------------------------------------------------


def _triad_to_dict(triad: OperatingTriad) -> dict[str, float]:
    return {"tclk": triad.tclk, "vdd": triad.vdd, "vbb": triad.vbb}


def _triad_from_dict(data: dict[str, float]) -> OperatingTriad:
    return OperatingTriad(
        tclk=float(data["tclk"]), vdd=float(data["vdd"]), vbb=float(data["vbb"])
    )


def _entry_to_dict(entry: TriadCharacterization) -> dict[str, Any]:
    return {
        "triad": _triad_to_dict(entry.triad),
        "ber": entry.ber,
        "mse": entry.mse,
        "bitwise_error": np.asarray(entry.bitwise_error).tolist(),
        "energy_per_operation": entry.energy_per_operation,
        "dynamic_energy_per_operation": entry.dynamic_energy_per_operation,
        "static_energy_per_operation": entry.static_energy_per_operation,
        "faulty_vector_fraction": entry.faulty_vector_fraction,
    }


def _entry_from_dict(data: dict[str, Any]) -> TriadCharacterization:
    return TriadCharacterization(
        triad=_triad_from_dict(data["triad"]),
        ber=float(data["ber"]),
        mse=float(data["mse"]),
        bitwise_error=np.asarray(data["bitwise_error"], dtype=float),
        energy_per_operation=float(data["energy_per_operation"]),
        dynamic_energy_per_operation=float(data["dynamic_energy_per_operation"]),
        static_energy_per_operation=float(data["static_energy_per_operation"]),
        faulty_vector_fraction=float(data["faulty_vector_fraction"]),
    )
