"""Shared-memory stimulus transport for sweep worker processes.

The shard tasks of :mod:`repro.core.sweep` and
:mod:`repro.variation.montecarlo` carry the operand streams of the sweep --
the same one or two megabyte-scale int64 arrays duplicated into *every*
shard.  With pickling transport, dispatching a 16-way sweep serialises the
stimulus 16 times and copies it through 16 pipes.  This module moves the
arrays into one POSIX shared-memory segment instead
(:mod:`multiprocessing.shared_memory`): the parent publishes them once via
:func:`share_arrays`, the shard tasks carry only a tiny picklable
:class:`SharedArrayRef`, and each worker attaches, copies its view out, and
detaches.

Design points:

* **One segment per sweep, owned by the parent.**  ``share_arrays`` packs
  all arrays into a single segment named ``repro_shm_<pid>_<token>`` and
  returns a :class:`SharedArrayBundle` whose :meth:`~SharedArrayBundle.unlink`
  is the only destructor.  The sweep orchestrators hand it to
  :func:`repro.core.resilience.run_shards` as the ``cleanup`` hook, which
  runs it in a ``finally`` -- so the segment is removed even when workers
  crash mid-attach, a shard times out, or the run is interrupted.
* **Copy-on-attach.**  :meth:`SharedArrayRef.load` copies each array out of
  the segment and closes the mapping before returning.  Workers never hold
  live views into the segment, so the parent may unlink it at any time
  without racing attached readers, and a worker that dies abruptly leaks no
  mapping of consequence (the kernel reclaims it with the process).
* **Transparent fallback.**  When shared memory is unavailable (``/dev/shm``
  full, platform without it) or disabled -- per call via ``enabled=False``
  or globally via the ``REPRO_SHM`` environment variable -- the ref simply
  carries the arrays inline and pickles like before.  ``load()`` behaves
  identically on both paths, and sweep results are byte-identical either
  way: the transport moves bytes, it never transforms them.
* **Crash janitor.**  A SIGKILLed or OOM-killed run can never unlink its
  own segment, and POSIX shared memory outlives its creator by design.
  Segment names embed the creating pid, so :func:`reap_stale_segments`
  can tell garbage from live segments; ``share_arrays`` sweeps before
  publishing, keeping ``/dev/shm`` bounded across crashed runs.
"""

from __future__ import annotations

import dataclasses
import math
import os
import secrets
from multiprocessing import shared_memory
from typing import Mapping, Sequence

import numpy as np

from repro.obs import metrics
from repro.obs.trace import span

#: Environment variable gating shared-memory transport.  Any of ``0``,
#: ``off``, ``false`` or ``no`` (case-insensitive) forces the inline-pickle
#: fallback; anything else (including unset) leaves it enabled.
SHM_ENV = "REPRO_SHM"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})

#: Prefix of every segment this module creates; tests sweep ``/dev/shm``
#: for it to prove nothing leaks.
SEGMENT_PREFIX = "repro_shm_"

#: Where the kernel surfaces POSIX shared memory (Linux; absent elsewhere,
#: which simply disables the janitor).
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the process exists but is not ours.
        return True
    return True


def reap_stale_segments() -> int:
    """Unlink segments abandoned by dead processes; returns the count.

    Best-effort and race-free by construction: only names whose embedded
    creator pid no longer exists are touched (a live concurrent sweep keeps
    its segments), and a segment that vanishes mid-sweep is skipped.
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return 0
    reaped = 0
    for name in names:
        if not name.startswith(SEGMENT_PREFIX):
            continue
        pid_text = name[len(SEGMENT_PREFIX) :].split("_", 1)[0]
        if not pid_text.isdigit() or _pid_alive(int(pid_text)):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            reaped += 1
        except OSError:
            continue
    return reaped


def shm_enabled(flag: bool | None = None) -> bool:
    """Whether shared-memory transport should be attempted.

    An explicit ``flag`` wins; otherwise the :data:`SHM_ENV` environment
    variable decides (default: enabled).
    """
    if flag is not None:
        return bool(flag)
    value = os.environ.get(SHM_ENV, "").strip().lower()
    return value not in _DISABLED_VALUES


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment as a pure reader.

    On Python >= 3.13, ``track=False`` keeps the attach out of the resource
    tracker (the reader does not own the segment).  On older versions the
    plain attach would *register* the name with the attaching process's own
    resource tracker -- fatal under the ``spawn`` start method, where every
    worker owns a private tracker that unlinks everything it knows about
    when the worker exits: the first worker to finish would delete the
    segment under the remaining shards.  (Under ``fork`` the tracker is
    shared with the creator, so the extra registration merely deduped.)
    The fallback therefore suppresses the registration for the duration of
    the attach, which is exactly the detached semantics of ``track=False``:
    the reader's tracker never learns the name, and the creator's single
    registration is retired by its ``unlink()`` as always.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


@dataclasses.dataclass(frozen=True)
class _ArraySpec:
    """Where one array lives inside the segment."""

    field: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclasses.dataclass(frozen=True)
class SharedArrayRef:
    """Picklable handle to a named set of arrays.

    Either points into a shared-memory ``segment`` (the cheap path: a few
    hundred bytes regardless of array size) or carries the arrays ``inline``
    (the fallback path: pickles exactly like passing the arrays directly).
    Workers call :meth:`load` and cannot tell the difference.
    """

    segment: str | None
    specs: tuple[_ArraySpec, ...]
    inline: tuple[tuple[str, np.ndarray], ...] = ()

    def load(self) -> dict[str, np.ndarray]:
        """Materialise the arrays, by field name.

        On the shared path the returned arrays are private copies and the
        segment mapping is closed before returning, so callers never hold
        the segment open.
        """
        if self.segment is None:
            return {field: array for field, array in self.inline}
        total = sum(
            math.prod(spec.shape) * np.dtype(spec.dtype).itemsize
            for spec in self.specs
        )
        with span("shm.attach", arrays=len(self.specs), bytes=total):
            segment = _attach(self.segment)
            try:
                arrays: dict[str, np.ndarray] = {}
                for spec in self.specs:
                    count = math.prod(spec.shape)
                    view = np.frombuffer(
                        segment.buf,
                        dtype=spec.dtype,
                        count=count,
                        offset=spec.offset,
                    )
                    arrays[spec.field] = view.reshape(spec.shape).copy()
                    del view
                return arrays
            finally:
                segment.close()


class SharedArrayBundle:
    """Owner handle of one published array set.

    ``ref`` is what travels inside shard tasks; :meth:`unlink` (idempotent,
    never raises) releases the segment and must be called exactly once per
    sweep, after the last worker that could attach has finished -- the
    ``cleanup`` hook of :func:`repro.core.resilience.run_shards` is the
    intended place.
    """

    def __init__(
        self, ref: SharedArrayRef, segment: shared_memory.SharedMemory | None
    ) -> None:
        self.ref = ref
        self._segment = segment

    @property
    def shared(self) -> bool:
        """Whether the arrays actually live in shared memory."""
        return self.ref.segment is not None

    def unlink(self) -> None:
        """Close and remove the segment (no-op on the fallback path).

        Idempotent and never raises -- it runs inside ``run_shards``
        cleanup where a second failure would mask the first -- but a
        failed close/unlink is still counted in ``shm.cleanup_errors``
        rather than vanishing (a segment that would not unlink occupies
        ``/dev/shm`` until the janitor of a later run reaps it).
        """
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except Exception:
            metrics.REGISTRY.counter("shm.cleanup_errors").add()
        try:
            segment.unlink()
        except Exception:
            metrics.REGISTRY.counter("shm.cleanup_errors").add()


def share_arrays(
    arrays: Mapping[str, np.ndarray], enabled: bool | None = None
) -> SharedArrayBundle:
    """Publish arrays for worker processes; always succeeds.

    Copies each array into one fresh shared-memory segment and returns the
    owning :class:`SharedArrayBundle`.  If shared memory is disabled (see
    :func:`shm_enabled`) or the segment cannot be created, the bundle
    degrades to inline transport -- callers need no error handling, only the
    unconditional ``bundle.unlink()``.
    """
    items = [
        (field, np.ascontiguousarray(array)) for field, array in arrays.items()
    ]
    if not shm_enabled(enabled):
        return SharedArrayBundle(
            SharedArrayRef(segment=None, specs=(), inline=tuple(items)), None
        )
    reap_stale_segments()
    total = sum(array.nbytes for _, array in items)
    name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
    with span("shm.publish", arrays=len(items), bytes=total) as publish_span:
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(total, 1)
            )
        except (OSError, ValueError):
            publish_span.set(shared=False)
            return SharedArrayBundle(
                SharedArrayRef(segment=None, specs=(), inline=tuple(items)), None
            )
        try:
            specs = _copy_into(segment, items)
        except Exception:
            # Populating the buffer failed mid-copy (e.g. /dev/shm filled
            # under us).  Without an unlink here nothing ever removes the
            # half-written segment: the janitor skips segments whose creator
            # is alive, and the bundle we would have returned carries no
            # segment handle.  Release it and degrade to inline transport.
            metrics.REGISTRY.counter("shm.publish_errors").add()
            try:
                segment.close()
            except Exception:
                metrics.REGISTRY.counter("shm.cleanup_errors").add()
            try:
                segment.unlink()
            except Exception:
                metrics.REGISTRY.counter("shm.cleanup_errors").add()
            publish_span.set(shared=False)
            return SharedArrayBundle(
                SharedArrayRef(segment=None, specs=(), inline=tuple(items)), None
            )
        ref = SharedArrayRef(segment=segment.name, specs=specs)
        return SharedArrayBundle(ref, segment)


def _copy_into(
    segment: shared_memory.SharedMemory,
    items: Sequence[tuple[str, np.ndarray]],
) -> tuple[_ArraySpec, ...]:
    """Copy arrays into the segment buffer; returns their placement specs."""
    specs: list[_ArraySpec] = []
    offset = 0
    for field, array in items:
        segment.buf[offset : offset + array.nbytes] = array.tobytes()
        specs.append(
            _ArraySpec(
                field=field,
                dtype=str(array.dtype),
                shape=tuple(array.shape),
                offset=offset,
            )
        )
        offset += array.nbytes
    return tuple(specs)
