"""Algorithm 1: offline calibration of the carry probability table.

For every training operand pair the algorithm compares the characterized
hardware output (the latched word measured under one operating triad) with
the modified adder evaluated at every candidate chain limit
``C = Cth_max .. 0``, keeps the limit that minimises the chosen distance
metric, and accumulates it into the occurrence counts of
``P(Cmax | Cth_max)``.  Ties are resolved towards the smallest ``C`` (the
paper iterates downward and keeps later candidates on ``dist <= max_dist``),
which biases the model towards pessimism rather than optimism.

Deviation from the paper's pseudo-code: the final normalisation is per
*column* (per observed ``Cth_max`` value) rather than by the total number of
training vectors, because each column of Table I must be a conditional
distribution that sums to one.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.carry_model import (
    CarryProbabilityTable,
    carry_truncated_add,
    theoretical_max_carry_chain,
)
from repro.core.metrics import DistanceMetric, distance_metric


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one Algorithm 1 run.

    Attributes
    ----------
    table:
        The calibrated conditional probability table.
    counts:
        Raw occurrence counts accumulated before normalisation.
    metric_name:
        Name of the distance metric used (``"mse"``, ``"hamming"``,
        ``"weighted_hamming"``).
    n_training_vectors:
        Number of operand pairs used.
    mean_best_distance:
        Mean value of the winning distance over the training set -- a quick
        indicator of how well a pure carry-truncation model can explain the
        characterized hardware at this triad.
    """

    table: CarryProbabilityTable
    counts: np.ndarray
    metric_name: str
    n_training_vectors: int
    mean_best_distance: float


def calibrate_probability_table(
    in1: np.ndarray,
    in2: np.ndarray,
    hardware_outputs: np.ndarray,
    width: int,
    metric: str | DistanceMetric = "mse",
) -> CalibrationResult:
    """Run Algorithm 1 on one triad's characterization data.

    Parameters
    ----------
    in1, in2:
        Training operand arrays.
    hardware_outputs:
        The corresponding faulty outputs of the characterized hardware
        operator (latched words from the VOS simulation), shape matching the
        operands.
    width:
        Operand width in bits (the outputs have ``width + 1`` bits).
    metric:
        Distance metric name or callable used to pick the best chain limit.
    """
    in1_arr = np.asarray(in1, dtype=np.int64).reshape(-1)
    in2_arr = np.asarray(in2, dtype=np.int64).reshape(-1)
    observed = np.asarray(hardware_outputs, dtype=np.int64).reshape(-1)
    if not (in1_arr.shape == in2_arr.shape == observed.shape):
        raise ValueError("in1, in2 and hardware_outputs must have the same shape")
    if in1_arr.size == 0:
        raise ValueError("the training set is empty")

    metric_name = metric if isinstance(metric, str) else getattr(metric, "__name__", "custom")
    metric_fn = distance_metric(metric) if isinstance(metric, str) else metric
    output_width = width + 1

    cth_max = theoretical_max_carry_chain(in1_arr, in2_arr, width)
    best_c = np.zeros_like(cth_max)
    best_distance = np.full(in1_arr.shape, np.inf)

    # Evaluate every candidate chain limit on the whole training set at once;
    # a candidate only competes for vectors whose theoretical chain reaches it.
    for candidate in range(width, -1, -1):
        eligible = cth_max >= candidate
        if not np.any(eligible):
            continue
        candidate_output = carry_truncated_add(in1_arr, in2_arr, width, candidate)
        distances = metric_fn(observed, candidate_output, output_width)
        improves = eligible & (distances <= best_distance)
        best_distance = np.where(improves, distances, best_distance)
        best_c = np.where(improves, candidate, best_c)

    counts = np.zeros((width + 1, width + 1), dtype=float)
    np.add.at(counts, (best_c, cth_max), 1.0)
    table = CarryProbabilityTable.from_counts(width, counts)
    return CalibrationResult(
        table=table,
        counts=counts,
        metric_name=metric_name,
        n_training_vectors=int(in1_arr.size),
        mean_best_distance=float(best_distance.mean()),
    )
