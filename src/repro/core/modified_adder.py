"""The equivalent statistical operator (functional stand-in for VOS hardware).

After calibration, the model of Fig. 6 replaces the hardware adder at
algorithm level: for each operand pair it extracts the theoretical maximal
carry chain, draws a realised chain limit from the conditional probability
table, and returns the carry-truncated sum.  The class below packages that
three-step recipe together with convenience entry points used by the
application layer (element-wise addition of numpy arrays, accumulation,
dot products).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.carry_model import (
    CarryProbabilityTable,
    carry_truncated_add,
    theoretical_max_carry_chain,
)


@dataclasses.dataclass
class ApproximateAdderModel:
    """Statistical model of an adder operated under voltage over-scaling.

    Parameters
    ----------
    width:
        Operand width in bits.
    table:
        Calibrated conditional probability table ``P(Cmax | Cth_max)``.
    seed:
        Seed of the model's private random generator; the generator state
        advances with every call, so repeated additions of the same operands
        may produce different (but statistically consistent) results, exactly
        like the hardware it imitates.
    saturate:
        When True, operands larger than ``2**width - 1`` are clipped; when
        False they raise, which is the safer default for catching scaling
        bugs in applications.
    """

    width: int
    table: CarryProbabilityTable
    seed: int = 2017
    saturate: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.table.width != self.width:
            raise ValueError(
                f"table width {self.table.width} does not match adder width {self.width}"
            )
        self._rng = np.random.default_rng(self.seed)

    # -- basic operator --------------------------------------------------------

    def add(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Approximate addition of two operand arrays.

        Follows the paper's three run-time steps: extract ``Cth_max``, sample
        ``Cmax`` from the table, compute the chain-limited sum.
        """
        a = self._prepare(in1)
        b = self._prepare(in2)
        cth = theoretical_max_carry_chain(a, b, self.width)
        cmax = self.table.sample(cth, self._rng)
        return carry_truncated_add(a, b, self.width, cmax)

    def add_exact(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Exact addition with the same operand validation (for comparisons)."""
        return self._prepare(in1) + self._prepare(in2)

    # -- composite helpers used by the applications ----------------------------

    def accumulate(self, values: np.ndarray) -> int:
        """Sum a sequence with the approximate adder (left fold).

        Intermediate results are reduced modulo ``2**width`` (the accumulator
        register width), mirroring a fixed-point datapath.
        """
        values_arr = np.asarray(values, dtype=np.int64).reshape(-1)
        total = 0
        mask = (1 << self.width) - 1
        for value in values_arr:
            total = int(self.add(np.int64(total & mask), np.int64(int(value) & mask)))
            total &= mask
        return total

    def dot(self, values: np.ndarray, weights: np.ndarray) -> int:
        """Fixed-point dot product with exact multiplies and approximate adds.

        This mirrors the paper's use case: the adder is the VOS-scaled
        operator, everything around it stays exact.
        """
        values_arr = np.asarray(values, dtype=np.int64).reshape(-1)
        weights_arr = np.asarray(weights, dtype=np.int64).reshape(-1)
        if values_arr.shape != weights_arr.shape:
            raise ValueError("values and weights must have the same length")
        products = values_arr * weights_arr
        return self.accumulate(products)

    def reseed(self, seed: int) -> None:
        """Reset the private random generator (for reproducible experiments)."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    # -- internals --------------------------------------------------------------

    def _prepare(self, operand: np.ndarray) -> np.ndarray:
        values = np.asarray(operand, dtype=np.int64)
        limit = (1 << self.width) - 1
        if self.saturate:
            return np.clip(values, 0, limit)
        if np.any(values < 0) or np.any(values > limit):
            raise ValueError(
                f"operands must lie within [0, {limit}] for a {self.width}-bit adder"
            )
        return values
