"""Fault-tolerant shard execution for the sweep orchestrators.

The PR-2 sharding layer (:mod:`repro.core.sweep`) made triad grids scale
across worker processes, but a single worker crash (OOM kill, wedged fork)
raised ``BrokenProcessPool`` and threw the whole batch away.  This module
supplies the missing property -- graceful degradation instead of
all-or-nothing failure -- mirroring the paper's own premise of speculative
circuits that keep producing acceptable results while the hardware
misbehaves.

:func:`run_shards` executes a list of shard tasks on a
``ProcessPoolExecutor`` under an :class:`ExecutionPolicy`:

* a crashed worker (``BrokenProcessPool``) or a shard running past the
  per-shard timeout fails only the *unfinished* shards -- the pool is torn
  down, rebuilt, and exactly those shards are requeued;
* the policy's failure action decides what a requeue looks like: plain
  ``retry``, ``split-and-retry`` (halve an oversized shard so a repeated
  OOM gets a smaller bite), ``serial-fallback`` (run the shard in-process
  immediately), or ``fail`` (raise :class:`ShardExecutionError`);
* a shard that exhausts its retries -- or a pool that keeps dying -- always
  falls back to trusted in-process serial execution, so a sweep completes
  unless the computation itself is impossible;
* results are merged deterministically by (shard index, unit offset), so
  the output is byte-identical to a fault-free serial run regardless of
  which faults fired, how shards were split, or what order workers finished.

Progress is crash-consistent through the ``on_result`` hook: the caller
flushes each completed shard's payloads to the
:class:`~repro.core.store.SweepResultStore` the moment the shard finishes,
parent-side, so a run killed mid-flight resumes warm.  Workers never touch
the store.

Fault injection for tests rides in through the ``chaos`` argument
(:class:`~repro.testing.chaos.ChaosPlan`): rules are applied inside the
worker wrapper only, so the in-process serial fallback -- the path of last
resort -- is never sabotaged.

Every recovery step is accounted in an :class:`ExecutionReport`, surfaced
through the API results and the CLI so silent degradation is visible.
"""

from __future__ import annotations

import dataclasses
import signal
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Mapping, Sequence

from repro.obs import metrics
from repro.obs.trace import span
from repro.testing import chaos as chaos_hooks

#: The supported failure actions of an :class:`ExecutionPolicy`.
FAILURE_ACTIONS = ("retry", "split-and-retry", "serial-fallback", "fail")


class ShardExecutionError(RuntimeError):
    """A sharded run could not be completed under its execution policy.

    Raised when the policy's failure action is ``fail`` and a shard fails,
    or when even the trusted in-process serial fallback produces an invalid
    result.  Carries the :class:`ExecutionReport` accumulated so far in
    :attr:`report`.
    """

    def __init__(self, message: str, report: "ExecutionReport | None" = None) -> None:
        super().__init__(message)
        self.report = report


@dataclasses.dataclass(frozen=True)
class ExecutionPolicy:
    """How a sharded run responds to worker failures.

    Attributes
    ----------
    max_retries:
        Failed attempts a shard may retry in the pool before it falls back
        to in-process serial execution.  Also bounds pool rebuilds: once the
        pool itself has died more than ``max_retries`` times, everything
        still pending goes serial.
    backoff_s:
        Base of the exponential backoff between retry rounds (seconds);
        round *k* of retries sleeps ``backoff_s * 2**(k-1)``, capped at
        ``max_backoff_s``.  ``0`` (the default) retries immediately.
    max_backoff_s:
        Ceiling of one backoff sleep (seconds).  Uncapped exponential
        growth stalls a dying pool for minutes between rounds
        (``backoff_s=1`` reaches 128 s by round 8); the cap bounds every
        round while keeping the early-round spacing.  The seconds actually
        slept are surfaced in :attr:`ExecutionReport.backoff_wait_s`.
    shard_timeout_s:
        Wall-clock budget of one shard attempt, measured from dispatch.  A
        shard running past it is failed (its worker is killed with the
        pool) and handled like any other failure.  ``None`` disables the
        timeout.
    on_failure:
        ``"retry"`` re-runs the failed shard as-is; ``"split-and-retry"``
        additionally halves a shard of more than one unit on each retry;
        ``"serial-fallback"`` runs failed shards in-process immediately;
        ``"fail"`` raises :class:`ShardExecutionError` on the first failure.
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    max_backoff_s: float = 30.0
    shard_timeout_s: float | None = None
    on_failure: str = "retry"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.max_backoff_s <= 0:
            raise ValueError("max_backoff_s must be positive")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive (or None)")
        if self.on_failure not in FAILURE_ACTIONS:
            raise ValueError(
                f"unknown failure action {self.on_failure!r}; "
                f"available: {', '.join(FAILURE_ACTIONS)}"
            )

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation (plain field dict)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ExecutionPolicy":
        """Inverse of :meth:`to_json` (unknown keys are rejected)."""
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(
                f"unknown ExecutionPolicy field(s): {', '.join(unknown)}"
            )
        return cls(**dict(data))


#: The policy used when none is given: quiet retries with serial completion.
DEFAULT_POLICY = ExecutionPolicy()


@metrics.bind_registry_fields
class ExecutionReport(metrics.RegistryView):
    """Accounting of one (or several merged) fault-tolerant runs.

    All counters are cumulative; :meth:`merge` folds another report in, so a
    batch can aggregate the reports of its constituent sweeps.  The fields
    are views over a :class:`~repro.obs.metrics.MetricsRegistry` (namespace
    ``execution``), so the same numbers feed :class:`RunReport`, traces,
    and ``to_json`` -- the keyword-construction and ``report.retries += 1``
    surface of the former dataclass is unchanged.

    Attributes
    ----------
    shards:
        Shard tasks submitted (before any splitting).
    failures:
        Failed shard attempts, of any kind (crash, timeout, corrupt result,
        worker exception).
    timeouts / crashes / corrupt_results:
        Failed attempts by cause.  ``crashes`` counts attempts lost to a
        broken pool -- a single dying worker fails every in-flight shard,
        and each counts once.
    retries / requeues / splits:
        Recovery actions: failures that were retried in the pool, items
        put back on the queue (a split enqueues two), and shards halved.
    serial_fallbacks:
        Shards completed by trusted in-process execution (policy choice or
        retries exhausted).
    pool_rebuilds:
        Times the worker pool was torn down and rebuilt.
    recovered_shards:
        Shards that failed at least once but eventually completed.
    wall_time_lost_s:
        Wall-clock seconds spent in dispatch rounds that ended in failures.
    backoff_wait_s:
        Wall-clock seconds slept between retry rounds, after the
        per-round :attr:`ExecutionPolicy.max_backoff_s` cap was applied.
    """

    _NAMESPACE = "execution"
    _FIELDS = {
        "shards": 0,
        "failures": 0,
        "timeouts": 0,
        "crashes": 0,
        "corrupt_results": 0,
        "retries": 0,
        "requeues": 0,
        "splits": 0,
        "serial_fallbacks": 0,
        "pool_rebuilds": 0,
        "recovered_shards": 0,
        "wall_time_lost_s": 0.0,
        "backoff_wait_s": 0.0,
    }

    @property
    def faulted(self) -> bool:
        """Whether any fault was observed (and recovery work done)."""
        return bool(
            self.failures
            or self.timeouts
            or self.crashes
            or self.corrupt_results
            or self.retries
            or self.serial_fallbacks
            or self.pool_rebuilds
        )

    def merge(self, other: "ExecutionReport") -> None:
        """Fold another report's counters into this one."""
        for field in self._FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def render(self) -> str:
        """One-line human-readable summary."""
        if not self.faulted:
            return f"execution: {self.shards} shard(s), no faults"
        return (
            f"execution: {self.shards} shard(s), "
            f"{self.failures} failed attempt(s) "
            f"({self.crashes} crashed, {self.timeouts} timed out, "
            f"{self.corrupt_results} corrupt), "
            f"{self.retries} retried, {self.splits} split, "
            f"{self.serial_fallbacks} serial fallback(s), "
            f"{self.pool_rebuilds} pool rebuild(s), "
            f"{self.recovered_shards} recovered, "
            f"{self.wall_time_lost_s:.1f}s lost, "
            f"{self.backoff_wait_s:.1f}s backoff"
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation (plain field dict)."""
        data: dict[str, Any] = self._values()
        data["faulted"] = self.faulted
        return data


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Item:
    """One unit of queued work: a (possibly split) shard task.

    ``index`` is the original task's position; ``offset`` the unit offset of
    this piece within that task, so split pieces reassemble by simple
    offset-ordered concatenation.  ``attempt`` is the number of failed
    attempts already spent on this piece.
    """

    index: int
    offset: int
    task: Any
    attempt: int = 0


def _invoke(worker: Callable[[Any], Any], task: Any, rule: Any) -> Any:
    """Pool-side wrapper around the shard body.

    This function is only ever executed inside worker processes -- the
    serial fallback calls ``worker`` directly -- which is what confines
    chaos injection to workers: a scripted crash can break the pool, never
    the orchestrating process.
    """
    if rule is not None:
        chaos_hooks.trigger(rule)
    result = worker(task)
    if rule is not None and rule.action == "corrupt":
        return chaos_hooks.corrupt_result(result)
    return result


def _init_worker() -> None:
    """Worker-side pool initialiser: leave Ctrl-C to the orchestrator.

    A terminal interrupt is delivered to the whole foreground process
    group, so every pool worker would raise ``KeyboardInterrupt`` wherever
    it happens to be -- an idle worker dies inside the queue machinery and
    spews a traceback that races the parent's own clean teardown.  Workers
    ignore the signal instead; the parent turns the interrupt into
    :func:`_destroy_pool` (which terminates them) and a clean exit.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _destroy_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a broken or hung pool down without waiting on its workers.

    ``shutdown`` alone never kills a wedged worker -- a shard sleeping past
    its timeout would keep its process alive indefinitely -- so the workers
    are terminated explicitly.  Reaching into ``_processes`` is unavoidable:
    the executor API offers no kill switch.
    """
    processes = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes.values():
        try:
            process.terminate()
        except Exception:
            # Already-dead processes are the common cause; count the rest so
            # a pattern of unkillable workers shows up in the metrics dump.
            metrics.REGISTRY.counter("resilience.cleanup_errors").add()


def run_shards(
    tasks: Sequence[Any],
    worker: Callable[[Any], list[Any]],
    *,
    policy: ExecutionPolicy | None = None,
    max_workers: int | None = None,
    units: Callable[[Any], int] | None = None,
    split: Callable[[Any], tuple[Any, Any]] | None = None,
    validate: Callable[[Any, Any], bool] | None = None,
    on_result: Callable[[Any, list[Any]], None] | None = None,
    chaos: "chaos_hooks.ChaosPlan | None" = None,
    report: ExecutionReport | None = None,
    cleanup: Callable[[], None] | None = None,
) -> list[list[Any]]:
    """Execute shard tasks fault-tolerantly; return per-task unit lists.

    Parameters
    ----------
    tasks:
        Picklable shard tasks.  ``worker(task)`` must return a list of unit
        results whose concatenation across split pieces reproduces the
        original task's result (the sweep shards satisfy this: one payload
        per triad / fault site / sample range, in task order).
    worker:
        Module-level (picklable) shard body.
    policy:
        The :class:`ExecutionPolicy`; defaults to :data:`DEFAULT_POLICY`.
    max_workers:
        Pool size; defaults to ``len(tasks)``.
    units:
        Number of units in a task.  Required (together with ``split``) for
        ``split-and-retry`` to actually split; also enables the final
        completeness check.
    split:
        Halve a task of more than one unit into two subtasks covering the
        same units in order.
    validate:
        Parent-side result check ``validate(task, result) -> bool``; a
        failing result is treated like any other shard failure (this is
        what catches corrupted payloads).
    on_result:
        Called as ``on_result(task, result)`` the moment a (sub)task
        completes -- the crash-consistency hook where callers flush
        payloads to the result store.  Runs parent-side only.
    chaos:
        Optional deterministic fault-injection plan, applied inside worker
        processes only (keyed on original shard index and attempt).  When
        ``None``, the plan is read from the ``REPRO_CHAOS`` environment
        variable (:meth:`~repro.testing.chaos.ChaosPlan.from_env`), so the
        chaos CI jobs can sabotage any CLI sweep without plumbing.
    report:
        Optional report to accumulate into (a fresh one is used otherwise);
        counters are added, so one report can span several runs.
    cleanup:
        Called exactly once when the run is over -- success, failure, or
        interrupt -- after the pool is gone and the serial fallback has
        finished, i.e. after the last point where a worker or this process
        could still be using run-scoped resources.  The sweep orchestrators
        release their shared-memory stimulus segment here
        (:meth:`~repro.core.shm.SharedArrayBundle.unlink`).  Exceptions it
        raises are swallowed: cleanup must never mask the run's outcome.

    Returns
    -------
    One list of unit results per input task, in input order -- byte-identical
    to a fault-free serial run.

    Raises
    ------
    ShardExecutionError
        Under the ``fail`` action, on a serial-fallback validation failure,
        or if the merged results do not cover every unit.
    KeyboardInterrupt
        Re-raised after cancelling pending work and tearing the pool down;
        shards completed before the interrupt have already been delivered
        through ``on_result``.
    """
    try:
        with span(
            "dispatch",
            shards=len(tasks),
            workers=max_workers if max_workers is not None else len(tasks),
        ):
            return _run_shards(
                tasks,
                worker,
                policy=policy,
                max_workers=max_workers,
                units=units,
                split=split,
                validate=validate,
                on_result=on_result,
                chaos=chaos,
                report=report,
            )
    finally:
        if cleanup is not None:
            try:
                cleanup()
            except Exception:
                # The run's results are already merged; a cleanup failure
                # (e.g. shm unlink) must not destroy them, but it leaks a
                # resource, so it is counted rather than silently dropped.
                metrics.REGISTRY.counter("resilience.cleanup_errors").add()


def _run_shards(
    tasks: Sequence[Any],
    worker: Callable[[Any], list[Any]],
    *,
    policy: ExecutionPolicy | None,
    max_workers: int | None,
    units: Callable[[Any], int] | None,
    split: Callable[[Any], tuple[Any, Any]] | None,
    validate: Callable[[Any, Any], bool] | None,
    on_result: Callable[[Any, list[Any]], None] | None,
    chaos: "chaos_hooks.ChaosPlan | None",
    report: ExecutionReport | None,
) -> list[list[Any]]:
    """Engine body of :func:`run_shards`; cleanup is the wrapper's job."""
    tasks = list(tasks)
    if policy is None:
        policy = DEFAULT_POLICY
    if report is None:
        report = ExecutionReport()
    if chaos is None:
        chaos = chaos_hooks.ChaosPlan.from_env() or None
    if not tasks:
        return []
    if max_workers is None:
        max_workers = len(tasks)
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    report.shards += len(tasks)

    parts: dict[int, dict[int, list[Any]]] = {i: {} for i in range(len(tasks))}
    failed_once: set[tuple[int, int]] = set()

    def accept(item: _Item, result: Any) -> None:
        result = list(result)
        parts[item.index][item.offset] = result
        if on_result is not None:
            on_result(item.task, result)
        if (item.index, item.offset) in failed_once:
            report.recovered_shards += 1

    pending: "deque[_Item]" = deque(
        _Item(index=i, offset=0, task=task) for i, task in enumerate(tasks)
    )
    serial: list[_Item] = []

    def handle_failure(item: _Item) -> None:
        failed_once.add((item.index, item.offset))
        attempts_used = item.attempt + 1
        if policy.on_failure == "fail":
            raise ShardExecutionError(
                f"shard {item.index} failed (attempt {attempts_used}) "
                "and the policy is 'fail'",
                report,
            )
        if policy.on_failure == "serial-fallback" or attempts_used > policy.max_retries:
            report.serial_fallbacks += 1
            serial.append(item)
            return
        report.retries += 1
        if (
            policy.on_failure == "split-and-retry"
            and split is not None
            and units is not None
            and units(item.task) > 1
        ):
            first, second = split(item.task)
            report.splits += 1
            report.requeues += 2
            pending.append(
                _Item(item.index, item.offset, first, item.attempt + 1)
            )
            pending.append(
                _Item(
                    item.index,
                    item.offset + units(first),
                    second,
                    item.attempt + 1,
                )
            )
        else:
            report.requeues += 1
            pending.append(
                _Item(item.index, item.offset, item.task, item.attempt + 1)
            )

    pool: ProcessPoolExecutor | None = None
    pool_failures = 0
    try:
        while pending:
            if pool_failures > policy.max_retries:
                # The pool itself keeps dying: trust only this process.
                while pending:
                    report.serial_fallbacks += 1
                    serial.append(pending.popleft())
                break
            batch = list(pending)
            pending.clear()
            max_attempt = max(item.attempt for item in batch)
            if policy.backoff_s > 0 and max_attempt > 0:
                delay = min(
                    policy.backoff_s * (2 ** (max_attempt - 1)),
                    policy.max_backoff_s,
                )
                report.backoff_wait_s += delay
                time.sleep(delay)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=max_workers, initializer=_init_worker
                )
            round_start = time.monotonic()
            broken = False
            failed_items: list[_Item] = []
            in_flight: dict[Future, _Item] = {}
            for item in batch:
                rule = (
                    chaos.rule_for(item.index, item.attempt)
                    if chaos is not None
                    else None
                )
                try:
                    future = pool.submit(_invoke, worker, item.task, rule)
                except BrokenExecutor:
                    broken = True
                    report.failures += 1
                    report.crashes += 1
                    failed_items.append(item)
                    continue
                in_flight[future] = item
            deadline = (
                None
                if policy.shard_timeout_s is None
                else round_start + policy.shard_timeout_s
            )
            while in_flight:
                timeout = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                done, not_done = wait(
                    set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Per-shard timeout expired: every unfinished shard has
                    # failed, and its (possibly wedged) worker must die with
                    # the pool.
                    broken = True
                    for future in not_done:
                        item = in_flight.pop(future)
                        future.cancel()
                        report.failures += 1
                        report.timeouts += 1
                        failed_items.append(item)
                    break
                for future in done:
                    item = in_flight.pop(future)
                    try:
                        result = future.result()
                    except (BrokenExecutor, CancelledError):
                        # One dying worker breaks the pool and fails every
                        # in-flight future; each shard counts one attempt.
                        broken = True
                        report.failures += 1
                        report.crashes += 1
                        failed_items.append(item)
                    except Exception:
                        report.failures += 1
                        failed_items.append(item)
                    else:
                        if validate is not None and not validate(
                            item.task, result
                        ):
                            report.failures += 1
                            report.corrupt_results += 1
                            failed_items.append(item)
                        else:
                            accept(item, result)
            if failed_items:
                report.wall_time_lost_s += time.monotonic() - round_start
            if broken:
                report.pool_rebuilds += 1
                pool_failures += 1
                _destroy_pool(pool)
                pool = None
            for item in failed_items:
                handle_failure(item)
    except KeyboardInterrupt:
        # Cancel what never ran, kill the pool, and let the caller exit
        # cleanly; completed shards were already flushed via on_result.
        if pool is not None:
            _destroy_pool(pool)
            pool = None
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # Trusted in-process completion of everything the pool could not finish.
    # Chaos never applies here (see _invoke), so a scripted fault can delay
    # a sweep but not fail it.
    for item in serial:
        result = worker(item.task)
        if validate is not None and not validate(item.task, result):
            raise ShardExecutionError(
                f"shard {item.index} produced an invalid result even in "
                "serial execution",
                report,
            )
        accept(item, result)

    merged: list[list[Any]] = []
    for index, task in enumerate(tasks):
        combined: list[Any] = []
        for offset in sorted(parts[index]):
            combined.extend(parts[index][offset])
        if units is not None and len(combined) != units(task):
            raise ShardExecutionError(
                f"shard {index} merged {len(combined)} unit(s), "
                f"expected {units(task)}",
                report,
            )
        merged.append(combined)
    return merged
