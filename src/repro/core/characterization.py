"""Characterization flow (the paper's Fig. 4).

The flow drives one adder circuit through a grid of operating triads, runs
the VOS timing simulation for each triad with the same input pattern set, and
condenses the raw measurements into the statistics the paper reports: BER,
MSE, per-bit error probability, energy per operation, and energy efficiency
relative to the nominal (ideal) triad.  The per-triad raw outputs are kept so
the calibration step (Algorithm 1) and the model-accuracy experiments can be
run on exactly the same data.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.circuits.adders import AdderCircuit, build_adder
from repro.core import sweep as sweep_module
from repro.core.resilience import ExecutionPolicy, ExecutionReport
from repro.core.store import SweepResultStore
from repro.core.triad import OperatingTriad, TriadGrid, matched_triad_grid
from repro.simulation.patterns import PatternConfig, generate_patterns
from repro.simulation.testbench import AdderTestbench, TriadMeasurement
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary
from repro.testing.chaos import ChaosPlan


@dataclasses.dataclass(frozen=True)
class TriadCharacterization:
    """Summary statistics of one adder under one operating triad.

    Attributes
    ----------
    triad:
        The operating triad.
    ber:
        Bit error rate (faulty output bits over total output bits).
    mse:
        Mean squared numerical error of the latched outputs.
    bitwise_error:
        Per-output-bit error probability (LSB first) -- the Fig. 5 series.
    energy_per_operation:
        Mean total energy per operation, joules.
    dynamic_energy_per_operation / static_energy_per_operation:
        Energy components, joules.
    faulty_vector_fraction:
        Fraction of cycles whose whole output word was wrong.
    """

    triad: OperatingTriad
    ber: float
    mse: float
    bitwise_error: np.ndarray
    energy_per_operation: float
    dynamic_energy_per_operation: float
    static_energy_per_operation: float
    faulty_vector_fraction: float

    @property
    def ber_percent(self) -> float:
        """BER expressed in percent (the paper's unit)."""
        return self.ber * 100.0

    @property
    def energy_per_operation_pj(self) -> float:
        """Energy per operation in picojoules (the paper's unit)."""
        return self.energy_per_operation * 1e12

    def label(self) -> str:
        """The paper's triad label for plot axes."""
        return self.triad.label()


@dataclasses.dataclass
class AdderCharacterization:
    """Full characterization of one adder over a triad grid.

    Attributes
    ----------
    adder_name:
        Name of the characterized circuit (e.g. ``"rca8"``).
    width:
        Operand width in bits.
    results:
        One :class:`TriadCharacterization` per triad, in grid order.
    reference_triad:
        The nominal (ideal) triad used as the energy-efficiency baseline.
    measurements:
        Raw per-triad measurements (kept for calibration); indexed like
        ``results``.  May be empty if the characterization was loaded from
        disk.
    pattern_kind / n_vectors / seed:
        Stimulus configuration used for all triads.
    """

    adder_name: str
    width: int
    results: list[TriadCharacterization]
    reference_triad: OperatingTriad
    measurements: list[TriadMeasurement] = dataclasses.field(default_factory=list)
    pattern_kind: str = "uniform"
    n_vectors: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self._reindex()

    def _reindex(self) -> None:
        """(Re)build the triad-keyed lookup tables over the stored lists."""
        self._results_by_triad: dict[OperatingTriad, TriadCharacterization] = {
            entry.triad: entry for entry in self.results
        }
        self._measurements_by_triad: dict[OperatingTriad, TriadMeasurement] = {
            OperatingTriad(
                tclk=measurement.tclk, vdd=measurement.vdd, vbb=measurement.vbb
            ): measurement
            for measurement in self.measurements
        }
        # Snapshot of the indexed list contents (entries are frozen, so
        # identity captures them fully); lets the lookups detect any
        # post-construction mutation of the lists and rebuild.
        self._index_snapshot = (
            tuple(map(id, self.results)),
            tuple(map(id, self.measurements)),
        )

    def _refresh_index(self) -> None:
        if self._index_snapshot != (
            tuple(map(id, self.results)),
            tuple(map(id, self.measurements)),
        ):
            self._reindex()

    @property
    def reference_energy(self) -> float:
        """Energy per operation of the nominal triad, joules."""
        reference = self.find(self.reference_triad)
        return reference.energy_per_operation

    def find(self, triad: OperatingTriad) -> TriadCharacterization:
        """Look up the characterization entry of a specific triad (keyed dict)."""
        self._refresh_index()
        entry = self._results_by_triad.get(triad)
        if entry is None:
            raise KeyError(f"triad {triad!r} was not characterized")
        return entry

    def energy_efficiency_of(self, entry: TriadCharacterization) -> float:
        """Energy saving of a triad relative to the nominal triad (0..1)."""
        reference = self.reference_energy
        if reference <= 0:
            raise ValueError("reference energy must be positive")
        return 1.0 - entry.energy_per_operation / reference

    def sorted_by_energy(self) -> list[TriadCharacterization]:
        """Entries sorted by decreasing energy per operation (Fig. 8 x-axis)."""
        return sorted(self.results, key=lambda entry: -entry.energy_per_operation)

    def within_ber(self, max_ber: float) -> list[TriadCharacterization]:
        """Entries whose BER does not exceed ``max_ber`` (fraction, not %)."""
        if max_ber < 0:
            raise ValueError("max_ber must be non-negative")
        return [entry for entry in self.results if entry.ber <= max_ber]

    def measurement_for(self, triad: OperatingTriad) -> TriadMeasurement:
        """Raw measurement of a triad (required by Algorithm 1; keyed dict)."""
        self._refresh_index()
        measurement = self._measurements_by_triad.get(triad)
        if measurement is None:
            raise KeyError(
                f"no raw measurement stored for triad {triad!r}; "
                "re-run the characterization with keep_measurements=True"
            )
        return measurement


class CharacterizationFlow:
    """Drive the Fig. 4 flow for one adder circuit.

    Parameters
    ----------
    adder:
        Circuit to characterize, or a name accepted by
        :func:`repro.circuits.adders.build_adder` combined with ``width``.
    library:
        Standard-cell library used by the simulator.
    sta_margin:
        Clock-path pessimism factor applied to the measured critical path
        when deriving the default triad grid.  The paper points out that EDA
        static timing analysis adds such a guard band, which is why the
        hardware still works error-free well below the nominal supply; 1.5
        reproduces that behaviour on this substrate.
    """

    def __init__(
        self,
        adder: AdderCircuit,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
        sta_margin: float = 1.5,
    ) -> None:
        if sta_margin < 1.0:
            raise ValueError("sta_margin must be >= 1.0")
        self._adder = adder
        self._library = library
        self._testbench = AdderTestbench(adder, library=library)
        self._sta_margin = sta_margin

    @classmethod
    def for_benchmark(
        cls,
        architecture: str,
        width: int,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
        sta_margin: float = 1.5,
    ) -> "CharacterizationFlow":
        """Build the flow for an adder architecture/width pair."""
        return cls(build_adder(architecture, width), library=library, sta_margin=sta_margin)

    @property
    def adder(self) -> AdderCircuit:
        """The circuit under characterization."""
        return self._adder

    @property
    def testbench(self) -> AdderTestbench:
        """The underlying testbench (exposed for custom experiments)."""
        return self._testbench

    def guard_banded_critical_path(self) -> float:
        """The adder's critical path with the STA pessimism margin, seconds.

        This is the clock-period base every derived triad grid is scaled
        from -- both :meth:`default_triad_grid` and the dense clock-scale
        ranges of the exploration subsystem (:mod:`repro.explore`).
        """
        return self._testbench.nominal_critical_path() * self._sta_margin

    def nominal_clock_period(self) -> float:
        """The matched equivalent of the paper's nominal clock, in seconds.

        The largest of the aggressive periods of :meth:`default_triad_grid`
        (the relaxed reference clock -- the overall maximum -- is excluded).
        This is the single definition of the rule; the Fig. 5 supply sweep
        and the Monte Carlo yield grids both scale from it.
        """
        clocks = sorted({triad.tclk for triad in self.default_triad_grid()})
        return clocks[-2] if len(clocks) > 1 else clocks[-1]

    def default_triad_grid(self) -> TriadGrid:
        """Table III triad grid rescaled to this adder's own critical path.

        For the paper's four benchmarks the clock periods keep the paper's
        over-/under-clocking ratios (see
        :func:`repro.core.triad.matched_triad_grid`); for any other adder the
        grid is derived from the synthesised critical path directly.
        """
        name = self._adder.name
        critical_path = self.guard_banded_critical_path()
        try:
            return matched_triad_grid(name, critical_path)
        except ValueError:
            critical_ns = critical_path * 1e9
            periods = (
                round(critical_ns * 1.8, 3),
                round(critical_ns, 3),
                round(critical_ns * 0.7, 3),
                round(critical_ns * 0.5, 3),
            )
            return TriadGrid.from_product(periods)

    def run(
        self,
        triads: Iterable[OperatingTriad] | TriadGrid | None = None,
        pattern: PatternConfig | None = None,
        operands: tuple[np.ndarray, np.ndarray] | None = None,
        keep_measurements: bool = True,
        use_reference: bool = False,
        jobs: int = 1,
        store: SweepResultStore | None = None,
        policy: ExecutionPolicy | None = None,
        chaos: ChaosPlan | None = None,
        report: ExecutionReport | None = None,
        shm: bool | None = None,
    ) -> AdderCharacterization:
        """Characterize the adder over a triad grid.

        The sweep runs on the orchestrator of :mod:`repro.core.sweep`: the
        grid is sharded along ``(vdd, vbb)`` groups over ``jobs`` worker
        processes, per-triad summaries are looked up in (and persisted to)
        the optional result ``store``, and each worker reuses everything
        that does not depend on the full triad -- golden settled bits per
        pattern set, arrival times per ``(vdd, vbb)`` pair (see
        :meth:`repro.simulation.testbench.AdderTestbench.run_sweep`).
        Results are bit-identical for every combination of ``jobs`` and
        cache state.

        Parameters
        ----------
        triads:
            Triads to sweep; defaults to :meth:`default_triad_grid`.
        pattern:
            Stimulus configuration; defaults to 2 048 uniform random vectors
            (the paper uses 20 K -- pass a larger config for full fidelity).
        operands:
            Explicit operand arrays, overriding ``pattern``.
        keep_measurements:
            Whether to retain raw per-triad outputs (needed for Algorithm 1).
        use_reference:
            Run the legacy per-gate simulation loop without sweep-level
            reuse (engine-parity validation and benchmarks only); forces
            serial, uncached execution.
        jobs:
            Worker processes for the sweep (``1`` = in-process).
        store:
            Optional :class:`~repro.core.store.SweepResultStore`; completed
            triads are fetched from / persisted to it.
        policy:
            Optional :class:`~repro.core.resilience.ExecutionPolicy`
            governing retries / timeouts / failure action of the sharded
            sweep.
        chaos:
            Optional :class:`~repro.testing.chaos.ChaosPlan` for
            deterministic fault injection (tests and chaos CI only).
        report:
            Optional :class:`~repro.core.resilience.ExecutionReport` the
            sweep's recovery accounting is accumulated into.
        shm:
            Whether sharded sweeps pass the stimulus through shared memory
            (see :mod:`repro.core.shm`).  ``None`` (the default) follows
            the ``REPRO_SHM`` environment variable; results are
            byte-identical either way.
        """
        grid = self._resolve_grid(triads)
        if operands is not None:
            in1, in2 = (np.asarray(operands[0]), np.asarray(operands[1]))
            pattern_kind = "explicit"
            seed = 0
            stimulus = sweep_module.operand_stimulus(in1, in2)
        else:
            config = pattern or PatternConfig(
                n_vectors=2048, width=self._adder.width, kind="uniform"
            )
            if config.width != self._adder.width:
                raise ValueError(
                    f"pattern width {config.width} does not match adder width "
                    f"{self._adder.width}"
                )
            in1, in2 = generate_patterns(config)
            pattern_kind = config.kind
            seed = config.seed
            stimulus = sweep_module.pattern_stimulus(config)

        if use_reference:
            payloads = [
                sweep_module.measurement_to_payload(
                    measurement, self._adder.output_width, keep_measurements
                )
                for measurement in self._testbench.run_sweep(
                    in1, in2, grid, use_reference=True
                )
            ]
        else:
            payloads = sweep_module.run_characterization_sweep(
                self._adder,
                grid,
                in1,
                in2,
                stimulus,
                library=self._library,
                jobs=jobs,
                store=store,
                keep_latched=keep_measurements,
                testbench=self._testbench,
                policy=policy,
                chaos=chaos,
                report=report,
                shm=shm,
            )

        results = [entry_from_payload(payload) for payload in payloads]
        measurements: list[TriadMeasurement] = []
        if keep_measurements:
            # The golden words are triad-independent: compute them once for
            # the whole sweep, not per payload.
            in1_arr = np.asarray(in1, dtype=np.int64)
            in2_arr = np.asarray(in2, dtype=np.int64)
            exact = self._adder.exact_sum(in1_arr, in2_arr)
            exact_bits = _exact_bit_matrix(exact, self._adder.output_width)
            measurements = [
                sweep_module.payload_to_measurement(
                    payload,
                    self._adder,
                    in1_arr,
                    in2_arr,
                    exact=exact,
                    exact_bits=exact_bits,
                )
                for payload in payloads
            ]

        return AdderCharacterization(
            adder_name=self._adder.name,
            width=self._adder.width,
            results=results,
            reference_triad=grid.nominal(),
            measurements=measurements,
            pattern_kind=pattern_kind,
            n_vectors=int(np.asarray(in1).size),
            seed=seed,
        )

    def _resolve_grid(
        self, triads: Iterable[OperatingTriad] | TriadGrid | None
    ) -> TriadGrid:
        if triads is None:
            return self.default_triad_grid()
        if isinstance(triads, TriadGrid):
            return triads
        return TriadGrid(list(triads))


def _exact_bit_matrix(values: np.ndarray, width: int) -> np.ndarray:
    from repro.circuits.signals import int_to_bits

    return int_to_bits(values, width)


def entry_from_payload(payload: Mapping[str, Any]) -> TriadCharacterization:
    """Rebuild one :class:`TriadCharacterization` from a sweep payload dict.

    Payloads (see :mod:`repro.core.sweep`) are the exchange format between
    sweep workers, the result store and the characterization flow; every
    field round-trips exactly, so entries are identical whether a triad was
    computed here, in a worker process, or fetched from disk.
    """
    triad_data = payload["triad"]
    triad = OperatingTriad(
        tclk=float(triad_data["tclk"]),
        vdd=float(triad_data["vdd"]),
        vbb=float(triad_data["vbb"]),
    )
    return TriadCharacterization(
        triad=triad,
        ber=float(payload["ber"]),
        mse=float(payload["mse"]),
        bitwise_error=np.asarray(payload["bitwise_error"], dtype=float),
        energy_per_operation=float(payload["energy_per_operation"]),
        dynamic_energy_per_operation=float(payload["dynamic_energy_per_operation"]),
        static_energy_per_operation=float(payload["static_energy_per_operation"]),
        faulty_vector_fraction=float(payload["faulty_vector_fraction"]),
    )


def characterize_benchmarks(
    benchmarks: Sequence[tuple[str, int]] = (("rca", 8), ("bka", 8), ("rca", 16), ("bka", 16)),
    pattern_vectors: int = 2048,
    pattern_kind: str = "uniform",
    seed: int = 2017,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
    jobs: int = 1,
    store: SweepResultStore | None = None,
    keep_measurements: bool = True,
) -> dict[str, AdderCharacterization]:
    """Characterize the paper's four benchmark adders in one call.

    Returns a mapping from benchmark name (``"rca8"`` ...) to its
    characterization; used by the figure/table generators and the examples.

    ``jobs`` shards every adder's triad grid over worker processes and
    ``store`` makes repeated invocations warm-cache hits (bit-identical to a
    cold serial run in both cases).
    """
    characterizations: dict[str, AdderCharacterization] = {}
    for architecture, width in benchmarks:
        flow = CharacterizationFlow.for_benchmark(architecture, width, library=library)
        config = PatternConfig(
            n_vectors=pattern_vectors, width=width, seed=seed, kind=pattern_kind
        )
        characterization = flow.run(
            pattern=config,
            jobs=jobs,
            store=store,
            keep_measurements=keep_measurements,
        )
        characterizations[characterization.adder_name] = characterization
    return characterizations
