"""Sharded, cache-backed sweep orchestration.

The paper's core experiment (the Fig. 4 flow feeding Fig. 5/8 and Tables
III-IV) is a grid sweep of operating triads per operator.  PR 1 made one
triad cheap; this module makes the *grid* scale:

* **Sharding.**  A triad grid is split into shards along ``(vdd, vbb)``
  groups -- the axis the simulator's sweep-level reuse is keyed on -- so
  each worker pays the per-operating-point arrival computation exactly once
  for its shard.  Shard assignment is deterministic (greedy balance over
  sorted groups) and the merge is by grid order, so results are bit-identical
  to a serial sweep regardless of worker count or completion order.
* **Worker processes.**  Shards execute on a ``ProcessPoolExecutor``
  (``jobs`` workers).  Workers rebuild the circuit from its generator name;
  the parent verifies the rebuilt netlist fingerprint matches before
  dispatching, and falls back to in-process execution for circuits the
  registry cannot reproduce.  The operand streams travel through one
  shared-memory segment (:mod:`repro.core.shm`) rather than being pickled
  into every shard, with a transparent inline fallback (``REPRO_SHM=0``).
* **Result store.**  Each triad's summary is a pure function of (circuit,
  stimulus, triad, library, engine version); completed entries are persisted
  in a content-addressed :class:`~repro.core.store.SweepResultStore`, so
  repeated sweeps -- across CLI runs, benchmark sessions and CI jobs -- skip
  the timing simulation entirely.

Everything travels as JSON-serialisable *payload* dicts (exact float / int64
round-trips), whether a result comes from this process, a worker, or the
on-disk store; the conversion back to :class:`TriadCharacterization` /
:class:`TriadMeasurement` is therefore identical on every path.

The same machinery shards the structural fault campaigns of
:mod:`repro.simulation.fault_injection` (fault sites instead of triads, see
:func:`run_fault_sweep`), and multiplier grids run through the identical
entry points because :class:`MultiplierTestbench` shares the testbench
interface.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Mapping, Sequence

import numpy as np

from repro.circuits.adders import (
    AdderCircuit,
    SpeculativeAdderCircuit,
    build_adder,
    parse_adder_name,
    speculative_adder,
)
from repro.circuits.multipliers import MultiplierCircuit, array_multiplier
from repro.circuits.signals import int_to_bits
from repro.core.metrics import mean_squared_error
from repro.core.resilience import ExecutionPolicy, ExecutionReport, run_shards
from repro.core.shm import SharedArrayRef, share_arrays
from repro.core.store import (
    SweepResultStore,
    decode_int64_array,
    library_fingerprint,
    netlist_fingerprint,
    operand_fingerprint,
    pack_int64_array,
)
from repro.core.triad import OperatingTriad, TriadGrid
from repro.obs import metrics
from repro.obs.trace import TraceContext, current_context, span, worker_scope
from repro.simulation.engine import ENGINE_VERSION
from repro.simulation.fault_injection import (
    FaultSimulationResult,
    StuckAtFault,
    StuckAtFaultSimulator,
    enumerate_stuck_at_faults,
)
from repro.simulation.multiplier_testbench import MultiplierTestbench
from repro.simulation.patterns import PatternConfig
from repro.simulation.testbench import AdderTestbench, TriadMeasurement
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary
from repro.testing.chaos import ChaosPlan

#: Version of the payload dict layout (part of the stored entries).
PAYLOAD_VERSION = 1

#: Fault sites simulated between store flushes on the in-process path of
#: :func:`run_fault_sweep` -- small enough that an interrupted campaign
#: loses little work, large enough that flushing stays off the profile.
SERIAL_FAULT_FLUSH_BLOCK = 64


# ---------------------------------------------------------------------------
# Simulation-count instrumentation
# ---------------------------------------------------------------------------

#: Work units actually simulated by this process's orchestrators (triads for
#: characterization sweeps, fault sites for fault campaigns, (sample range x
#: triad) entries for Monte Carlo runs).  Cache hits do not count.  The
#: counter is recorded parent-side (before shards are dispatched), so it is
#: accurate whether the units execute in-process or in worker processes.
#: Lives in the process-global metrics registry (:data:`repro.obs.metrics
#: .REGISTRY`), where the batch dedup counters also land.
_SIMULATED_UNITS = metrics.REGISTRY.counter("sweep.simulated_units")


def simulated_unit_count() -> int:
    """Total work units simulated so far (monotonic; cache hits excluded).

    Snapshot before and after an operation to measure how much real
    simulation it performed -- the batch planner's dedup accounting and the
    zero-duplicate-simulation tests are built on this.
    """
    return _SIMULATED_UNITS.value


def record_simulated_units(count: int) -> None:
    """Record ``count`` work units as actually simulated."""
    if count < 0:
        raise ValueError("count must be non-negative")
    _SIMULATED_UNITS.add(int(count))


# ---------------------------------------------------------------------------
# Circuit specs (what a worker process needs to rebuild the circuit)
# ---------------------------------------------------------------------------

_MULTIPLIER_NAME = re.compile(r"^mul(\d+)x(\d+)$")


@dataclasses.dataclass(frozen=True)
class CircuitSpec:
    """Generator coordinates of a circuit, picklable for worker processes.

    Attributes
    ----------
    kind:
        ``"adder"`` or ``"multiplier"``.
    architecture:
        Adder architecture name (``"rca"`` ...); ``"array"`` for multipliers.
    width:
        Operand width (``width_a`` for multipliers).
    width_b:
        Second operand width of a multiplier; ``None`` for adders.
    window:
        Carry look-back window of a speculative adder; ``None`` otherwise.
    """

    kind: str
    architecture: str
    width: int
    width_b: int | None = None
    window: int | None = None

    @classmethod
    def from_circuit(cls, circuit: Any) -> "CircuitSpec | None":
        """Derive the spec of a generator-built circuit, or ``None``.

        Returns ``None`` when the circuit's name does not map back onto a
        registry generator -- such circuits still sweep (in-process) and
        still cache (keyed by netlist fingerprint), they just cannot be
        shipped to worker processes by name.
        """
        if isinstance(circuit, MultiplierCircuit):
            match = _MULTIPLIER_NAME.match(circuit.name)
            if match is None:
                return None
            return cls(
                kind="multiplier",
                architecture="array",
                width=int(match.group(1)),
                width_b=int(match.group(2)),
            )
        if isinstance(circuit, SpeculativeAdderCircuit):
            return cls(
                kind="adder",
                architecture=circuit.architecture,
                width=circuit.width,
                window=circuit.window,
            )
        if isinstance(circuit, AdderCircuit):
            try:
                architecture, width = parse_adder_name(circuit.name)
            except ValueError:
                return None
            return cls(kind="adder", architecture=architecture, width=width)
        return None

    def build(self) -> Any:
        """Rebuild the circuit from its generator."""
        if self.kind == "adder":
            if self.window is not None:
                return speculative_adder(self.width, self.window)
            return build_adder(self.architecture, self.width)
        if self.kind == "multiplier":
            return array_multiplier(self.width, self.width_b)
        raise ValueError(f"unknown circuit kind {self.kind!r}")


def _make_testbench(circuit: Any, library: StandardCellLibrary) -> Any:
    if isinstance(circuit, MultiplierCircuit):
        return MultiplierTestbench(circuit, library=library)
    return AdderTestbench(circuit, library=library)


def _exact_words(circuit: Any, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
    if isinstance(circuit, MultiplierCircuit):
        return circuit.exact_product(in1, in2)
    return circuit.exact_sum(in1, in2)


# ---------------------------------------------------------------------------
# Stimulus descriptors (cache-key components + operand resolution)
# ---------------------------------------------------------------------------


def pattern_stimulus(config: PatternConfig) -> dict[str, Any]:
    """Cache-key components of a generated pattern stimulus."""
    return {
        "type": "pattern",
        "kind": config.kind,
        "n_vectors": config.n_vectors,
        "width": config.width,
        "seed": config.seed,
    }


def operand_stimulus(in1: np.ndarray, in2: np.ndarray) -> dict[str, Any]:
    """Cache-key components of an explicit operand-pair stimulus."""
    return {
        "type": "operands",
        "sha256": operand_fingerprint(in1, in2),
        "n_vectors": int(np.asarray(in1).size),
    }


# ---------------------------------------------------------------------------
# Payloads (the JSON-serialisable unit of result exchange)
# ---------------------------------------------------------------------------


def measurement_to_payload(
    measurement: TriadMeasurement,
    output_width: int,
    keep_latched: bool,
) -> dict[str, Any]:
    """Condense one triad measurement into a payload dict.

    Uses exactly the reduction expressions the characterization flow always
    used (``error_bits.mean()`` ...), so payload statistics are bit-identical
    with a direct in-process summary.
    """
    error_bits = measurement.error_bits.reshape(-1, output_width)
    payload: dict[str, Any] = {
        "payload_version": PAYLOAD_VERSION,
        "triad": {
            "tclk": measurement.tclk,
            "vdd": measurement.vdd,
            "vbb": measurement.vbb,
        },
        "n_vectors": measurement.n_vectors,
        "ber": float(error_bits.mean()),
        "mse": mean_squared_error(measurement.exact_words, measurement.latched_words),
        "bitwise_error": [float(value) for value in error_bits.mean(axis=0)],
        "energy_per_operation": measurement.energy_per_operation,
        "dynamic_energy_per_operation": measurement.dynamic_energy_per_operation,
        "static_energy_per_operation": measurement.static_energy_per_operation,
        "faulty_vector_fraction": measurement.faulty_vector_fraction,
    }
    if keep_latched:
        # Raw bytes, not base64: the store writes them verbatim into pack
        # records and warm reads hand the same bytes back, so cached and
        # freshly computed payloads are identical dicts.
        payload["latched_words"] = pack_int64_array(measurement.latched_words)
    return payload


def payload_to_measurement(
    payload: Mapping[str, Any],
    circuit: Any,
    in1: np.ndarray,
    in2: np.ndarray,
    exact: np.ndarray | None = None,
    exact_bits: np.ndarray | None = None,
) -> TriadMeasurement:
    """Rebuild the raw measurement of one triad from its payload.

    Only the latched output words are stored; the golden words and the error
    bit matrix are recomputed from the operands, which is deterministic and
    exact.  ``exact`` / ``exact_bits`` are triad-independent -- pass them in
    when rebuilding a whole sweep so they are computed once, not per triad.
    """
    if "latched_words" not in payload:
        raise KeyError("payload does not carry latched words")
    in1_arr = np.asarray(in1, dtype=np.int64)
    in2_arr = np.asarray(in2, dtype=np.int64)
    latched = decode_int64_array(payload["latched_words"]).reshape(in1_arr.shape)
    if exact is None:
        exact = _exact_words(circuit, in1_arr, in2_arr)
    if exact_bits is None:
        exact_bits = int_to_bits(exact, circuit.output_width)
    latched_bits = int_to_bits(latched, circuit.output_width)
    triad = payload["triad"]
    return TriadMeasurement(
        adder_name=circuit.name,
        tclk=float(triad["tclk"]),
        vdd=float(triad["vdd"]),
        vbb=float(triad["vbb"]),
        in1=in1_arr,
        in2=in2_arr,
        latched_words=latched,
        exact_words=exact,
        error_bits=latched_bits != exact_bits,
        energy_per_operation=float(payload["energy_per_operation"]),
        dynamic_energy_per_operation=float(payload["dynamic_energy_per_operation"]),
        static_energy_per_operation=float(payload["static_energy_per_operation"]),
    )


def payload_usable(
    payload: Mapping[str, Any] | None, n_vectors: int, keep_latched: bool
) -> bool:
    """Whether a (possibly cached) characterization payload satisfies a request.

    Shared by the sweep orchestrator and the batch planner of
    :mod:`repro.api.session`, so both judge warmness identically.
    """
    if payload is None:
        return False
    if payload.get("payload_version") != PAYLOAD_VERSION:
        return False
    if payload.get("n_vectors") != n_vectors:
        return False
    if keep_latched and "latched_words" not in payload:
        return False
    return True


#: Backwards-compatible alias of :func:`payload_usable`.
_payload_usable = payload_usable


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------


def shard_triads(
    triads: Sequence[OperatingTriad], n_shards: int
) -> list[list[OperatingTriad]]:
    """Split a triad list into at most ``n_shards`` balanced shards.

    Triads sharing an operating point ``(vdd, vbb)`` always land in the same
    shard, because settled bits are reused per pattern set and arrival times
    per operating point -- splitting such a group across workers would
    duplicate the expensive part of the sweep.  Assignment is deterministic:
    groups (largest first) go to the currently lightest shard.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    groups: dict[tuple[float, float], list[OperatingTriad]] = {}
    for triad in triads:
        groups.setdefault((triad.vdd, triad.vbb), []).append(triad)
    ordered = sorted(
        groups.items(), key=lambda item: (-len(item[1]), item[0][0], item[0][1])
    )
    shards: list[list[OperatingTriad]] = [[] for _ in range(min(n_shards, len(groups)))]
    loads = [0] * len(shards)
    for _, group in ordered:
        lightest = loads.index(min(loads))
        shards[lightest].extend(group)
        loads[lightest] += len(group)
    return [shard for shard in shards if shard]


# ---------------------------------------------------------------------------
# Worker entry points (module level: picklable)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _CharacterizationShard:
    spec: CircuitSpec
    library: StandardCellLibrary
    stimulus: SharedArrayRef
    triads: tuple[tuple[float, float, float], ...]
    keep_latched: bool
    trace: TraceContext | None = None


def _run_characterization_shard(task: _CharacterizationShard) -> list[dict[str, Any]]:
    with worker_scope(
        task.trace, "sweep.shard", kind="characterization", units=len(task.triads)
    ):
        circuit = task.spec.build()
        testbench = _make_testbench(circuit, task.library)
        operands = task.stimulus.load()
        triads = [OperatingTriad(tclk=t, vdd=v, vbb=b) for t, v, b in task.triads]
        measurements = testbench.run_sweep(operands["in1"], operands["in2"], triads)
        return [
            measurement_to_payload(m, circuit.output_width, task.keep_latched)
            for m in measurements
        ]


@dataclasses.dataclass(frozen=True)
class _FaultShard:
    spec: CircuitSpec
    stimulus: SharedArrayRef
    faults: tuple[tuple[int, bool], ...]
    trace: TraceContext | None = None


def _run_fault_shard(task: _FaultShard) -> list[dict[str, Any]]:
    with worker_scope(
        task.trace, "sweep.shard", kind="faults", units=len(task.faults)
    ):
        circuit = task.spec.build()
        simulator = StuckAtFaultSimulator(
            circuit.netlist, output_ports=circuit.output_ports()
        )
        operands = task.stimulus.load()
        assignment = circuit.input_assignment(operands["in1"], operands["in2"])
        faults = [
            StuckAtFault(net=net, stuck_value=value) for net, value in task.faults
        ]
        results = simulator.run(assignment, faults)
        return [_fault_result_to_payload(result) for result in results]


def _fault_result_to_payload(result: FaultSimulationResult) -> dict[str, Any]:
    return {
        "payload_version": PAYLOAD_VERSION,
        "fault": {"net": result.fault.net, "value": bool(result.fault.stuck_value)},
        "detected": bool(result.detected),
        "faulty_vector_fraction": result.faulty_vector_fraction,
        "ber": result.ber,
    }


def _payload_to_fault_result(payload: Mapping[str, Any]) -> FaultSimulationResult:
    fault = payload["fault"]
    return FaultSimulationResult(
        fault=StuckAtFault(net=int(fault["net"]), stuck_value=bool(fault["value"])),
        detected=bool(payload["detected"]),
        faulty_vector_fraction=float(payload["faulty_vector_fraction"]),
        ber=float(payload["ber"]),
    )


# ---------------------------------------------------------------------------
# Resilience hooks (split / validate callbacks of the shard engine)
# ---------------------------------------------------------------------------


def _split_characterization_shard(
    task: _CharacterizationShard,
) -> tuple[_CharacterizationShard, _CharacterizationShard]:
    """Halve a characterization shard for the ``split-and-retry`` action."""
    half = len(task.triads) // 2
    return (
        dataclasses.replace(task, triads=task.triads[:half]),
        dataclasses.replace(task, triads=task.triads[half:]),
    )


def _split_fault_shard(task: _FaultShard) -> tuple[_FaultShard, _FaultShard]:
    """Halve a fault-campaign shard for the ``split-and-retry`` action."""
    half = len(task.faults) // 2
    return (
        dataclasses.replace(task, faults=task.faults[:half]),
        dataclasses.replace(task, faults=task.faults[half:]),
    )


def _valid_payload_list(result: Any, expected: int) -> bool:
    """Parent-side shard-result check: one well-versioned payload per unit.

    This is what catches a worker that completed but returned garbage (the
    chaos harness's ``corrupt`` action, a partially pickled result ...): the
    engine treats a failing result like any other shard failure.
    """
    if not isinstance(result, list) or len(result) != expected:
        return False
    return all(
        isinstance(payload, Mapping)
        and payload.get("payload_version") == PAYLOAD_VERSION
        for payload in result
    )


def _validate_characterization_shard(
    task: _CharacterizationShard, result: Any
) -> bool:
    return _valid_payload_list(result, len(task.triads))


def _validate_fault_shard(task: _FaultShard, result: Any) -> bool:
    return _valid_payload_list(result, len(task.faults))


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


def verified_spec(circuit: Any, fingerprint: str) -> CircuitSpec | None:
    """Spec whose rebuilt netlist is proven identical to ``circuit``'s.

    Shared by every orchestrator that ships circuits to worker processes by
    generator name (characterization, fault campaigns, and the Monte Carlo
    variation sweeps of :mod:`repro.variation.montecarlo`).
    """
    spec = CircuitSpec.from_circuit(circuit)
    if spec is None:
        return None
    if netlist_fingerprint(spec.build().netlist) != fingerprint:
        return None
    return spec


#: Backwards-compatible alias of :func:`verified_spec`.
_verified_spec = verified_spec


def characterization_key_components(
    circuit: Any,
    library: StandardCellLibrary,
    stimulus: Mapping[str, Any],
) -> dict[str, Any]:
    """Triad-independent key components of a characterization sweep.

    The single definition of what identifies a sweep's results in the store;
    combine with a triad via :func:`characterization_entry_key`.  Used by the
    orchestrator below and by the cross-job dedup planner of
    :mod:`repro.api.session` (which must predict the orchestrator's keys
    without running it).
    """
    return {
        "scenario": "characterization",
        "engine_version": ENGINE_VERSION,
        "circuit": netlist_fingerprint(circuit.netlist),
        "circuit_name": circuit.name,
        "library": library_fingerprint(library),
        "stimulus": dict(stimulus),
    }


def characterization_entry_key(
    base_components: Mapping[str, Any], triad: OperatingTriad
) -> str:
    """Store key of one triad's summary within a characterization sweep."""
    return SweepResultStore.entry_key(
        {
            **base_components,
            "triad": {"tclk": triad.tclk, "vdd": triad.vdd, "vbb": triad.vbb},
        }
    )


def run_characterization_sweep(
    circuit: Any,
    grid: TriadGrid,
    in1: np.ndarray,
    in2: np.ndarray,
    stimulus: Mapping[str, Any],
    *,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
    jobs: int = 1,
    store: SweepResultStore | None = None,
    keep_latched: bool = True,
    testbench: Any = None,
    policy: ExecutionPolicy | None = None,
    chaos: ChaosPlan | None = None,
    report: ExecutionReport | None = None,
    shm: bool | None = None,
) -> list[dict[str, Any]]:
    """Characterize a circuit over a triad grid, sharded, cached, resilient.

    Parameters
    ----------
    circuit:
        :class:`AdderCircuit` or :class:`MultiplierCircuit` under test.
    grid:
        The triad grid to sweep.
    in1, in2:
        Operand streams (already resolved from the pattern config).
    stimulus:
        Cache-key components of the stimulus (:func:`pattern_stimulus` or
        :func:`operand_stimulus`).
    library:
        Standard-cell library used by the simulation.
    jobs:
        Worker processes; ``1`` executes in-process.  Results are
        bit-identical for every value.
    store:
        Optional result store; ``None`` disables persistence.  Completed
        shards flush to it the moment they finish (and the in-process path
        flushes per operating-point group), so a run killed mid-flight
        resumes warm.
    keep_latched:
        Whether payloads must carry the latched output words (required to
        reconstruct raw measurements).  Cached entries without them are
        recomputed when requested.
    testbench:
        Optional pre-built testbench to reuse for in-process execution.
    policy:
        :class:`~repro.core.resilience.ExecutionPolicy` governing retries,
        per-shard timeouts and the failure action of the sharded path.
    chaos:
        Optional deterministic fault-injection plan (tests / chaos CI only).
    report:
        Optional :class:`~repro.core.resilience.ExecutionReport` to
        accumulate recovery accounting into.
    shm:
        Whether worker processes receive the operand streams through a
        shared-memory segment (:mod:`repro.core.shm`) instead of pickling
        them into every shard.  ``None`` (the default) follows the
        ``REPRO_SHM`` environment variable; results are byte-identical
        either way.

    Returns
    -------
    list of payload dicts in grid order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    with span("sweep", kind="characterization", jobs=jobs) as sweep_span:
        return _characterization_sweep_body(
            circuit,
            grid,
            in1,
            in2,
            stimulus,
            library=library,
            jobs=jobs,
            store=store,
            keep_latched=keep_latched,
            testbench=testbench,
            policy=policy,
            chaos=chaos,
            report=report,
            shm=shm,
            sweep_span=sweep_span,
        )


def _characterization_sweep_body(
    circuit: Any,
    grid: TriadGrid,
    in1: np.ndarray,
    in2: np.ndarray,
    stimulus: Mapping[str, Any],
    *,
    library: StandardCellLibrary,
    jobs: int,
    store: SweepResultStore | None,
    keep_latched: bool,
    testbench: Any,
    policy: ExecutionPolicy | None,
    chaos: ChaosPlan | None,
    report: ExecutionReport | None,
    shm: bool | None,
    sweep_span: Any,
) -> list[dict[str, Any]]:
    """Body of :func:`run_characterization_sweep` under its ``sweep`` span."""
    in1_arr = np.asarray(in1, dtype=np.int64)
    in2_arr = np.asarray(in2, dtype=np.int64)
    base_components = characterization_key_components(circuit, library, stimulus)
    fingerprint = base_components["circuit"]
    n_vectors = int(in1_arr.size)

    keys: dict[OperatingTriad, str] = {}
    payloads: dict[OperatingTriad, dict[str, Any]] = {}
    for triad in grid:
        keys[triad] = characterization_entry_key(base_components, triad)
    if store is not None:
        # One batch read for the whole grid: segments are visited in offset
        # order instead of seeking per key, which is what keeps warm sweeps
        # fast on multi-thousand-entry stores.
        with span("store.lookup", requested=len(keys)) as lookup_span:
            cached_batch = store.get_many([keys[triad] for triad in grid])
            for triad in grid:
                cached = cached_batch.get(keys[triad])
                if payload_usable(cached, n_vectors, keep_latched):
                    payloads[triad] = cached  # type: ignore[assignment]
            lookup_span.set(hits=len(payloads), misses=len(keys) - len(payloads))

    missing = [triad for triad in grid if triad not in payloads]
    sweep_span.set(
        units=len(keys), cached=len(payloads), simulated=len(missing)
    )
    if missing:
        record_simulated_units(len(missing))
        spec = _verified_spec(circuit, fingerprint) if jobs > 1 else None
        shards = shard_triads(missing, jobs if spec is not None else 1)
        if spec is not None and len(shards) > 1:
            bundle = share_arrays({"in1": in1_arr, "in2": in2_arr}, enabled=shm)
            trace_context = current_context()
            tasks = [
                _CharacterizationShard(
                    spec=spec,
                    library=library,
                    stimulus=bundle.ref,
                    triads=tuple((t.tclk, t.vdd, t.vbb) for t in shard),
                    keep_latched=keep_latched,
                    trace=trace_context,
                )
                for shard in shards
            ]
            key_by_coords = {
                (triad.tclk, triad.vdd, triad.vbb): keys[triad]
                for triad in missing
            }

            def flush(task: _CharacterizationShard, result: list) -> None:
                if store is None:
                    return
                with span("store.flush", entries=len(result)):
                    for coords, payload in zip(task.triads, result):
                        store.put(key_by_coords[coords], payload)

            shard_payloads = run_shards(
                tasks,
                _run_characterization_shard,
                policy=policy,
                max_workers=len(tasks),
                units=lambda task: len(task.triads),
                split=_split_characterization_shard,
                validate=_validate_characterization_shard,
                on_result=flush,
                chaos=chaos,
                report=report,
                cleanup=bundle.unlink,
            )
            for shard, shard_result in zip(shards, shard_payloads):
                for triad, payload in zip(shard, shard_result):
                    payloads[triad] = payload
        else:
            bench = testbench or _make_testbench(circuit, library)
            # One in-process chunk per (vdd, vbb) group: the sweep-level
            # reuse lives inside a group, so chunking changes no numbers,
            # and the per-group store flush makes serial runs exactly as
            # crash-consistent as sharded ones.
            groups: dict[tuple[float, float], list[OperatingTriad]] = {}
            for triad in missing:
                groups.setdefault((triad.vdd, triad.vbb), []).append(triad)
            for group in groups.values():
                measurements = bench.run_sweep(in1_arr, in2_arr, group)
                group_payloads = []
                for triad, measurement in zip(group, measurements):
                    payload = measurement_to_payload(
                        measurement, circuit.output_width, keep_latched
                    )
                    payloads[triad] = payload
                    group_payloads.append((keys[triad], payload))
                if store is not None:
                    with span("store.flush", entries=len(group_payloads)):
                        for key, payload in group_payloads:
                            store.put(key, payload)

    return [payloads[triad] for triad in grid]


def run_fault_sweep(
    circuit: Any,
    in1: np.ndarray,
    in2: np.ndarray,
    stimulus: Mapping[str, Any],
    *,
    faults: Sequence[StuckAtFault] | None = None,
    jobs: int = 1,
    store: SweepResultStore | None = None,
    policy: ExecutionPolicy | None = None,
    chaos: ChaosPlan | None = None,
    report: ExecutionReport | None = None,
    shm: bool | None = None,
) -> list[FaultSimulationResult]:
    """Run a stuck-at fault campaign, sharded over fault sites and cached.

    The fault list (default: the full single-stuck-at universe of the
    circuit) is split into contiguous chunks across ``jobs`` workers; each
    worker evaluates its chunk on the compiled packed engine.  Per-fault
    results are stored content-addressed, keyed on (circuit, stimulus,
    fault, engine version) -- the cell library does not enter the key because
    stuck-at simulation is purely functional.

    ``policy`` / ``chaos`` / ``report`` / ``shm`` configure and account the
    fault-tolerant shard engine exactly as in
    :func:`run_characterization_sweep`; completed shards (and, in-process,
    fixed-size fault blocks) flush to the store immediately.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    with span("sweep", kind="faults", jobs=jobs) as sweep_span:
        return _fault_sweep_body(
            circuit,
            in1,
            in2,
            stimulus,
            faults=faults,
            jobs=jobs,
            store=store,
            policy=policy,
            chaos=chaos,
            report=report,
            shm=shm,
            sweep_span=sweep_span,
        )


def _fault_sweep_body(
    circuit: Any,
    in1: np.ndarray,
    in2: np.ndarray,
    stimulus: Mapping[str, Any],
    *,
    faults: Sequence[StuckAtFault] | None,
    jobs: int,
    store: SweepResultStore | None,
    policy: ExecutionPolicy | None,
    chaos: ChaosPlan | None,
    report: ExecutionReport | None,
    shm: bool | None,
    sweep_span: Any,
) -> list[FaultSimulationResult]:
    """Body of :func:`run_fault_sweep` under its ``sweep`` span."""
    in1_arr = np.asarray(in1, dtype=np.int64)
    in2_arr = np.asarray(in2, dtype=np.int64)
    fault_list = list(
        enumerate_stuck_at_faults(circuit.netlist) if faults is None else faults
    )
    fingerprint = netlist_fingerprint(circuit.netlist)
    base_components: dict[str, Any] = {
        "scenario": "stuck_at",
        "engine_version": ENGINE_VERSION,
        "circuit": fingerprint,
        "circuit_name": circuit.name,
        "stimulus": dict(stimulus),
    }
    n_vectors = int(in1_arr.size)

    keys: list[str] = []
    results: dict[int, FaultSimulationResult] = {}
    missing_indices: list[int] = []
    for fault in fault_list:
        keys.append(
            SweepResultStore.entry_key(
                {
                    **base_components,
                    "fault": {
                        "net": fault.net,
                        "value": bool(fault.stuck_value),
                    },
                }
            )
        )
    with span("store.lookup", requested=len(keys)) as lookup_span:
        cached_batch = store.get_many(keys) if store is not None else {}
        for index in range(len(fault_list)):
            cached = cached_batch.get(keys[index])
            if (
                cached is not None
                and cached.get("payload_version") == PAYLOAD_VERSION
                and cached.get("n_vectors", n_vectors) == n_vectors
            ):
                results[index] = _payload_to_fault_result(cached)
            else:
                missing_indices.append(index)
        lookup_span.set(hits=len(results), misses=len(missing_indices))

    sweep_span.set(
        units=len(fault_list),
        cached=len(results),
        simulated=len(missing_indices),
    )
    if missing_indices:
        record_simulated_units(len(missing_indices))
        spec = _verified_spec(circuit, fingerprint) if jobs > 1 else None
        n_shards = min(jobs, len(missing_indices)) if spec is not None else 1
        chunks = [
            missing_indices[start::n_shards] for start in range(n_shards)
        ]
        key_by_fault = {
            (fault_list[i].net, bool(fault_list[i].stuck_value)): keys[i]
            for i in missing_indices
        }
        if spec is not None and len(chunks) > 1:
            bundle = share_arrays({"in1": in1_arr, "in2": in2_arr}, enabled=shm)
            trace_context = current_context()
            tasks = [
                _FaultShard(
                    spec=spec,
                    stimulus=bundle.ref,
                    faults=tuple(
                        (fault_list[i].net, bool(fault_list[i].stuck_value))
                        for i in chunk
                    ),
                    trace=trace_context,
                )
                for chunk in chunks
            ]

            def flush(task: _FaultShard, result: list) -> None:
                if store is None:
                    return
                with span("store.flush", entries=len(result)):
                    for site, payload in zip(task.faults, result):
                        store.put(
                            key_by_fault[site], {**payload, "n_vectors": n_vectors}
                        )

            chunk_payloads = run_shards(
                tasks,
                _run_fault_shard,
                policy=policy,
                max_workers=len(tasks),
                units=lambda task: len(task.faults),
                split=_split_fault_shard,
                validate=_validate_fault_shard,
                on_result=flush,
                chaos=chaos,
                report=report,
                cleanup=bundle.unlink,
            )
            for chunk, chunk_result in zip(chunks, chunk_payloads):
                for index, payload in zip(chunk, chunk_result):
                    results[index] = _payload_to_fault_result(payload)
        else:
            simulator = StuckAtFaultSimulator(
                circuit.netlist, output_ports=circuit.output_ports()
            )
            assignment = circuit.input_assignment(in1_arr, in2_arr)
            # Fixed-size in-process blocks, flushed to the store as they
            # complete, so an interrupted serial campaign also resumes warm.
            for block_start in range(
                0, len(missing_indices), SERIAL_FAULT_FLUSH_BLOCK
            ):
                block = missing_indices[
                    block_start : block_start + SERIAL_FAULT_FLUSH_BLOCK
                ]
                block_results = simulator.run(
                    assignment, [fault_list[i] for i in block]
                )
                block_payloads = []
                for index, result in zip(block, block_results):
                    payload = {
                        **_fault_result_to_payload(result),
                        "n_vectors": n_vectors,
                    }
                    results[index] = _payload_to_fault_result(payload)
                    block_payloads.append((keys[index], payload))
                if store is not None:
                    with span("store.flush", entries=len(block_payloads)):
                        for key, payload in block_payloads:
                            store.put(key, payload)

    return [results[index] for index in range(len(fault_list))]
