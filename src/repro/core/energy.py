"""Energy-efficiency analysis (Table IV and the Fig. 8 commentary).

Energy efficiency follows the paper's definition: the relative energy saving
of a triad compared with the *ideal* test case (nominal supply, relaxed
clock, no body bias).  The module aggregates triads into the paper's BER
ranges (0 %, 1-10 %, 11-20 %, 21-25 %) and extracts Pareto-optimal
energy/accuracy points used by the dynamic speculation controller.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.characterization import AdderCharacterization, TriadCharacterization

#: The BER ranges of Table IV, as (label, low, high) fractions (inclusive bounds).
PAPER_BER_RANGES: tuple[tuple[str, float, float], ...] = (
    ("0%", 0.0, 0.0),
    ("1% to 10%", 0.000001, 0.10),
    ("11% to 20%", 0.10000001, 0.20),
    ("21% to 25%", 0.20000001, 0.25),
)


def energy_efficiency(
    characterization: AdderCharacterization,
    entry: TriadCharacterization,
) -> float:
    """Energy saving of a triad relative to the nominal triad, in [.., 1]."""
    return characterization.energy_efficiency_of(entry)


@dataclasses.dataclass(frozen=True)
class EfficiencySummary:
    """One row of a Table IV-style summary for a single adder.

    Attributes
    ----------
    ber_range_label:
        Human readable range label (``"1% to 10%"`` ...).
    triad_count:
        Number of operating triads whose BER falls inside the range.
    max_energy_efficiency:
        Best energy saving among those triads (fraction, 0..1), or ``None``
        when the range is empty.
    ber_at_max_efficiency:
        BER (fraction) of the triad achieving the best saving, or ``None``.
    best_triad_label:
        Label of that triad, or ``None``.
    """

    ber_range_label: str
    triad_count: int
    max_energy_efficiency: float | None
    ber_at_max_efficiency: float | None
    best_triad_label: str | None


def summarize_by_ber_range(
    characterization: AdderCharacterization,
    ber_ranges: Sequence[tuple[str, float, float]] = PAPER_BER_RANGES,
) -> list[EfficiencySummary]:
    """Aggregate a characterization into Table IV rows."""
    summaries: list[EfficiencySummary] = []
    for label, low, high in ber_ranges:
        matching = [
            entry for entry in characterization.results if low <= entry.ber <= high
        ]
        if not matching:
            summaries.append(
                EfficiencySummary(
                    ber_range_label=label,
                    triad_count=0,
                    max_energy_efficiency=None,
                    ber_at_max_efficiency=None,
                    best_triad_label=None,
                )
            )
            continue
        best = max(matching, key=characterization.energy_efficiency_of)
        summaries.append(
            EfficiencySummary(
                ber_range_label=label,
                triad_count=len(matching),
                max_energy_efficiency=characterization.energy_efficiency_of(best),
                ber_at_max_efficiency=best.ber,
                best_triad_label=best.label(),
            )
        )
    return summaries


def pareto_front(
    characterization: AdderCharacterization,
) -> list[TriadCharacterization]:
    """Pareto-optimal triads in the (BER, energy per operation) plane.

    A triad is Pareto optimal when no other triad has both lower-or-equal BER
    and strictly lower energy.  The front is returned ordered by increasing
    BER; the first entry is the most energy-efficient error-free triad and the
    natural "accurate mode" of the dynamic speculation controller.
    """
    entries = characterization.results
    front: list[TriadCharacterization] = []
    for entry in entries:
        dominated = any(
            (other.ber <= entry.ber and other.energy_per_operation < entry.energy_per_operation)
            or (other.ber < entry.ber and other.energy_per_operation <= entry.energy_per_operation)
            for other in entries
            if other is not entry
        )
        if not dominated:
            front.append(entry)
    return sorted(front, key=lambda item: (item.ber, item.energy_per_operation))


def best_triad_within_ber(
    characterization: AdderCharacterization,
    max_ber: float,
) -> TriadCharacterization:
    """Most energy-efficient triad whose BER does not exceed ``max_ber``.

    This is the selection rule of the dynamic speculation scheme: given the
    user's error-tolerance margin, pick the triad with the best energy saving
    that still honours it.
    """
    candidates = characterization.within_ber(max_ber)
    if not candidates:
        raise ValueError(
            f"no characterized triad has BER <= {max_ber}; "
            "the error margin is tighter than the characterization supports"
        )
    return max(candidates, key=characterization.energy_efficiency_of)
