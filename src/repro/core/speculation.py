"""Dynamic speculation: runtime triad selection under an error margin.

The paper proposes (citing its companion ISVLSI 2016 work) to monitor the
error rate at run time and switch the operating triad dynamically so the
operator always runs at the most energy-efficient point that still honours a
user-defined error-tolerance margin.  This module implements that control
loop at the functional level:

* the controller is initialised with an :class:`AdderCharacterization`
  (the offline knowledge of which triad produces which BER/energy),
* at run time it receives per-window error observations (e.g. from a
  double-sampling shadow register or an application-level checker),
* it keeps a smoothed BER estimate and moves along the Pareto front: towards
  more aggressive triads while the margin has head-room, back towards safer
  triads when the margin is violated.
"""

from __future__ import annotations

import dataclasses

from repro.core.characterization import AdderCharacterization, TriadCharacterization
from repro.core.energy import pareto_front
from repro.core.triad import OperatingTriad


@dataclasses.dataclass(frozen=True)
class SpeculationDecision:
    """Outcome of one control-loop step.

    Attributes
    ----------
    triad:
        The operating triad selected for the next window.
    estimated_ber:
        The controller's smoothed BER estimate after the observation.
    switched:
        True when the triad changed relative to the previous window.
    energy_efficiency:
        Offline energy saving of the selected triad versus the nominal triad.
    """

    triad: OperatingTriad
    estimated_ber: float
    switched: bool
    energy_efficiency: float


class DynamicSpeculationController:
    """Runtime triad selector with hysteresis.

    Parameters
    ----------
    characterization:
        Offline characterization of the operator.
    error_margin:
        Maximum tolerated BER (fraction, e.g. ``0.10`` for 10 %).
    smoothing:
        Exponential smoothing factor of the BER estimate (0 < smoothing <= 1;
        1 uses only the latest window).
    headroom:
        Fraction of the margin kept as guard band before stepping to a more
        aggressive triad (0.1 means: only speed up while the estimate stays
        below 90 % of the margin).
    """

    def __init__(
        self,
        characterization: AdderCharacterization,
        error_margin: float,
        smoothing: float = 0.3,
        headroom: float = 0.1,
    ) -> None:
        if not 0.0 <= error_margin <= 1.0:
            raise ValueError("error_margin must be within [0, 1]")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be within (0, 1]")
        if not 0.0 <= headroom < 1.0:
            raise ValueError("headroom must be within [0, 1)")
        self._characterization = characterization
        self._margin = error_margin
        self._smoothing = smoothing
        self._headroom = headroom
        self._front = pareto_front(characterization)
        if not self._front:
            raise ValueError("the characterization has no Pareto-optimal triads")
        # Offline knowledge is static: resolve each front entry's energy
        # efficiency once instead of re-deriving it on every control step.
        self._front_efficiency = [
            characterization.energy_efficiency_of(entry) for entry in self._front
        ]
        self._index = self._initial_index()
        self._estimate = self.current_entry().ber

    def _initial_index(self) -> int:
        """Start at the most aggressive triad already satisfying the margin."""
        best = 0
        for index, entry in enumerate(self._front):
            if entry.ber <= self._margin:
                best = index
        return best

    # -- public state ------------------------------------------------------------

    @property
    def error_margin(self) -> float:
        """The user-defined BER tolerance."""
        return self._margin

    @property
    def estimated_ber(self) -> float:
        """Current smoothed BER estimate."""
        return self._estimate

    @property
    def pareto_entries(self) -> list[TriadCharacterization]:
        """The Pareto front the controller walks along (ordered by BER)."""
        return list(self._front)

    def current_entry(self) -> TriadCharacterization:
        """Characterization entry of the currently selected triad."""
        return self._front[self._index]

    def current_triad(self) -> OperatingTriad:
        """The currently selected operating triad."""
        return self.current_entry().triad

    # -- control loop --------------------------------------------------------------

    def observe(self, window_ber: float) -> SpeculationDecision:
        """Feed one error-rate observation and (possibly) switch triads.

        Parameters
        ----------
        window_ber:
            Measured BER over the last observation window (fraction).
        """
        if window_ber < 0 or window_ber > 1:
            raise ValueError("window_ber must be within [0, 1]")
        previous_index = self._index
        self._estimate = (
            self._smoothing * window_ber + (1.0 - self._smoothing) * self._estimate
        )

        if self._estimate > self._margin:
            # Margin violated: back off towards the accurate end of the front.
            if self._index > 0:
                self._index -= 1
        elif self._estimate <= self._margin * (1.0 - self._headroom):
            # Comfortable head-room: try the next, more aggressive triad, but
            # only if its offline BER also honours the margin.
            if (
                self._index + 1 < len(self._front)
                and self._front[self._index + 1].ber <= self._margin
            ):
                self._index += 1

        entry = self.current_entry()
        return SpeculationDecision(
            triad=entry.triad,
            estimated_ber=self._estimate,
            switched=self._index != previous_index,
            energy_efficiency=self._front_efficiency[self._index],
        )

    def run_trace(self, window_bers: list[float]) -> list[SpeculationDecision]:
        """Run the controller over a sequence of window observations."""
        return [self.observe(ber) for ber in window_bers]

    def accurate_mode(self) -> TriadCharacterization:
        """The most energy-efficient error-free entry (the paper's accurate mode)."""
        error_free = [
            index for index, entry in enumerate(self._front) if entry.ber == 0.0
        ]
        if not error_free:
            return self._front[0]
        return self._front[max(error_free, key=self._front_efficiency.__getitem__)]

    def approximate_mode(self) -> TriadCharacterization:
        """The most energy-efficient entry within the error margin."""
        within = [
            index
            for index, entry in enumerate(self._front)
            if entry.ber <= self._margin
        ]
        if not within:
            return self._front[0]
        return self._front[max(within, key=self._front_efficiency.__getitem__)]
