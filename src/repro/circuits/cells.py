"""Combinational cell set and boolean evaluation.

Every gate type used by the netlist generators maps to a vectorised boolean
function.  The functions accept a sequence of numpy boolean arrays (one per
input pin, broadcastable shapes) and return the output array, so the logic
simulator evaluates a whole batch of input vectors per gate with a handful of
numpy operations.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

import numpy as np

BoolArray = np.ndarray
GateFunction = Callable[[Sequence[BoolArray]], BoolArray]


class GateType(str, enum.Enum):
    """Names of the combinational cells available to the generators.

    The values match the cell names of
    :data:`repro.technology.library.DEFAULT_LIBRARY` so a gate instance can be
    looked up in the timing/power library directly by its type value.
    """

    INV = "INV"
    BUF = "BUF"
    AND2 = "AND2"
    OR2 = "OR2"
    NAND2 = "NAND2"
    NAND3 = "NAND3"
    NOR2 = "NOR2"
    NOR3 = "NOR3"
    XOR2 = "XOR2"
    XNOR2 = "XNOR2"
    AOI21 = "AOI21"
    OAI21 = "OAI21"
    MAJ3 = "MAJ3"
    MUX2 = "MUX2"


def _require_arity(inputs: Sequence[BoolArray], arity: int, name: str) -> None:
    if len(inputs) != arity:
        raise ValueError(f"{name} expects {arity} inputs, got {len(inputs)}")


def _inv(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 1, "INV")
    return np.logical_not(inputs[0])


def _buf(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 1, "BUF")
    return np.asarray(inputs[0], dtype=bool).copy()


def _and2(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 2, "AND2")
    return np.logical_and(inputs[0], inputs[1])


def _or2(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 2, "OR2")
    return np.logical_or(inputs[0], inputs[1])


def _nand2(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 2, "NAND2")
    return np.logical_not(np.logical_and(inputs[0], inputs[1]))


def _nand3(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 3, "NAND3")
    return np.logical_not(inputs[0] & inputs[1] & inputs[2])


def _nor2(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 2, "NOR2")
    return np.logical_not(np.logical_or(inputs[0], inputs[1]))


def _nor3(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 3, "NOR3")
    return np.logical_not(inputs[0] | inputs[1] | inputs[2])


def _xor2(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 2, "XOR2")
    return np.logical_xor(inputs[0], inputs[1])


def _xnor2(inputs: Sequence[BoolArray]) -> BoolArray:
    _require_arity(inputs, 2, "XNOR2")
    return np.logical_not(np.logical_xor(inputs[0], inputs[1]))


def _aoi21(inputs: Sequence[BoolArray]) -> BoolArray:
    # OUT = NOT((A AND B) OR C)
    _require_arity(inputs, 3, "AOI21")
    return np.logical_not((inputs[0] & inputs[1]) | inputs[2])


def _oai21(inputs: Sequence[BoolArray]) -> BoolArray:
    # OUT = NOT((A OR B) AND C)
    _require_arity(inputs, 3, "OAI21")
    return np.logical_not((inputs[0] | inputs[1]) & inputs[2])


def _maj3(inputs: Sequence[BoolArray]) -> BoolArray:
    # Majority of three -- the carry function of a full adder.
    _require_arity(inputs, 3, "MAJ3")
    a, b, c = inputs
    return (a & b) | (a & c) | (b & c)


def _mux2(inputs: Sequence[BoolArray]) -> BoolArray:
    # OUT = B if SEL else A ; pin order (A, B, SEL).
    _require_arity(inputs, 3, "MUX2")
    a, b, sel = inputs
    return np.where(sel, b, a)


GATE_FUNCTIONS: dict[GateType, GateFunction] = {
    GateType.INV: _inv,
    GateType.BUF: _buf,
    GateType.AND2: _and2,
    GateType.OR2: _or2,
    GateType.NAND2: _nand2,
    GateType.NAND3: _nand3,
    GateType.NOR2: _nor2,
    GateType.NOR3: _nor3,
    GateType.XOR2: _xor2,
    GateType.XNOR2: _xnor2,
    GateType.AOI21: _aoi21,
    GateType.OAI21: _oai21,
    GateType.MAJ3: _maj3,
    GateType.MUX2: _mux2,
}

#: Number of input pins per gate type.
GATE_ARITY: dict[GateType, int] = {
    GateType.INV: 1,
    GateType.BUF: 1,
    GateType.AND2: 2,
    GateType.OR2: 2,
    GateType.NAND2: 2,
    GateType.NAND3: 3,
    GateType.NOR2: 2,
    GateType.NOR3: 3,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
    GateType.AOI21: 3,
    GateType.OAI21: 3,
    GateType.MAJ3: 3,
    GateType.MUX2: 3,
}


#: Bitwise evaluation of a *stack* of same-typed gates.
#:
#: Each function takes one array whose first axis is the input-pin axis
#: (shape ``(arity, n_gates, ...)``) and returns the output for every gate at
#: once.  Only ``& | ^ ~`` and copies are used, so the same function works on
#: boolean arrays (one vector per element) and on bit-packed ``uint64`` words
#: (64 vectors per element).  This is the hook the compiled simulation engine
#: (:mod:`repro.simulation.engine`) dispatches through: one call evaluates an
#: entire level of same-typed gates.
GATE_WORD_FUNCTIONS: dict[GateType, Callable[[np.ndarray], np.ndarray]] = {
    GateType.INV: lambda p: ~p[0],
    GateType.BUF: lambda p: p[0].copy(),
    GateType.AND2: lambda p: p[0] & p[1],
    GateType.OR2: lambda p: p[0] | p[1],
    GateType.NAND2: lambda p: ~(p[0] & p[1]),
    GateType.NAND3: lambda p: ~(p[0] & p[1] & p[2]),
    GateType.NOR2: lambda p: ~(p[0] | p[1]),
    GateType.NOR3: lambda p: ~(p[0] | p[1] | p[2]),
    GateType.XOR2: lambda p: p[0] ^ p[1],
    GateType.XNOR2: lambda p: ~(p[0] ^ p[1]),
    GateType.AOI21: lambda p: ~((p[0] & p[1]) | p[2]),
    GateType.OAI21: lambda p: ~((p[0] | p[1]) & p[2]),
    GateType.MAJ3: lambda p: (p[0] & p[1]) | (p[0] & p[2]) | (p[1] & p[2]),
    GateType.MUX2: lambda p: (p[0] & ~p[2]) | (p[1] & p[2]),
}


def evaluate_gate(gate_type: GateType, inputs: Sequence[BoolArray]) -> BoolArray:
    """Evaluate a gate's boolean function on vectorised inputs.

    Parameters
    ----------
    gate_type:
        The cell to evaluate.
    inputs:
        One boolean numpy array per input pin, in pin order.
    """
    try:
        function = GATE_FUNCTIONS[gate_type]
    except KeyError:
        raise ValueError(f"unsupported gate type: {gate_type!r}") from None
    arrays = [np.asarray(values, dtype=bool) for values in inputs]
    return function(arrays)
