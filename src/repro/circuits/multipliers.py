"""Array multiplier generator.

The paper's statistical model targets "basic arithmetic operators"; adders
are the proof of concept, but the application examples (FIR filter, image
convolution) also need multiplications.  The array multiplier here is built
from the same cell set so it can be pushed through the identical
characterization and VOS-simulation flow.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.builder import NetlistBuilder
from repro.circuits.netlist import Netlist
from repro.circuits.signals import int_to_bits


@dataclasses.dataclass(frozen=True)
class MultiplierCircuit:
    """An unsigned array multiplier netlist with its port conventions.

    Primary inputs are ``a0..a{n-1}`` and ``b0..b{m-1}``; primary outputs are
    ``p0..p{n+m-1}``.
    """

    netlist: Netlist
    width_a: int
    width_b: int

    def __post_init__(self) -> None:
        if self.width_a <= 0 or self.width_b <= 0:
            raise ValueError("operand widths must be positive")

    @property
    def name(self) -> str:
        """Human readable name, e.g. ``"mul8x8"``."""
        return f"mul{self.width_a}x{self.width_b}"

    @property
    def output_width(self) -> int:
        """Number of product bits."""
        return self.width_a + self.width_b

    def input_assignment(self, in1: np.ndarray, in2: np.ndarray) -> dict[str, np.ndarray]:
        """Map operand integer arrays onto the primary input ports."""
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        if in1_arr.shape != in2_arr.shape:
            raise ValueError("in1 and in2 must have the same shape")
        a_bits = int_to_bits(in1_arr, self.width_a)
        b_bits = int_to_bits(in2_arr, self.width_b)
        assignment: dict[str, np.ndarray] = {}
        for i in range(self.width_a):
            assignment[f"a{i}"] = a_bits[..., i]
        for j in range(self.width_b):
            assignment[f"b{j}"] = b_bits[..., j]
        if "__const0" in self.netlist.primary_inputs:
            assignment["__const0"] = np.zeros(in1_arr.shape, dtype=bool)
        return assignment

    def exact_product(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Golden reference product as integers."""
        return np.asarray(in1, dtype=np.int64) * np.asarray(in2, dtype=np.int64)

    def output_ports(self) -> tuple[str, ...]:
        """Product port names in LSB-to-MSB order."""
        return tuple(f"p{i}" for i in range(self.output_width))


def array_multiplier(width_a: int, width_b: int | None = None) -> MultiplierCircuit:
    """Generate an unsigned carry-save array multiplier netlist.

    Partial products are AND gates; each row of the array adds one shifted
    partial-product row with a rank of full adders, carries saved diagonally;
    a final ripple stage merges the last carry row.
    """
    if width_b is None:
        width_b = width_a
    if width_a <= 0 or width_b <= 0:
        raise ValueError("operand widths must be positive")
    builder = NetlistBuilder(f"mul{width_a}x{width_b}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width_a)]
    b_nets = [builder.add_input(f"b{j}") for j in range(width_b)]
    zero = builder.constant_zero()

    # partial[i][j] = a_i AND b_j contributes to product bit i + j.
    product_width = width_a + width_b
    # Running sum row (carry-save): sums[k] is the current sum at weight k.
    sums: list[int] = [zero] * product_width
    carries: list[int] = [zero] * product_width

    for j in range(width_b):
        new_sums = list(sums)
        new_carries: list[int] = [zero] * product_width
        for i in range(width_a):
            weight = i + j
            partial = builder.and2(a_nets[i], b_nets[j])
            sum_bit, carry_bit = _add_three(builder, sums[weight], carries[weight], partial)
            new_sums[weight] = sum_bit
            if weight + 1 < product_width:
                new_carries[weight + 1] = _merge_carry(
                    builder, new_carries[weight + 1], carry_bit, zero
                )
        sums = new_sums
        carries = new_carries

    # Final carry-propagate stage: ripple the remaining carries into the sums.
    carry = zero
    for k in range(product_width):
        sum_bit, carry_next = _add_three(builder, sums[k], carries[k], carry)
        builder.add_output(f"p{k}", sum_bit)
        carry = carry_next

    return MultiplierCircuit(netlist=builder.build(), width_a=width_a, width_b=width_b)


def _add_three(builder: NetlistBuilder, a: int, b: int, c: int) -> tuple[int, int]:
    """Full adder over three nets (tolerates constant-zero inputs)."""
    return builder.full_adder(a, b, c)


def _merge_carry(builder: NetlistBuilder, existing: int, carry: int, zero: int) -> int:
    """Place a saved carry into a carry-save column.

    In this array structure each column receives at most one saved carry per
    row, so the existing entry must still be the constant-zero net; anything
    else indicates a generator bug and is rejected loudly rather than
    silently dropping a carry.
    """
    del builder  # structural helper kept symmetric with _add_three
    if existing != zero:
        raise AssertionError("carry-save column received two carries in one row")
    return carry
