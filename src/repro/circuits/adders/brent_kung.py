"""Brent-Kung Adder (BKA) generator.

The Brent-Kung adder is a parallel-prefix adder.  Per-bit generate/propagate
signals feed a prefix tree of *black cells* (combining both generate and
propagate) and *gray cells* (combining generate only), exactly the carry
chain shown in the paper's Fig. 3.  The tree has an up-sweep (building
power-of-two spans) and a down-sweep (filling in the remaining carries),
giving ``2*log2(n) - 1`` levels instead of the RCA's ``n`` stages.  Compared
to the RCA it trades area/power for logic depth, and its many equal-length
paths are what produce the staircase-shaped BER curves in the paper's Fig. 8.
"""

from __future__ import annotations

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.builder import NetlistBuilder


def _black_cell(
    builder: NetlistBuilder,
    generate_high: int,
    propagate_high: int,
    generate_low: int,
    propagate_low: int,
) -> tuple[int, int]:
    """Combine two (generate, propagate) pairs: high span after low span."""
    generate_out = builder.or2(
        generate_high, builder.and2(propagate_high, generate_low)
    )
    propagate_out = builder.and2(propagate_high, propagate_low)
    return generate_out, propagate_out


def _gray_cell(
    builder: NetlistBuilder,
    generate_high: int,
    propagate_high: int,
    generate_low: int,
) -> int:
    """Combine pairs when only the group generate is needed (carry output)."""
    return builder.or2(generate_high, builder.and2(propagate_high, generate_low))


def brent_kung_adder(width: int) -> AdderCircuit:
    """Generate a ``width``-bit Brent-Kung parallel-prefix adder netlist.

    The implementation follows the classical formulation (Weste & Harris):

    1. pre-processing: ``g_i = a_i & b_i``, ``p_i = a_i ^ b_i``;
    2. up-sweep: combine spans of width 2, 4, 8, ... with black cells;
    3. down-sweep: gray cells complete the missing prefix carries;
    4. post-processing: ``s_i = p_i ^ c_i`` with ``c_0 = 0`` and
       ``c_{i+1}`` the group generate of bits ``[0..i]``.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    builder = NetlistBuilder(f"bka{width}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width)]
    b_nets = [builder.add_input(f"b{i}") for i in range(width)]

    generate = [builder.and2(a_nets[i], b_nets[i]) for i in range(width)]
    propagate = [builder.xor2(a_nets[i], b_nets[i]) for i in range(width)]

    # prefix[(lo, hi)] = (G, P) of the bit span [lo..hi] inclusive.
    prefix: dict[tuple[int, int], tuple[int, int]] = {
        (i, i): (generate[i], propagate[i]) for i in range(width)
    }

    # Up-sweep: build spans ending at indices of the form k*2^level - 1.
    level = 1
    while (1 << level) <= width:
        span = 1 << level
        half = span // 2
        for high in range(span - 1, width, span):
            low = high - span + 1
            g_hi, p_hi = prefix[(low + half, high)]
            g_lo, p_lo = prefix[(low, low + half - 1)]
            prefix[(low, high)] = _black_cell(builder, g_hi, p_hi, g_lo, p_lo)
        level += 1

    # Down-sweep: fill in prefixes [0..k] that the up-sweep did not produce.
    level -= 1
    while level >= 1:
        span = 1 << level
        half = span // 2
        for high in range(span + half - 1, width, span):
            if (0, high) in prefix:
                continue
            g_hi, p_hi = prefix[(high - half + 1, high)]
            g_lo, p_lo = prefix[(0, high - half)]
            prefix[(0, high)] = _black_cell(builder, g_hi, p_hi, g_lo, p_lo)
        level -= 1

    # Ensure every prefix [0..i] exists (covers widths that are not powers of 2).
    for i in range(width):
        if (0, i) in prefix:
            continue
        # Find the largest already-computed prefix [0..j] with j < i and
        # combine it with the span [j+1..i] built from single bits.
        j = max(high for (low, high) in prefix if low == 0 and high < i)
        g_span, p_span = prefix[(j + 1, j + 1)]
        for k in range(j + 2, i + 1):
            g_k, p_k = prefix[(k, k)]
            g_span, p_span = _black_cell(builder, g_k, p_k, g_span, p_span)
        g_lo, p_lo = prefix[(0, j)]
        prefix[(0, i)] = _black_cell(builder, g_span, p_span, g_lo, p_lo)

    # Post-processing: carries and sum bits.
    zero = builder.constant_zero()
    carries = [zero]
    for i in range(width):
        carries.append(prefix[(0, i)][0])
    for i in range(width):
        builder.add_output(f"s{i}", builder.xor2(propagate[i], carries[i]))
    builder.add_output(f"s{width}", builder.buf(carries[width]))

    return AdderCircuit(netlist=builder.build(), width=width, architecture="bka")
