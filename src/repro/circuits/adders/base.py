"""Common wrapper for generated adder netlists."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.signals import int_to_bits


@dataclasses.dataclass(frozen=True)
class AdderCircuit:
    """An adder netlist together with its operand/result port conventions.

    Attributes
    ----------
    netlist:
        The gate-level netlist.  Primary inputs are named ``a0..a{n-1}``,
        ``b0..b{n-1}`` (plus optional constant nets); primary outputs are
        ``s0..s{n}`` where ``s{n}`` is the carry out.
    width:
        Operand width ``n`` in bits.
    architecture:
        Short architecture tag (``"rca"``, ``"bka"``, ...).
    """

    netlist: Netlist
    width: int
    architecture: str

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        inputs = self.netlist.primary_inputs
        outputs = self.netlist.primary_outputs
        for i in range(self.width):
            for port in (f"a{i}", f"b{i}"):
                if port not in inputs:
                    raise ValueError(f"adder netlist is missing input port {port!r}")
        for i in range(self.width + 1):
            if f"s{i}" not in outputs:
                raise ValueError(f"adder netlist is missing output port s{i!r}")

    @property
    def name(self) -> str:
        """Human readable name, e.g. ``"rca8"``."""
        return f"{self.architecture}{self.width}"

    @property
    def output_width(self) -> int:
        """Number of result bits (operand width + carry out)."""
        return self.width + 1

    def input_assignment(self, in1: np.ndarray, in2: np.ndarray) -> dict[str, np.ndarray]:
        """Map operand integer arrays onto the netlist's primary input ports.

        Constant nets (``__const0`` / ``__const1``) are driven with their
        fixed values.  The returned dictionary can be passed directly to the
        logic and timing simulators.
        """
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        if in1_arr.shape != in2_arr.shape:
            raise ValueError("in1 and in2 must have the same shape")
        a_bits = int_to_bits(in1_arr, self.width)
        b_bits = int_to_bits(in2_arr, self.width)
        assignment: dict[str, np.ndarray] = {}
        for i in range(self.width):
            assignment[f"a{i}"] = a_bits[..., i]
            assignment[f"b{i}"] = b_bits[..., i]
        if "__const0" in self.netlist.primary_inputs:
            assignment["__const0"] = np.zeros(in1_arr.shape, dtype=bool)
        if "__const1" in self.netlist.primary_inputs:
            assignment["__const1"] = np.ones(in1_arr.shape, dtype=bool)
        return assignment

    def exact_sum(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Golden reference result (``in1 + in2``) as integers."""
        return np.asarray(in1, dtype=np.int64) + np.asarray(in2, dtype=np.int64)

    def output_ports(self) -> tuple[str, ...]:
        """Result port names in LSB-to-MSB order (``s0`` .. ``s{n}``)."""
        return tuple(f"s{i}" for i in range(self.output_width))
