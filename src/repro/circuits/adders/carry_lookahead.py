"""Carry-Lookahead Adder (CLA) generator (extension).

4-bit lookahead blocks compute their internal carries directly from the
generate/propagate signals; blocks are chained by rippling the block carry.
Included for the architecture-comparison ablation benchmarks.
"""

from __future__ import annotations

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.builder import NetlistBuilder

_BLOCK_SIZE = 4


def _lookahead_block(
    builder: NetlistBuilder,
    a_bits: list[int],
    b_bits: list[int],
    carry_in: int,
) -> tuple[list[int], int]:
    """One lookahead block: returns (sum nets, carry-out net)."""
    size = len(a_bits)
    generate = [builder.and2(a_bits[i], b_bits[i]) for i in range(size)]
    propagate = [builder.xor2(a_bits[i], b_bits[i]) for i in range(size)]
    carries = [carry_in]
    for i in range(size):
        # c_{i+1} = g_i | (p_i & c_i); expanded term by term so every carry is
        # a two-level AND/OR structure fed directly by the block inputs.
        term = builder.and2(propagate[i], carries[i])
        carries.append(builder.or2(generate[i], term))
    sums = [builder.xor2(propagate[i], carries[i]) for i in range(size)]
    return sums, carries[size]


def carry_lookahead_adder(width: int) -> AdderCircuit:
    """Generate a ``width``-bit carry-lookahead adder with 4-bit blocks."""
    if width <= 0:
        raise ValueError("width must be positive")
    builder = NetlistBuilder(f"cla{width}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width)]
    b_nets = [builder.add_input(f"b{i}") for i in range(width)]
    carry = builder.constant_zero()
    bit = 0
    while bit < width:
        block = min(_BLOCK_SIZE, width - bit)
        sums, carry = _lookahead_block(
            builder,
            a_nets[bit : bit + block],
            b_nets[bit : bit + block],
            carry,
        )
        for offset, net in enumerate(sums):
            builder.add_output(f"s{bit + offset}", net)
        bit += block
    builder.add_output(f"s{width}", builder.buf(carry))
    return AdderCircuit(netlist=builder.build(), width=width, architecture="cla")
