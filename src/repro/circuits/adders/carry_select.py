"""Carry-Select Adder (CSLA) generator (extension).

Each block beyond the first computes its sums twice (assuming carry-in 0 and
carry-in 1) and selects the correct set with multiplexers once the real block
carry arrives.  Included for architecture ablations; the duplicated logic
makes it the most power-hungry adder in the set.
"""

from __future__ import annotations

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.builder import NetlistBuilder

_BLOCK_SIZE = 4


def _ripple_block(
    builder: NetlistBuilder,
    a_bits: list[int],
    b_bits: list[int],
    carry_in: int,
) -> tuple[list[int], int]:
    sums: list[int] = []
    carry = carry_in
    for a, b in zip(a_bits, b_bits):
        sum_bit, carry = builder.full_adder(a, b, carry)
        sums.append(sum_bit)
    return sums, carry


def carry_select_adder(width: int) -> AdderCircuit:
    """Generate a ``width``-bit carry-select adder with 4-bit blocks."""
    if width <= 0:
        raise ValueError("width must be positive")
    builder = NetlistBuilder(f"csla{width}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width)]
    b_nets = [builder.add_input(f"b{i}") for i in range(width)]
    zero = builder.constant_zero()
    one = builder.constant_one()

    # First block is a plain ripple block with carry-in 0.
    first = min(_BLOCK_SIZE, width)
    sums, carry = _ripple_block(builder, a_nets[:first], b_nets[:first], zero)
    for offset, net in enumerate(sums):
        builder.add_output(f"s{offset}", net)

    bit = first
    while bit < width:
        block = min(_BLOCK_SIZE, width - bit)
        a_block = a_nets[bit : bit + block]
        b_block = b_nets[bit : bit + block]
        sums0, carry0 = _ripple_block(builder, a_block, b_block, zero)
        sums1, carry1 = _ripple_block(builder, a_block, b_block, one)
        for offset in range(block):
            selected = builder.mux2(sums0[offset], sums1[offset], carry)
            builder.add_output(f"s{bit + offset}", selected)
        carry = builder.mux2(carry0, carry1, carry)
        bit += block
    builder.add_output(f"s{width}", builder.buf(carry))
    return AdderCircuit(netlist=builder.build(), width=width, architecture="csla")
