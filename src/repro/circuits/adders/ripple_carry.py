"""Ripple-Carry Adder (RCA) generator.

The RCA is a serial-prefix adder: a chain of ``n`` full adders where the
carry output of stage ``i`` feeds stage ``i+1``.  Its critical path is the
full carry chain, which is exactly why it is the canonical victim (and
beneficiary) of voltage over-scaling: the longest paths fail first, and long
actual carry chains are rare for random operands.
"""

from __future__ import annotations

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.builder import NetlistBuilder


def ripple_carry_adder(width: int) -> AdderCircuit:
    """Generate an ``width``-bit ripple-carry adder netlist.

    Each stage is a textbook full adder built from two XOR2 gates (sum path)
    and one MAJ3 gate (carry path).  The carry-in of stage 0 is tied to the
    constant-zero net.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    builder = NetlistBuilder(f"rca{width}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width)]
    b_nets = [builder.add_input(f"b{i}") for i in range(width)]
    carry = builder.constant_zero()
    for i in range(width):
        sum_bit, carry = builder.full_adder(a_nets[i], b_nets[i], carry)
        builder.add_output(f"s{i}", sum_bit)
    builder.add_output(f"s{width}", carry)
    return AdderCircuit(netlist=builder.build(), width=width, architecture="rca")
