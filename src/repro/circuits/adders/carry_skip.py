"""Carry-Skip Adder (CSKA) generator (extension).

Ripple blocks augmented with a bypass multiplexer: when every bit of a block
propagates, the incoming carry skips the block entirely.  Included for the
architecture ablations -- its data-dependent critical path interacts with
voltage over-scaling differently from both RCA and BKA.
"""

from __future__ import annotations

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.builder import NetlistBuilder

_BLOCK_SIZE = 4


def carry_skip_adder(width: int) -> AdderCircuit:
    """Generate a ``width``-bit carry-skip adder with 4-bit blocks."""
    if width <= 0:
        raise ValueError("width must be positive")
    builder = NetlistBuilder(f"cska{width}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width)]
    b_nets = [builder.add_input(f"b{i}") for i in range(width)]
    carry = builder.constant_zero()

    bit = 0
    while bit < width:
        block = min(_BLOCK_SIZE, width - bit)
        block_carry_in = carry
        propagates: list[int] = []
        for offset in range(block):
            a = a_nets[bit + offset]
            b = b_nets[bit + offset]
            propagates.append(builder.xor2(a, b))
            sum_bit, carry = builder.full_adder(a, b, carry)
            builder.add_output(f"s{bit + offset}", sum_bit)
        # Block propagate = AND of all bit propagates.
        block_propagate = propagates[0]
        for net in propagates[1:]:
            block_propagate = builder.and2(block_propagate, net)
        # Skip mux: if the whole block propagates, forward the block carry-in.
        carry = builder.mux2(carry, block_carry_in, block_propagate)
        bit += block
    builder.add_output(f"s{width}", builder.buf(carry))
    return AdderCircuit(netlist=builder.build(), width=width, architecture="cska")
