"""Speculative adder generator: window-bounded carry computation (extension).

The design-space exploration subsystem (:mod:`repro.explore`) searches over a
*speculation window* axis: instead of propagating the carry through the full
operand width, the carry into bit ``i`` is computed from at most ``window``
lower-order bit positions (an ACA/ETAII-style almost-correct adder).  This is
the *structural* twin of the functional
:class:`repro.baselines.static_adders.SpeculativeSegmentAdder`: every carry
chain longer than the window is broken by construction, which shortens the
critical path (the longest timing path spans only ``window + 1`` bit
positions) at the price of a design-time error floor on rare long-chain
operands.

Under voltage over-scaling both error sources combine: the window sets the
functional floor, the operating triad adds timing errors on top -- exactly
the architecture × window × triad trade-off the exploration subsystem maps.
"""

from __future__ import annotations

import dataclasses

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.builder import NetlistBuilder

#: Architecture tag used by speculative adders ("speculative adder").
SPECULATIVE_ARCHITECTURE = "spa"


@dataclasses.dataclass(frozen=True)
class SpeculativeAdderCircuit(AdderCircuit):
    """An :class:`AdderCircuit` with a bounded carry look-back window.

    Attributes
    ----------
    window:
        Carry look-back depth in bit positions.  ``window >= width`` makes
        the adder functionally exact (and structurally identical to the
        ripple-carry adder).
    """

    window: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        super().__post_init__()

    @property
    def name(self) -> str:
        """Name encoding width and window, e.g. ``"spa8w4"``."""
        return f"{self.architecture}{self.width}w{self.window}"


def speculative_adder(width: int, window: int) -> SpeculativeAdderCircuit:
    """Generate a ``width``-bit adder with a ``window``-bit carry look-back.

    For each bit ``i`` the carry-in is produced by a private ripple chain
    over bits ``[max(0, i - window) .. i - 1]`` starting from carry 0; bits
    within ``window`` of the LSB therefore receive their exact carry, higher
    bits a speculated one.  The sum is ``s_i = (a_i ^ b_i) ^ c_i`` and the
    carry-out is the chain ending at the MSB.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if window <= 0:
        raise ValueError("window must be positive")
    builder = NetlistBuilder(f"{SPECULATIVE_ARCHITECTURE}{width}w{window}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width)]
    b_nets = [builder.add_input(f"b{i}") for i in range(width)]
    propagate = [builder.xor2(a_nets[i], b_nets[i]) for i in range(width)]
    zero = builder.constant_zero()

    def lookback_carry(position: int) -> int:
        """Carry into ``position`` from a window-bounded ripple chain."""
        start = max(0, position - window)
        carry = zero
        for bit in range(start, position):
            carry = builder.maj3(a_nets[bit], b_nets[bit], carry)
        return carry

    # Exact carries are shared while the chain start stays pinned at bit 0;
    # beyond the window each bit needs its own (shifted) look-back chain.
    shared_carry = zero
    for i in range(width):
        carry = shared_carry if i <= window else lookback_carry(i)
        builder.add_output(f"s{i}", builder.xor2(propagate[i], carry))
        if i < window:
            shared_carry = builder.maj3(a_nets[i], b_nets[i], shared_carry)
    carry_out = shared_carry if width <= window else lookback_carry(width)
    builder.add_output(f"s{width}", builder.buf(carry_out))

    return SpeculativeAdderCircuit(
        netlist=builder.build(),
        width=width,
        architecture=SPECULATIVE_ARCHITECTURE,
        window=window,
    )
