"""Kogge-Stone Adder (KSA) generator (extension).

The Kogge-Stone adder is the other classical parallel-prefix topology: it has
minimal logic depth (``log2(n)`` prefix levels) at the cost of much higher
wiring and cell count than Brent-Kung.  It is not evaluated in the paper but
is included as an extension so the ablation benchmarks can compare how the
prefix topology shapes the BER/energy trade-off under voltage over-scaling.
"""

from __future__ import annotations

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.builder import NetlistBuilder


def kogge_stone_adder(width: int) -> AdderCircuit:
    """Generate a ``width``-bit Kogge-Stone parallel-prefix adder netlist."""
    if width <= 0:
        raise ValueError("width must be positive")
    builder = NetlistBuilder(f"ksa{width}")
    a_nets = [builder.add_input(f"a{i}") for i in range(width)]
    b_nets = [builder.add_input(f"b{i}") for i in range(width)]

    generate = [builder.and2(a_nets[i], b_nets[i]) for i in range(width)]
    propagate = [builder.xor2(a_nets[i], b_nets[i]) for i in range(width)]

    # group[i] = (G, P) of the span ending at bit i with the current distance.
    group_g = list(generate)
    group_p = list(propagate)
    distance = 1
    while distance < width:
        next_g = list(group_g)
        next_p = list(group_p)
        for i in range(distance, width):
            carry_term = builder.and2(group_p[i], group_g[i - distance])
            next_g[i] = builder.or2(group_g[i], carry_term)
            next_p[i] = builder.and2(group_p[i], group_p[i - distance])
        group_g = next_g
        group_p = next_p
        distance *= 2

    zero = builder.constant_zero()
    carries = [zero] + group_g
    for i in range(width):
        builder.add_output(f"s{i}", builder.xor2(propagate[i], carries[i]))
    builder.add_output(f"s{width}", builder.buf(carries[width]))
    return AdderCircuit(netlist=builder.build(), width=width, architecture="ksa")
