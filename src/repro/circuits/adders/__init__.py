"""Adder netlist generators.

The paper characterises the two most common datapath adders:

* Ripple-Carry Adder (RCA) -- serial prefix, ``n`` full-adder stages.
* Brent-Kung Adder (BKA)   -- parallel prefix, ``2*log2(n) - 1`` levels.

Both are generated here as structural netlists over the cell set of
:mod:`repro.circuits.cells`.  Additional parallel-prefix and block adders
(Kogge-Stone, carry-lookahead, carry-select, carry-skip) are provided as
extensions used by the ablation benchmarks.
"""

from repro.circuits.adders.base import AdderCircuit
from repro.circuits.adders.ripple_carry import ripple_carry_adder
from repro.circuits.adders.brent_kung import brent_kung_adder
from repro.circuits.adders.kogge_stone import kogge_stone_adder
from repro.circuits.adders.carry_lookahead import carry_lookahead_adder
from repro.circuits.adders.carry_select import carry_select_adder
from repro.circuits.adders.carry_skip import carry_skip_adder
from repro.circuits.adders.speculative import (
    SPECULATIVE_ARCHITECTURE,
    SpeculativeAdderCircuit,
    speculative_adder,
)

#: Registry mapping architecture names to generator callables.
ADDER_GENERATORS = {
    "rca": ripple_carry_adder,
    "bka": brent_kung_adder,
    "ksa": kogge_stone_adder,
    "cla": carry_lookahead_adder,
    "csla": carry_select_adder,
    "cska": carry_skip_adder,
}


def build_adder(architecture: str, width: int) -> AdderCircuit:
    """Build an adder by architecture name (``"rca"``, ``"bka"``, ...).

    Parameters
    ----------
    architecture:
        One of :data:`ADDER_GENERATORS`.
    width:
        Operand width in bits.
    """
    try:
        generator = ADDER_GENERATORS[architecture.lower()]
    except KeyError:
        raise ValueError(
            f"unknown adder architecture {architecture!r}; "
            f"available: {', '.join(sorted(ADDER_GENERATORS))}"
        ) from None
    return generator(width)


def parse_adder_name(name: str) -> tuple[str, int]:
    """Split a benchmark-style adder name into ``(architecture, width)``.

    ``"rca8"`` -> ``("rca", 8)``, ``"bka16"`` -> ``("bka", 16)`` ...  This is
    the inverse of the ``AdderCircuit.name`` convention, used by the CLI and
    by the sweep orchestrator to rebuild circuits inside worker processes.
    """
    for architecture in sorted(ADDER_GENERATORS, key=len, reverse=True):
        if name.lower().startswith(architecture):
            suffix = name[len(architecture) :]
            if suffix.isdigit():
                return architecture, int(suffix)
    raise ValueError(
        f"cannot parse adder name {name!r} (expected e.g. rca8, bka16)"
    )


__all__ = [
    "AdderCircuit",
    "SpeculativeAdderCircuit",
    "SPECULATIVE_ARCHITECTURE",
    "ripple_carry_adder",
    "brent_kung_adder",
    "kogge_stone_adder",
    "carry_lookahead_adder",
    "carry_select_adder",
    "carry_skip_adder",
    "speculative_adder",
    "ADDER_GENERATORS",
    "build_adder",
    "parse_adder_name",
]
