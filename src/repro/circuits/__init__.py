"""Gate-level circuit substrate.

The paper characterises structural (gate-level) adder netlists produced by a
synthesis tool.  This package re-creates that substrate in Python:

* :mod:`repro.circuits.cells`    -- combinational cell set and their boolean
  functions (vectorised over numpy arrays).
* :mod:`repro.circuits.netlist`  -- the netlist graph (nets, gates, primary
  I/O, topological order, fanout).
* :mod:`repro.circuits.builder`  -- a small fluent builder used by all the
  generators.
* :mod:`repro.circuits.adders`   -- adder generators: ripple-carry (RCA) and
  Brent-Kung (BKA) as in the paper, plus Kogge-Stone, carry-lookahead,
  carry-select and carry-skip extensions.
* :mod:`repro.circuits.multipliers` -- array multiplier built from the same
  cells (used by the application examples).
* :mod:`repro.circuits.operators` -- the canonical operator-spec grammar
  (``rca8`` ... ``spa16w4``) shared by the design-space module, the typed
  job API and the CLI.
* :mod:`repro.circuits.signals`  -- integer <-> bit-vector conversions.
* :mod:`repro.circuits.validation` -- structural sanity checks.
"""

from repro.circuits.cells import GateType, evaluate_gate, GATE_FUNCTIONS
from repro.circuits.netlist import Gate, Netlist
from repro.circuits.builder import NetlistBuilder
from repro.circuits.signals import (
    int_to_bits,
    bits_to_int,
    random_operands,
    operand_bit_matrix,
)
from repro.circuits.adders import (
    AdderCircuit,
    SpeculativeAdderCircuit,
    ripple_carry_adder,
    brent_kung_adder,
    kogge_stone_adder,
    carry_lookahead_adder,
    carry_select_adder,
    carry_skip_adder,
    speculative_adder,
    ADDER_GENERATORS,
    build_adder,
)
from repro.circuits.multipliers import array_multiplier, MultiplierCircuit
from repro.circuits.operators import (
    OperatorSpec,
    parse_circuit_spec,
    parse_windows,
)
from repro.circuits.validation import validate_netlist, NetlistValidationError

__all__ = [
    "GateType",
    "evaluate_gate",
    "GATE_FUNCTIONS",
    "Gate",
    "Netlist",
    "NetlistBuilder",
    "int_to_bits",
    "bits_to_int",
    "random_operands",
    "operand_bit_matrix",
    "AdderCircuit",
    "SpeculativeAdderCircuit",
    "speculative_adder",
    "ripple_carry_adder",
    "brent_kung_adder",
    "kogge_stone_adder",
    "carry_lookahead_adder",
    "carry_select_adder",
    "carry_skip_adder",
    "ADDER_GENERATORS",
    "build_adder",
    "array_multiplier",
    "MultiplierCircuit",
    "OperatorSpec",
    "parse_circuit_spec",
    "parse_windows",
    "validate_netlist",
    "NetlistValidationError",
]
