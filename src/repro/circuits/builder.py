"""Fluent netlist builder used by the circuit generators.

The builder hands out net identifiers, records gate instances and finally
produces an immutable :class:`~repro.circuits.netlist.Netlist`.  Generators
read naturally::

    builder = NetlistBuilder("rca8")
    a = [builder.add_input(f"a{i}") for i in range(8)]
    b = [builder.add_input(f"b{i}") for i in range(8)]
    carry = builder.constant_zero()
    for i in range(8):
        sum_bit, carry = full_adder(builder, a[i], b[i], carry)
        builder.add_output(f"s{i}", sum_bit)
    builder.add_output("s8", carry)
    netlist = builder.build()
"""

from __future__ import annotations

from repro.circuits.cells import GATE_ARITY, GateType
from repro.circuits.netlist import Gate, Netlist


class NetlistBuilder:
    """Incrementally assemble a :class:`~repro.circuits.netlist.Netlist`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._net_count = 0
        self._primary_inputs: dict[str, int] = {}
        self._primary_outputs: dict[str, int] = {}
        self._gates: list[Gate] = []
        self._gate_counter = 0
        self._zero_net: int | None = None
        self._one_net: int | None = None

    # -- nets and ports --------------------------------------------------------

    def new_net(self) -> int:
        """Allocate and return a fresh net identifier."""
        net = self._net_count
        self._net_count += 1
        return net

    def add_input(self, name: str) -> int:
        """Declare a primary input and return its net."""
        if name in self._primary_inputs:
            raise ValueError(f"duplicate primary input {name!r}")
        net = self.new_net()
        self._primary_inputs[name] = net
        return net

    def add_output(self, name: str, net: int) -> None:
        """Declare a primary output driven by ``net``."""
        if name in self._primary_outputs:
            raise ValueError(f"duplicate primary output {name!r}")
        if not 0 <= net < self._net_count:
            raise ValueError(f"primary output {name!r} references unknown net {net}")
        self._primary_outputs[name] = net

    def constant_zero(self) -> int:
        """Net tied to logic 0.

        Implemented as an extra primary input named ``__const0`` so the
        simulators can drive it; the adder wrappers hide it from users.
        """
        if self._zero_net is None:
            self._zero_net = self.add_input("__const0")
        return self._zero_net

    def constant_one(self) -> int:
        """Net tied to logic 1 (primary input ``__const1``)."""
        if self._one_net is None:
            self._one_net = self.add_input("__const1")
        return self._one_net

    # -- gates -----------------------------------------------------------------

    def add_gate(self, gate_type: GateType, *inputs: int, name: str = "") -> int:
        """Instantiate a gate, returning the net it drives."""
        expected = GATE_ARITY[gate_type]
        if len(inputs) != expected:
            raise ValueError(
                f"{gate_type.value} expects {expected} inputs, got {len(inputs)}"
            )
        for net in inputs:
            if not 0 <= net < self._net_count:
                raise ValueError(f"gate input references unknown net {net}")
        output = self.new_net()
        instance_name = name or f"{gate_type.value.lower()}_{self._gate_counter}"
        self._gate_counter += 1
        self._gates.append(Gate(gate_type, tuple(inputs), output, instance_name))
        return output

    # Convenience wrappers keep generator code close to a structural HDL.

    def inv(self, a: int, name: str = "") -> int:
        """Inverter."""
        return self.add_gate(GateType.INV, a, name=name)

    def buf(self, a: int, name: str = "") -> int:
        """Buffer."""
        return self.add_gate(GateType.BUF, a, name=name)

    def and2(self, a: int, b: int, name: str = "") -> int:
        """2-input AND."""
        return self.add_gate(GateType.AND2, a, b, name=name)

    def or2(self, a: int, b: int, name: str = "") -> int:
        """2-input OR."""
        return self.add_gate(GateType.OR2, a, b, name=name)

    def nand2(self, a: int, b: int, name: str = "") -> int:
        """2-input NAND."""
        return self.add_gate(GateType.NAND2, a, b, name=name)

    def nor2(self, a: int, b: int, name: str = "") -> int:
        """2-input NOR."""
        return self.add_gate(GateType.NOR2, a, b, name=name)

    def xor2(self, a: int, b: int, name: str = "") -> int:
        """2-input XOR."""
        return self.add_gate(GateType.XOR2, a, b, name=name)

    def xnor2(self, a: int, b: int, name: str = "") -> int:
        """2-input XNOR."""
        return self.add_gate(GateType.XNOR2, a, b, name=name)

    def maj3(self, a: int, b: int, c: int, name: str = "") -> int:
        """Majority-of-three (full-adder carry)."""
        return self.add_gate(GateType.MAJ3, a, b, c, name=name)

    def mux2(self, a: int, b: int, select: int, name: str = "") -> int:
        """2:1 multiplexer returning ``b`` when ``select`` is 1, else ``a``."""
        return self.add_gate(GateType.MUX2, a, b, select, name=name)

    def aoi21(self, a: int, b: int, c: int, name: str = "") -> int:
        """AND-OR-INVERT: ``not((a and b) or c)``."""
        return self.add_gate(GateType.AOI21, a, b, c, name=name)

    def oai21(self, a: int, b: int, c: int, name: str = "") -> int:
        """OR-AND-INVERT: ``not((a or b) and c)``."""
        return self.add_gate(GateType.OAI21, a, b, c, name=name)

    # -- composite structural helpers -------------------------------------------

    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        """Half adder returning ``(sum, carry)`` nets."""
        return self.xor2(a, b), self.and2(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Full adder (XOR/XOR sum, MAJ3 carry) returning ``(sum, carry)``."""
        partial = self.xor2(a, b)
        sum_bit = self.xor2(partial, cin)
        carry = self.maj3(a, b, cin)
        return sum_bit, carry

    # -- finalisation -----------------------------------------------------------

    @property
    def gate_count(self) -> int:
        """Number of gates instantiated so far."""
        return len(self._gates)

    def build(self) -> Netlist:
        """Produce the immutable netlist (validating structure on the way)."""
        if not self._primary_outputs:
            raise ValueError("netlist has no primary outputs")
        return Netlist(
            name=self._name,
            net_count=self._net_count,
            primary_inputs=self._primary_inputs,
            primary_outputs=self._primary_outputs,
            gates=self._gates,
        )
