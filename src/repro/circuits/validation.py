"""Structural validation of netlists.

The generators are trusted code, but experiments compose netlists with
user-provided widths and the property-based tests mutate structures; this
module gives a single entry point that checks the invariants every simulator
relies on.
"""

from __future__ import annotations

from repro.circuits.cells import GATE_ARITY
from repro.circuits.netlist import Netlist


class NetlistValidationError(ValueError):
    """Raised when a netlist violates a structural invariant."""


def validate_netlist(netlist: Netlist) -> None:
    """Validate the structural invariants of a netlist.

    Checks performed (in addition to those the :class:`Netlist` constructor
    already enforces -- single driver per net, no combinational loops):

    * every gate input is driven (by a primary input or another gate),
    * every gate type has the right number of input pins,
    * every primary output is reachable from at least one primary input,
    * there are no floating nets that neither drive nor are driven.

    Raises
    ------
    NetlistValidationError
        If any invariant is violated.
    """
    driven: set[int] = set(netlist.input_nets)
    for gate in netlist.gates:
        driven.add(gate.output)

    for gate in netlist.gates:
        expected = GATE_ARITY[gate.gate_type]
        if len(gate.inputs) != expected:
            raise NetlistValidationError(
                f"gate {gate.name!r} ({gate.gate_type.value}) has "
                f"{len(gate.inputs)} inputs, expected {expected}"
            )
        for net in gate.inputs:
            if net not in driven:
                raise NetlistValidationError(
                    f"gate {gate.name!r} input net {net} is undriven"
                )

    for port, net in netlist.primary_outputs.items():
        if net not in driven:
            raise NetlistValidationError(f"primary output {port!r} (net {net}) is undriven")

    used: set[int] = set(netlist.output_nets)
    for gate in netlist.gates:
        used.update(gate.inputs)
    floating = [
        net
        for net in range(netlist.net_count)
        if net not in used and net not in netlist.input_nets and net in driven
    ]
    # Gate outputs that drive nothing are tolerated only if they are not the
    # majority of the design (generators may leave a few dangling carries).
    if len(floating) > max(4, netlist.gate_count // 4):
        raise NetlistValidationError(
            f"netlist {netlist.name!r} has {len(floating)} floating driven nets"
        )

    reachable = _reachable_from_inputs(netlist)
    for port, net in netlist.primary_outputs.items():
        if net not in reachable:
            raise NetlistValidationError(
                f"primary output {port!r} is not reachable from any primary input"
            )


def _reachable_from_inputs(netlist: Netlist) -> set[int]:
    """Set of nets reachable (transitively) from the primary inputs."""
    reachable: set[int] = set(netlist.input_nets)
    for gate in netlist.topological_gates:
        if any(net in reachable for net in gate.inputs):
            reachable.add(gate.output)
    return reachable
