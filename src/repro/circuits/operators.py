"""Canonical operator specifications and name parsing.

Every front-end used to carry its own copy of the operator-name grammar:
``cli.py`` had ``_parse_adder_name``/``_parse_windows``, the design-space
module re-validated ``spa<width>w<window>`` structure in
:class:`~repro.explore.space.OperatorCandidate`, and the sweep orchestrator
re-derived generator coordinates from circuit names.  This module is the
single source of truth: an :class:`OperatorSpec` is the validated
``(architecture, width, window)`` triple, :func:`parse_circuit_spec` is the
one parser of benchmark-style names (``"rca8"``, ``"bka16"``, ``"spa16w4"``
...), and :func:`parse_windows` is the one reader of speculation-window
tokens.  Malformed names fail here, at job-construction time, with a clear
message -- not deep inside a sweep.

The implementation lives in the circuits layer (right beside the adder
generators it lowers to) so every consumer -- the design-space module, the
job layer, the CLI -- depends strictly downward; the typed API re-exports
it as :mod:`repro.api.spec`.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Mapping, Sequence

from repro.circuits.adders import (
    ADDER_GENERATORS,
    AdderCircuit,
    SPECULATIVE_ARCHITECTURE,
    build_adder,
    parse_adder_name,
    speculative_adder,
)

#: Grammar of the speculative family's names: ``spa<width>w<window>``.
_SPECULATIVE_NAME = re.compile(
    rf"^{SPECULATIVE_ARCHITECTURE}(\d+)w(\d+)$"
)


@dataclasses.dataclass(frozen=True, order=True)
class OperatorSpec:
    """Validated generator coordinates of one operator circuit.

    Attributes
    ----------
    architecture:
        Adder architecture tag (``"rca"`` ... or ``"spa"`` for the
        speculative window-bounded family).
    width:
        Operand width in bits.
    window:
        Carry-speculation window; ``None`` for non-speculative operators.
    """

    architecture: str
    width: int
    window: int | None = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.window is None:
            if self.architecture not in ADDER_GENERATORS:
                raise ValueError(
                    f"unknown adder architecture {self.architecture!r}; "
                    f"available: {', '.join(sorted(ADDER_GENERATORS))}"
                )
        else:
            if self.architecture != SPECULATIVE_ARCHITECTURE:
                raise ValueError(
                    "speculative candidates use architecture "
                    f"{SPECULATIVE_ARCHITECTURE!r}, got {self.architecture!r}"
                )
            if not 0 < self.window < self.width:
                raise ValueError("window must lie within (0, width)")

    @property
    def name(self) -> str:
        """The operator circuit's name (``"rca8"``, ``"spa16w4"`` ...)."""
        if self.window is None:
            return f"{self.architecture}{self.width}"
        return f"{self.architecture}{self.width}w{self.window}"

    def build(self) -> AdderCircuit:
        """Lower the spec to its gate-level circuit."""
        if self.window is not None:
            return speculative_adder(self.width, self.window)
        return build_adder(self.architecture, self.width)

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation (the parseable name)."""
        return {"operator": self.name}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "OperatorSpec":
        """Inverse of :meth:`to_json`."""
        return parse_circuit_spec(str(data["operator"]))


def parse_circuit_spec(name: str) -> OperatorSpec:
    """Parse a benchmark-style operator name into an :class:`OperatorSpec`.

    Accepts the plain-adder convention (``"rca8"``, ``"bka16"`` ...) and the
    speculative family (``"spa16w4"``).  Malformed names -- including
    structurally broken speculative names such as ``"spa16"``, ``"spaw4"``
    or windows that do not fit the width (``"spa8w8"``) -- raise
    :class:`ValueError` with a message that names the expected grammar.
    """
    token = name.strip().lower()
    if token.startswith(SPECULATIVE_ARCHITECTURE):
        match = _SPECULATIVE_NAME.match(token)
        if match is None:
            raise ValueError(
                f"cannot parse speculative adder name {name!r} "
                f"(expected {SPECULATIVE_ARCHITECTURE}<width>w<window>, "
                "e.g. spa16w4)"
            )
        width = int(match.group(1))
        window = int(match.group(2))
        try:
            return OperatorSpec(SPECULATIVE_ARCHITECTURE, width, window)
        except ValueError as error:
            raise ValueError(f"invalid operator name {name!r}: {error}") from None
    architecture, width = parse_adder_name(token)
    return OperatorSpec(architecture, width)


def parse_windows(tokens: Sequence[str | int | None]) -> tuple[int | None, ...]:
    """Parse speculation-window tokens (``"none"``/``"off"`` or integers).

    The one reader of the window axis shared by the CLI, the job layer and
    the batch file format; integers and ``None`` pass through unchanged.
    """
    windows: list[int | None] = []
    for token in tokens:
        if token is None or isinstance(token, int):
            windows.append(token)
            continue
        if str(token).lower() in ("none", "off"):
            windows.append(None)
            continue
        try:
            windows.append(int(token))
        except ValueError:
            raise ValueError(
                f"invalid speculation window {token!r} (expected 'none' or an integer)"
            ) from None
    return tuple(windows)
