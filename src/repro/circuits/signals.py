"""Integer <-> bit-vector conversions used throughout the simulators.

Conventions:

* Bit 0 is the least-significant bit (LSB); arrays are ordered LSB first.
* Operand matrices have shape ``(n_vectors, n_bits)``; a batch of integers is
  converted column by column so the simulators can work on one bit position
  at a time.
"""

from __future__ import annotations

import numpy as np


def int_to_bits(values: np.ndarray | int, n_bits: int) -> np.ndarray:
    """Convert unsigned integers to an LSB-first boolean bit matrix.

    Parameters
    ----------
    values:
        Scalar or array of non-negative integers, each < ``2**n_bits``.
    n_bits:
        Width of the produced bit vectors.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``values.shape + (n_bits,)``.
    """
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    array = np.asarray(values, dtype=np.int64)
    if np.any(array < 0):
        raise ValueError("values must be non-negative")
    if np.any(array >= (1 << n_bits)):
        raise ValueError(f"values must be < 2**{n_bits}")
    shifts = np.arange(n_bits, dtype=np.int64).reshape((n_bits,) + (1,) * array.ndim)
    # Bit-major layout: each bit position is a contiguous slab, so the
    # per-bit-position slices the simulators take (``bits[..., i]``) are
    # contiguous arrays that pack/copy at full memory bandwidth.
    return np.moveaxis(((array[None, ...] >> shifts) & 1).astype(bool), 0, -1)


def bits_to_int(bits: np.ndarray) -> np.ndarray:
    """Convert an LSB-first boolean bit matrix back to unsigned integers.

    The last axis is interpreted as the bit axis.
    """
    array = np.asarray(bits, dtype=np.int64)
    n_bits = array.shape[-1]
    if n_bits > 62:
        raise ValueError("bits_to_int supports at most 62 bits")
    weights = (np.int64(1) << np.arange(n_bits, dtype=np.int64))
    return (array * weights).sum(axis=-1)


def random_operands(
    n_vectors: int,
    n_bits: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly random operand pairs for an ``n_bits`` adder.

    Returns two integer arrays of shape ``(n_vectors,)``.
    """
    if n_vectors <= 0:
        raise ValueError("n_vectors must be positive")
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    high = 1 << n_bits
    in1 = rng.integers(0, high, size=n_vectors, dtype=np.int64)
    in2 = rng.integers(0, high, size=n_vectors, dtype=np.int64)
    return in1, in2


def operand_bit_matrix(
    in1: np.ndarray,
    in2: np.ndarray,
    n_bits: int,
) -> np.ndarray:
    """Pack two operand arrays into the primary-input matrix of an adder.

    The adder netlists declare their primary inputs in the order
    ``a[0..n-1], b[0..n-1]``; the returned matrix has shape
    ``(n_vectors, 2 * n_bits)`` following that order.
    """
    a_bits = int_to_bits(np.asarray(in1), n_bits)
    b_bits = int_to_bits(np.asarray(in2), n_bits)
    if a_bits.shape != b_bits.shape:
        raise ValueError("in1 and in2 must have the same shape")
    return np.concatenate([a_bits, b_bits], axis=-1)
