"""Netlist graph: nets, gates, primary I/O, topological order and fanout.

A :class:`Netlist` is a directed acyclic graph of gate instances connected by
integer-identified nets.  It is deliberately simple -- only what the logic
simulator, the VOS timing simulator and the synthesis reports need:

* nets are integers ``0 .. net_count - 1``; a net has exactly one driver
  (either a primary input or a gate output),
* gates reference their input and output nets and carry a
  :class:`~repro.circuits.cells.GateType`,
* the topological order of gates is computed once and cached, since every
  simulation walks the gates in that order.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable, Iterator, Mapping, Sequence

from repro.circuits.cells import GATE_ARITY, GateType


@dataclasses.dataclass(frozen=True)
class Gate:
    """A combinational gate instance.

    Attributes
    ----------
    gate_type:
        Cell type of the instance.
    inputs:
        Net identifiers of the input pins, in pin order.
    output:
        Net identifier driven by the gate.
    name:
        Optional instance name, useful in reports and error messages.
    """

    gate_type: GateType
    inputs: tuple[int, ...]
    output: int
    name: str = ""

    def __post_init__(self) -> None:
        expected = GATE_ARITY[self.gate_type]
        if len(self.inputs) != expected:
            raise ValueError(
                f"{self.gate_type.value} gate {self.name!r} expects {expected} "
                f"inputs, got {len(self.inputs)}"
            )
        if any(net < 0 for net in self.inputs) or self.output < 0:
            raise ValueError("net identifiers must be non-negative")


class Netlist:
    """Gate-level combinational netlist.

    Parameters
    ----------
    name:
        Design name (e.g. ``"rca8"``).
    net_count:
        Total number of nets.
    primary_inputs:
        Mapping from input port name to net identifier, in declaration order.
    primary_outputs:
        Mapping from output port name to net identifier, in declaration order.
    gates:
        Gate instances.  They need not be in topological order; the
        constructor computes and caches a valid order.
    """

    def __init__(
        self,
        name: str,
        net_count: int,
        primary_inputs: Mapping[str, int],
        primary_outputs: Mapping[str, int],
        gates: Sequence[Gate],
    ) -> None:
        if net_count <= 0:
            raise ValueError("net_count must be positive")
        self._name = name
        self._net_count = net_count
        self._primary_inputs = dict(primary_inputs)
        self._primary_outputs = dict(primary_outputs)
        self._gates = tuple(gates)
        self._check_structure()
        self._topological_gates = self._topological_sort()
        self._fanout_counts = self._compute_fanout()
        self._logic_levels = self._compute_levels()
        self._level_groups: tuple[tuple[int, GateType, tuple[int, ...]], ...] | None = None

    # -- construction helpers -------------------------------------------------

    def _check_structure(self) -> None:
        drivers: dict[int, str] = {}
        for port, net in self._primary_inputs.items():
            if net in drivers:
                raise ValueError(f"net {net} has multiple drivers ({drivers[net]}, {port})")
            drivers[net] = f"input {port}"
        for gate in self._gates:
            if gate.output in drivers:
                raise ValueError(
                    f"net {gate.output} has multiple drivers "
                    f"({drivers[gate.output]}, gate {gate.name or gate.gate_type.value})"
                )
            drivers[gate.output] = f"gate {gate.name or gate.gate_type.value}"
        all_nets = set(range(self._net_count))
        for gate in self._gates:
            for net in (*gate.inputs, gate.output):
                if net not in all_nets:
                    raise ValueError(f"gate references undeclared net {net}")
        for port, net in {**self._primary_inputs, **self._primary_outputs}.items():
            if net not in all_nets:
                raise ValueError(f"port {port} references undeclared net {net}")
        for port, net in self._primary_outputs.items():
            if net not in drivers:
                raise ValueError(f"primary output {port} (net {net}) is undriven")

    def _topological_sort(self) -> tuple[Gate, ...]:
        """Kahn's algorithm over the gate graph (nets are the edges)."""
        driver_gate: dict[int, int] = {}
        for index, gate in enumerate(self._gates):
            driver_gate[gate.output] = index
        dependencies: list[set[int]] = [set() for _ in self._gates]
        dependents: list[set[int]] = [set() for _ in self._gates]
        for index, gate in enumerate(self._gates):
            for net in gate.inputs:
                producer = driver_gate.get(net)
                if producer is not None:
                    dependencies[index].add(producer)
                    dependents[producer].add(index)
        in_degree = [len(deps) for deps in dependencies]
        ready = deque(i for i, degree in enumerate(in_degree) if degree == 0)
        order: list[Gate] = []
        while ready:
            index = ready.popleft()
            order.append(self._gates[index])
            for dependent in dependents[index]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._gates):
            raise ValueError(f"netlist {self._name!r} contains a combinational loop")
        return tuple(order)

    def _compute_fanout(self) -> tuple[int, ...]:
        counts = [0] * self._net_count
        for gate in self._gates:
            for net in gate.inputs:
                counts[net] += 1
        for net in self._primary_outputs.values():
            counts[net] += 1
        return tuple(counts)

    def _compute_levels(self) -> tuple[int, ...]:
        """Logic level (depth in gates) of every net; primary inputs are 0."""
        levels = [0] * self._net_count
        for gate in self._topological_gates:
            levels[gate.output] = 1 + max(levels[net] for net in gate.inputs)
        return tuple(levels)

    # -- public accessors ------------------------------------------------------

    @property
    def name(self) -> str:
        """Design name."""
        return self._name

    @property
    def net_count(self) -> int:
        """Total number of nets in the design."""
        return self._net_count

    @property
    def primary_inputs(self) -> dict[str, int]:
        """Ordered mapping of primary input port names to net ids."""
        return dict(self._primary_inputs)

    @property
    def primary_outputs(self) -> dict[str, int]:
        """Ordered mapping of primary output port names to net ids."""
        return dict(self._primary_outputs)

    @property
    def input_nets(self) -> tuple[int, ...]:
        """Net ids of the primary inputs, in declaration order."""
        return tuple(self._primary_inputs.values())

    @property
    def output_nets(self) -> tuple[int, ...]:
        """Net ids of the primary outputs, in declaration order."""
        return tuple(self._primary_outputs.values())

    @property
    def gates(self) -> tuple[Gate, ...]:
        """Gates in their original declaration order."""
        return self._gates

    @property
    def topological_gates(self) -> tuple[Gate, ...]:
        """Gates sorted so every gate appears after all its drivers."""
        return self._topological_gates

    @property
    def gate_count(self) -> int:
        """Number of gate instances."""
        return len(self._gates)

    @property
    def logic_depth(self) -> int:
        """Maximum number of gates on any input-to-output path."""
        if not self._gates:
            return 0
        return max(self._logic_levels[net] for net in self.output_nets)

    def fanout(self, net: int) -> int:
        """Number of gate inputs (plus primary outputs) the net drives."""
        return self._fanout_counts[net]

    def logic_level(self, net: int) -> int:
        """Depth of the net in gate levels (primary inputs are level 0)."""
        return self._logic_levels[net]

    def gate_type_histogram(self) -> dict[str, int]:
        """Count of gate instances per cell type (for synthesis reports)."""
        histogram: dict[str, int] = {}
        for gate in self._gates:
            histogram[gate.gate_type.value] = histogram.get(gate.gate_type.value, 0) + 1
        return dict(sorted(histogram.items()))

    @property
    def topological_gate_levels(self) -> tuple[int, ...]:
        """Logic level of each gate's output, indexed like ``topological_gates``."""
        return tuple(self._logic_levels[gate.output] for gate in self._topological_gates)

    def level_groups(self) -> tuple[tuple[int, GateType, tuple[int, ...]], ...]:
        """Same-typed gates grouped per evaluation wave, as topological indices.

        Returns ``(wave, gate_type, topo_indices)`` triples ordered by wave
        then gate-type name.  All inputs of a wave-``W`` gate settle in waves
        below ``W``, so evaluating the groups in this order is a valid
        schedule in which every group can be evaluated *at once*.  This is the
        structural hook the compiled simulation engine builds its per-group
        index arrays from; it is computed once and cached on the netlist.

        Waves are logic levels with one scheduling refinement: *sink* gates
        (gates whose output drives no other gate, only primary outputs) are
        deferred to a single final wave.  Nothing depends on them, so the
        deferral is always legal, and it merges gates that plain
        level-grouping would scatter -- e.g. the sum XORs of a ripple-carry
        adder sit at eight different levels along the carry chain but form
        one vectorisable group at the end.
        """
        if self._level_groups is None:
            consumed = [0] * self._net_count
            for gate in self._gates:
                for net in gate.inputs:
                    consumed[net] += 1
            max_level = max(
                (
                    self._logic_levels[gate.output]
                    for gate in self._gates
                    if consumed[gate.output] > 0
                ),
                default=0,
            )
            buckets: dict[tuple[int, str], list[int]] = {}
            for index, gate in enumerate(self._topological_gates):
                wave = (
                    max_level + 1
                    if consumed[gate.output] == 0
                    else self._logic_levels[gate.output]
                )
                buckets.setdefault((wave, gate.gate_type.value), []).append(index)
            self._level_groups = tuple(
                (wave, GateType(type_name), tuple(indices))
                for (wave, type_name), indices in sorted(buckets.items())
            )
        return self._level_groups

    def iter_gates_by_level(self) -> Iterator[Gate]:
        """Iterate gates ordered by logic level then declaration order."""
        return iter(
            sorted(self._topological_gates, key=lambda gate: self._logic_levels[gate.output])
        )

    def __repr__(self) -> str:
        return (
            f"Netlist(name={self._name!r}, gates={self.gate_count}, "
            f"nets={self._net_count}, depth={self.logic_depth})"
        )


def merge_port_order(ports: Iterable[str]) -> tuple[str, ...]:
    """Return port names as a tuple, preserving order and rejecting duplicates.

    Helper shared by the generators when assembling primary I/O mappings.
    """
    seen: set[str] = set()
    ordered: list[str] = []
    for port in ports:
        if port in seen:
            raise ValueError(f"duplicate port name {port!r}")
        seen.add(port)
        ordered.append(port)
    return tuple(ordered)
