"""repro -- voltage over-scaling characterization and statistical modelling.

Reproduction of R. Ragavan, B. Barrois, C. Killian, O. Sentieys,
"Pushing the Limits of Voltage Over-Scaling for Error-Resilient
Applications", DATE 2017.

The package is organised in layers:

* :mod:`repro.technology` -- analytical 28nm FDSOI models (delay, energy,
  body biasing),
* :mod:`repro.circuits`   -- gate-level adder/multiplier netlists,
* :mod:`repro.synthesis`  -- area / power / static-timing reports,
* :mod:`repro.simulation` -- logic and VOS timing-error simulation,
* :mod:`repro.core`       -- the paper's contribution: characterization over
  operating triads, the carry-chain statistical model, Algorithm 1
  calibration, energy-efficiency analysis and dynamic speculation,
* :mod:`repro.explore`    -- design-space exploration: parameterized operator
  search over architecture x width x speculation window x triad ranges with
  adaptive Pareto refinement,
* :mod:`repro.variation`  -- Monte Carlo variation characterization: sampled
  per-gate mismatch lowered as a batch dimension through the packed engine,
  distribution statistics and yield analysis,
* :mod:`repro.apps`       -- error-resilient applications mapped onto the
  approximate operator model,
* :mod:`repro.analysis`   -- generators for every table and figure of the
  paper's evaluation,
* :mod:`repro.api`        -- the typed Session/Job facade: declarative job
  objects over a shared execution session with batch-level sweep dedup (the
  layer the CLI is a thin adapter over).

Quickstart::

    from repro import CharacterizeJob, PatternOptions, Session

    session = Session(store=None)  # store="default" persists sweep results
    result = session.run(
        CharacterizeJob(operator="rca8", pattern=PatternOptions(vectors=2000))
    )
    for entry in result.characterization.sorted_by_energy():
        print(entry.label(), entry.ber_percent, entry.energy_per_operation_pj)
"""

from repro.core import (
    OperatingTriad,
    TriadGrid,
    paper_triad_grid,
    CharacterizationFlow,
    characterize_benchmarks,
    SweepResultStore,
    AdderCharacterization,
    TriadCharacterization,
    CarryProbabilityTable,
    calibrate_probability_table,
    ApproximateAdderModel,
    DynamicSpeculationController,
    summarize_by_ber_range,
    pareto_front,
    bit_error_rate,
    mean_squared_error,
    signal_to_noise_ratio_db,
)
from repro.circuits import build_adder, ripple_carry_adder, brent_kung_adder
from repro.explore import (
    CandidateEvaluator,
    DesignSpace,
    OperatorCandidate,
    ParetoFrontier,
    TriadSpec,
    run_search,
)
from repro.simulation import PatternConfig, generate_patterns
from repro.synthesis import synthesize
from repro.api import (
    BatchReport,
    BatchResult,
    CalibrateJob,
    CharacterizeJob,
    ExploreJob,
    FaultSweepJob,
    Fig5Job,
    MonteCarloJob,
    OperatorSpec,
    PatternOptions,
    Session,
    SpeculateJob,
    StoreOptions,
    SweepOptions,
    SynthesizeJob,
    Table4Job,
    parse_circuit_spec,
)
from repro.variation import (
    MonteCarloConfig,
    TriadVariationResult,
    VariationSampler,
    run_montecarlo_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "OperatingTriad",
    "TriadGrid",
    "paper_triad_grid",
    "CharacterizationFlow",
    "characterize_benchmarks",
    "SweepResultStore",
    "AdderCharacterization",
    "TriadCharacterization",
    "CarryProbabilityTable",
    "calibrate_probability_table",
    "ApproximateAdderModel",
    "DynamicSpeculationController",
    "summarize_by_ber_range",
    "pareto_front",
    "bit_error_rate",
    "mean_squared_error",
    "signal_to_noise_ratio_db",
    "build_adder",
    "ripple_carry_adder",
    "brent_kung_adder",
    "PatternConfig",
    "generate_patterns",
    "synthesize",
    "DesignSpace",
    "TriadSpec",
    "OperatorCandidate",
    "CandidateEvaluator",
    "ParetoFrontier",
    "run_search",
    "MonteCarloConfig",
    "TriadVariationResult",
    "VariationSampler",
    "run_montecarlo_sweep",
    "BatchReport",
    "BatchResult",
    "CalibrateJob",
    "CharacterizeJob",
    "ExploreJob",
    "FaultSweepJob",
    "Fig5Job",
    "MonteCarloJob",
    "OperatorSpec",
    "PatternOptions",
    "Session",
    "SpeculateJob",
    "StoreOptions",
    "SweepOptions",
    "SynthesizeJob",
    "Table4Job",
    "parse_circuit_spec",
    "__version__",
]
