"""Input stimulus generators.

The paper streams 20 K input patterns through every operating triad and
chooses them "in such a way that all the input bits carry equal probability
to propagate carry in the chain".  This module provides that generator
(:func:`carry_balanced_patterns`) plus several others used by the tests,
applications and ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np


@dataclasses.dataclass(frozen=True)
class PatternConfig:
    """Configuration of a stimulus set.

    Attributes
    ----------
    n_vectors:
        Number of operand pairs to generate.
    width:
        Operand width in bits.
    seed:
        Seed of the dedicated random generator (patterns are reproducible).
    kind:
        Name of the generator in :data:`PATTERN_GENERATORS`.
    """

    n_vectors: int
    width: int
    seed: int = 2017
    kind: str = "uniform"

    def __post_init__(self) -> None:
        if self.n_vectors <= 0:
            raise ValueError("n_vectors must be positive")
        if self.width <= 0:
            raise ValueError("width must be positive")


def uniform_random_patterns(
    n_vectors: int, width: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly distributed operand pairs over the full operand range."""
    high = 1 << width
    in1 = rng.integers(0, high, size=n_vectors, dtype=np.int64)
    in2 = rng.integers(0, high, size=n_vectors, dtype=np.int64)
    return in1, in2


def carry_balanced_patterns(
    n_vectors: int, width: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Patterns giving every carry-chain length equal representation.

    This reproduces the paper's training-set construction: for each vector a
    target theoretical carry-chain length ``L`` is drawn uniformly from
    ``0 .. width``; the operands are then built bit by bit so that a carry is
    generated at a random start position and propagated for exactly ``L - 1``
    further positions (``propagate`` bits), with the remaining positions set
    to ``kill`` or random non-propagating combinations.  The result exercises
    short and long carry chains with equal probability instead of the
    geometric distribution uniform operands would give.
    """
    in1 = np.zeros(n_vectors, dtype=np.int64)
    in2 = np.zeros(n_vectors, dtype=np.int64)
    lengths = rng.integers(0, width + 1, size=n_vectors)
    for index in range(n_vectors):
        length = int(lengths[index])
        a_bits = np.zeros(width, dtype=np.int64)
        b_bits = np.zeros(width, dtype=np.int64)
        if length > 0:
            start = int(rng.integers(0, width - length + 1))
            # Generate a carry at `start`: a=1, b=1.
            a_bits[start] = 1
            b_bits[start] = 1
            # Propagate it through the next `length - 1` positions: a xor b = 1.
            for offset in range(1, length):
                if rng.random() < 0.5:
                    a_bits[start + offset] = 1
                else:
                    b_bits[start + offset] = 1
        # Remaining positions: kill (0,0) or non-propagating random values.
        for position in range(width):
            if a_bits[position] or b_bits[position]:
                continue
            if rng.random() < 0.5:
                continue
            # Insert an isolated generate that is immediately followed by a
            # kill, so it does not extend the main chain beyond one position.
            a_bits[position] = 1
            b_bits[position] = 1
        weights = np.int64(1) << np.arange(width, dtype=np.int64)
        in1[index] = int((a_bits * weights).sum())
        in2[index] = int((b_bits * weights).sum())
    return in1, in2


def exhaustive_patterns(
    n_vectors: int, width: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """All operand pairs (only practical for small widths).

    ``n_vectors`` caps the number of returned pairs; pairs are enumerated in
    row-major order and truncated (deterministically) if the cap is smaller
    than ``2**(2*width)``.
    """
    del rng
    total = 1 << (2 * width)
    count = min(n_vectors, total)
    indices = np.arange(count, dtype=np.int64)
    in1 = indices >> width
    in2 = indices & ((1 << width) - 1)
    return in1, in2


def walking_one_patterns(
    n_vectors: int, width: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Walking-one style patterns exercising one carry chain start at a time.

    Operand ``a`` has a single set bit; operand ``b`` is the all-ones word
    truncated above the set bit, so the addition produces a carry chain from
    the set bit up to the MSB.  Useful for directed tests of the carry-chain
    extraction code.
    """
    positions = np.arange(n_vectors, dtype=np.int64) % width
    in1 = (np.int64(1) << positions).astype(np.int64)
    full = (np.int64(1) << np.int64(width)) - 1
    in2 = np.full(n_vectors, full, dtype=np.int64) - (in1 - 1)
    del rng
    return in1, in2


def correlated_patterns(
    n_vectors: int, width: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Temporally correlated operands imitating signal-processing data.

    Successive operands follow a bounded random walk, which is representative
    of audio/image samples flowing through the error-resilient applications
    the paper targets.  Correlated data toggles fewer high-order bits, which
    lowers both the switching energy and the exercised carry lengths.
    """
    high = 1 << width
    step_scale = max(high // 32, 1)
    steps1 = rng.integers(-step_scale, step_scale + 1, size=n_vectors)
    steps2 = rng.integers(-step_scale, step_scale + 1, size=n_vectors)
    start1 = int(rng.integers(0, high))
    start2 = int(rng.integers(0, high))
    in1 = np.mod(start1 + np.cumsum(steps1), high).astype(np.int64)
    in2 = np.mod(start2 + np.cumsum(steps2), high).astype(np.int64)
    return in1, in2


PatternGenerator = Callable[[int, int, np.random.Generator], tuple[np.ndarray, np.ndarray]]

PATTERN_GENERATORS: dict[str, PatternGenerator] = {
    "uniform": uniform_random_patterns,
    "carry_balanced": carry_balanced_patterns,
    "exhaustive": exhaustive_patterns,
    "walking_one": walking_one_patterns,
    "correlated": correlated_patterns,
}


def generate_patterns(config: PatternConfig) -> tuple[np.ndarray, np.ndarray]:
    """Generate an operand-pair set from a :class:`PatternConfig`."""
    try:
        generator = PATTERN_GENERATORS[config.kind]
    except KeyError:
        raise ValueError(
            f"unknown pattern kind {config.kind!r}; "
            f"available: {', '.join(sorted(PATTERN_GENERATORS))}"
        ) from None
    rng = np.random.default_rng(config.seed)
    in1, in2 = generator(config.n_vectors, config.width, rng)
    return np.asarray(in1, dtype=np.int64), np.asarray(in2, dtype=np.int64)
