"""Per-triad measurement runs for adder circuits.

The testbench plays the role of the paper's automated SPICE test scripts: it
applies a pattern set to an adder under one operating triad, captures the
latched outputs, compares them with the golden outputs and records energy.
The raw measurements are consumed by :mod:`repro.core.characterization`,
which aggregates them into the statistics the paper reports (BER, MSE,
bit-wise error probability, energy efficiency).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from repro.circuits.adders import AdderCircuit
from repro.simulation.timing_sim import VosSimulationResult, VosTimingSimulator
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


@dataclasses.dataclass(frozen=True)
class TriadMeasurement:
    """Raw measurement of an adder under one operating triad.

    Attributes
    ----------
    adder_name:
        Name of the measured circuit (e.g. ``"rca8"``).
    tclk, vdd, vbb:
        The operating triad (seconds, volts, volts).
    in1, in2:
        The applied operand streams.
    latched_words:
        Output words captured by the output register each cycle.
    exact_words:
        Golden results (``in1 + in2``).
    error_bits:
        Boolean matrix (vectors x output bits) of faulty latched bits.
    energy_per_operation:
        Mean total (dynamic + leakage) energy per operation, joules.
    dynamic_energy_per_operation:
        Mean dynamic energy per operation, joules.
    static_energy_per_operation:
        Mean leakage energy per operation, joules.
    """

    adder_name: str
    tclk: float
    vdd: float
    vbb: float
    in1: np.ndarray
    in2: np.ndarray
    latched_words: np.ndarray
    exact_words: np.ndarray
    error_bits: np.ndarray
    energy_per_operation: float
    dynamic_energy_per_operation: float
    static_energy_per_operation: float

    @property
    def n_vectors(self) -> int:
        """Number of applied operand pairs."""
        return int(self.in1.shape[0])

    @property
    def output_width(self) -> int:
        """Number of observed output bits."""
        return int(self.error_bits.shape[1])

    @property
    def faulty_vector_fraction(self) -> float:
        """Fraction of cycles whose latched word differs from the golden word."""
        return float((self.latched_words != self.exact_words).mean())


class AdderTestbench:
    """Reusable testbench for one adder circuit.

    Parameters
    ----------
    adder:
        The circuit under test.
    library:
        Standard-cell library used for delays and energies.
    """

    def __init__(
        self,
        adder: AdderCircuit,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self._adder = adder
        self._simulator = VosTimingSimulator(
            adder.netlist,
            output_ports=adder.output_ports(),
            library=library,
        )

    @property
    def adder(self) -> AdderCircuit:
        """The circuit under test."""
        return self._adder

    @property
    def simulator(self) -> VosTimingSimulator:
        """The underlying timing simulator (exposed for advanced experiments)."""
        return self._simulator

    def nominal_critical_path(self, vdd: float | None = None, vbb: float = 0.0) -> float:
        """Static critical path delay (seconds) at the given operating point."""
        supply = self._simulator.annotation(
            vdd if vdd is not None else DEFAULT_LIBRARY.technology.vdd_nominal, vbb
        )
        return supply.critical_path_delay

    def run_triad(
        self,
        in1: np.ndarray,
        in2: np.ndarray,
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
        *,
        use_reference: bool = False,
    ) -> TriadMeasurement:
        """Apply an operand stream under one operating triad.

        ``use_reference=True`` runs the legacy per-gate simulation loop
        instead of the compiled engine (parity tests / benchmarks only).
        """
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        if in1_arr.shape != in2_arr.shape:
            raise ValueError("in1 and in2 must have the same shape")
        assignment = self._adder.input_assignment(in1_arr, in2_arr)
        simulate = (
            self._simulator.run_reference if use_reference else self._simulator.run
        )
        result = simulate(assignment, tclk=tclk, vdd=vdd, vbb=vbb)
        return self._to_measurement(in1_arr, in2_arr, result, tclk, vdd, vbb)

    def run_sweep(
        self,
        in1: np.ndarray,
        in2: np.ndarray,
        triads: Iterable,
        *,
        use_reference: bool = False,
    ) -> list[TriadMeasurement]:
        """Apply one operand stream under every triad of a sweep.

        ``triads`` is any iterable of objects with ``tclk`` / ``vdd`` /
        ``vbb`` attributes (e.g. :class:`repro.core.triad.OperatingTriad`).
        Everything that does not depend on the triad is computed once for the
        whole sweep: the operand-to-port binding, the golden sum and its bit
        matrix, and -- inside the simulator -- the settled bits and the
        per-``(vdd, vbb)`` arrival times, so a triad differing only in
        ``tclk`` costs one latch comparison.
        """
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        if in1_arr.shape != in2_arr.shape:
            raise ValueError("in1 and in2 must have the same shape")
        exact = self._adder.exact_sum(in1_arr, in2_arr)
        return sweep_measurements(
            self._simulator,
            self._adder.name,
            self._adder.input_assignment(in1_arr, in2_arr),
            in1_arr,
            in2_arr,
            exact,
            _exact_bits(exact, self._adder.output_width),
            triads,
            use_reference=use_reference,
        )

    def _to_measurement(
        self,
        in1: np.ndarray,
        in2: np.ndarray,
        result: VosSimulationResult,
        tclk: float,
        vdd: float,
        vbb: float,
    ) -> TriadMeasurement:
        exact = self._adder.exact_sum(in1, in2)
        return measurement_from_result(
            self._adder.name,
            in1,
            in2,
            result,
            tclk,
            vdd,
            vbb,
            exact,
            _exact_bits(exact, self._adder.output_width),
        )


def measurement_from_result(
    name: str,
    in1: np.ndarray,
    in2: np.ndarray,
    result: VosSimulationResult,
    tclk: float,
    vdd: float,
    vbb: float,
    exact: np.ndarray,
    exact_bits: np.ndarray,
) -> TriadMeasurement:
    """Assemble a :class:`TriadMeasurement` from one simulation result.

    Shared by the adder and multiplier testbenches; ``exact`` /
    ``exact_bits`` are the circuit's golden words and their bit matrix.
    """
    return TriadMeasurement(
        adder_name=name,
        tclk=tclk,
        vdd=vdd,
        vbb=vbb,
        in1=in1,
        in2=in2,
        latched_words=result.latched_words,
        exact_words=exact,
        error_bits=result.latched_bits != exact_bits,
        energy_per_operation=float(result.total_energy.mean()),
        dynamic_energy_per_operation=float(result.dynamic_energy.mean()),
        static_energy_per_operation=float(result.static_energy.mean()),
    )


def sweep_measurements(
    simulator: VosTimingSimulator,
    name: str,
    assignment: dict[str, np.ndarray],
    in1: np.ndarray,
    in2: np.ndarray,
    exact: np.ndarray,
    exact_bits: np.ndarray,
    triads: Iterable,
    *,
    use_reference: bool = False,
) -> list[TriadMeasurement]:
    """Run one operand stream under every triad of a sweep.

    The triad-independent state (port binding, golden words and bit matrix)
    is taken pre-computed; the simulator adds its own sweep-level reuse
    (settled bits per pattern set, arrivals per ``(vdd, vbb)``).  Shared by
    the adder and multiplier testbenches.
    """
    simulate = simulator.run_reference if use_reference else simulator.run
    measurements = []
    for triad in triads:
        result = simulate(assignment, tclk=triad.tclk, vdd=triad.vdd, vbb=triad.vbb)
        measurements.append(
            measurement_from_result(
                name, in1, in2, result, triad.tclk, triad.vdd, triad.vbb,
                exact, exact_bits,
            )
        )
    return measurements


def _exact_bits(values: np.ndarray, width: int) -> np.ndarray:
    from repro.circuits.signals import int_to_bits

    return int_to_bits(values, width)
