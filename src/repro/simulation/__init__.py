"""Simulation substrate (the SPICE stand-in).

The paper characterises its adders with transistor-level Eldo SPICE
simulations; this package provides the functional equivalent:

* :mod:`repro.simulation.logic_sim`  -- vectorised boolean simulation of a
  netlist (golden values).
* :mod:`repro.simulation.timing_sim` -- vectorised data-dependent timing
  simulation under an operating triad: per-net arrival times are propagated
  through the netlist and outputs whose arrival exceeds the clock period
  latch the previous cycle's value, which is exactly the timing-error
  mechanism of voltage over-scaling.
* :mod:`repro.simulation.spice_like` -- a slower event-driven reference
  simulator (optionally with per-gate random variation) used to cross-check
  the vectorised engine.
* :mod:`repro.simulation.patterns`   -- input stimulus generators, including
  the paper's "equal carry-propagation probability" training patterns.
* :mod:`repro.simulation.fault_injection` -- position-independent random
  bit-flip baseline against which the VOS model is compared, plus
  gate-level single-stuck-at fault simulation on the compiled packed
  engine (shardable across worker processes by :mod:`repro.core.sweep`).
* :mod:`repro.simulation.testbench`  -- per-triad measurement runs combining
  functional results with energy estimates.
* :mod:`repro.simulation.engine`     -- compiled level-packed evaluation
  plans, bit-packed (64 vectors/word) golden simulation, and the cached
  per-netlist / per-operating-point metadata all simulators share.
"""

from repro.simulation.engine import (
    CompiledNetlistPlan,
    compile_plan,
    pack_vectors,
    unpack_vectors,
)
from repro.simulation.logic_sim import LogicSimulator, simulate_outputs
from repro.simulation.timing_sim import (
    TimingAnnotation,
    VosTimingSimulator,
    VosSimulationResult,
)
from repro.simulation.spice_like import EventDrivenSimulator, EventDrivenResult
from repro.simulation.patterns import (
    PatternConfig,
    uniform_random_patterns,
    carry_balanced_patterns,
    exhaustive_patterns,
    walking_one_patterns,
    correlated_patterns,
    generate_patterns,
    PATTERN_GENERATORS,
)
from repro.simulation.fault_injection import (
    RandomBitFlipModel,
    StuckAtFault,
    StuckAtFaultSimulator,
    FaultSimulationResult,
    enumerate_stuck_at_faults,
)
from repro.simulation.testbench import TriadMeasurement, AdderTestbench
from repro.simulation.multiplier_testbench import MultiplierTestbench

__all__ = [
    "LogicSimulator",
    "simulate_outputs",
    "TimingAnnotation",
    "VosTimingSimulator",
    "VosSimulationResult",
    "EventDrivenSimulator",
    "EventDrivenResult",
    "PatternConfig",
    "uniform_random_patterns",
    "carry_balanced_patterns",
    "exhaustive_patterns",
    "walking_one_patterns",
    "correlated_patterns",
    "generate_patterns",
    "PATTERN_GENERATORS",
    "RandomBitFlipModel",
    "StuckAtFault",
    "StuckAtFaultSimulator",
    "FaultSimulationResult",
    "enumerate_stuck_at_faults",
    "AdderTestbench",
    "MultiplierTestbench",
    "TriadMeasurement",
    "CompiledNetlistPlan",
    "compile_plan",
    "pack_vectors",
    "unpack_vectors",
]
