"""Vectorised functional (zero-delay) simulation of netlists.

The logic simulator computes the settled boolean value of every net for a
batch of input vectors.  It is used for golden references, for the "old
state" of the timing simulator, and by the functional correctness tests of
the circuit generators.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.circuits.cells import evaluate_gate
from repro.circuits.netlist import Netlist
from repro.circuits.signals import bits_to_int


class LogicSimulator:
    """Zero-delay simulator bound to a netlist.

    The simulator is stateless between calls; binding it to the netlist lets
    it reuse the cached topological order.
    """

    def __init__(self, netlist: Netlist) -> None:
        self._netlist = netlist

    @property
    def netlist(self) -> Netlist:
        """The netlist being simulated."""
        return self._netlist

    def run(self, inputs: Mapping[str, np.ndarray]) -> dict[int, np.ndarray]:
        """Compute settled values for every net.

        Parameters
        ----------
        inputs:
            Mapping from primary-input port name to a boolean array.  All
            arrays must share the same shape (typically ``(n_vectors,)``).

        Returns
        -------
        dict
            Mapping from net id to its boolean value array.
        """
        values = self._bind_inputs(inputs)
        for gate in self._netlist.topological_gates:
            gate_inputs = [values[net] for net in gate.inputs]
            values[gate.output] = evaluate_gate(gate.gate_type, gate_inputs)
        return values

    def run_outputs(self, inputs: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Compute settled values for the primary outputs only."""
        values = self.run(inputs)
        return {
            port: values[net] for port, net in self._netlist.primary_outputs.items()
        }

    def run_output_word(
        self,
        inputs: Mapping[str, np.ndarray],
        output_ports: tuple[str, ...],
    ) -> np.ndarray:
        """Compute the output word (integer) assembled from ``output_ports``.

        The ports are interpreted LSB first, matching the adder/multiplier
        conventions.
        """
        outputs = self.run_outputs(inputs)
        bits = np.stack([outputs[port] for port in output_ports], axis=-1)
        return bits_to_int(bits)

    def _bind_inputs(self, inputs: Mapping[str, np.ndarray]) -> dict[int, np.ndarray]:
        expected = set(self._netlist.primary_inputs)
        provided = set(inputs)
        missing = expected - provided
        if missing:
            raise ValueError(f"missing values for primary inputs: {sorted(missing)}")
        unknown = provided - expected
        if unknown:
            raise ValueError(f"unknown primary inputs: {sorted(unknown)}")
        values: dict[int, np.ndarray] = {}
        shapes = set()
        for port, net in self._netlist.primary_inputs.items():
            array = np.asarray(inputs[port], dtype=bool)
            shapes.add(array.shape)
            values[net] = array
        if len(shapes) > 1:
            raise ValueError(f"primary input arrays have inconsistent shapes: {shapes}")
        return values


def simulate_outputs(
    netlist: Netlist,
    inputs: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`LogicSimulator`."""
    return LogicSimulator(netlist).run_outputs(inputs)
