"""Vectorised functional (zero-delay) simulation of netlists.

The logic simulator computes the settled boolean value of every net for a
batch of input vectors.  It is used for golden references, for the "old
state" of the timing simulator, and by the functional correctness tests of
the circuit generators.

Evaluation runs on the compiled level-packed plan of
:mod:`repro.simulation.engine`: one vectorised bitwise operation settles an
entire level of same-typed gates, and batched 1-D stimulus is additionally
bit-packed into ``uint64`` words (64 vectors per word) when only the primary
outputs are needed.  The legacy per-gate path is kept as
:meth:`LogicSimulator.run_reference` for parity tests and benchmarks.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.signals import bits_to_int
from repro.simulation import engine


class LogicSimulator:
    """Zero-delay simulator bound to a netlist.

    The simulator is stateless between calls; binding it to the netlist lets
    it reuse the cached compiled evaluation plan.
    """

    def __init__(self, netlist: Netlist) -> None:
        self._netlist = netlist
        self._plan = engine.compile_plan(netlist)

    @property
    def netlist(self) -> Netlist:
        """The netlist being simulated."""
        return self._netlist

    def run(self, inputs: Mapping[str, np.ndarray]) -> dict[int, np.ndarray]:
        """Compute settled values for every net.

        Parameters
        ----------
        inputs:
            Mapping from primary-input port name to a boolean array.  All
            arrays must share the same shape (typically ``(n_vectors,)``).

        Returns
        -------
        dict
            Mapping from net id to its boolean value array.
        """
        bound = self._bind_inputs(inputs)
        values = engine.evaluate_values(self._netlist, bound)
        return {net: values[net] for net in self._plan.driven_nets}

    def run_reference(
        self, inputs: Mapping[str, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """Legacy per-gate evaluation (parity reference for the engine)."""
        return engine.reference_evaluate_values(
            self._netlist, self._bind_inputs(inputs)
        )

    def run_outputs(self, inputs: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Compute settled values for the primary outputs only.

        For 1-D vector batches this uses the bit-packed engine mode: the
        whole batch is evaluated 64 vectors per machine word.
        """
        bound = self._bind_inputs(inputs)
        outputs = self._netlist.primary_outputs
        if next(iter(bound.values())).ndim == 1:
            words, n_vectors = engine.evaluate_packed(self._netlist, bound)
            nets = np.fromiter(outputs.values(), count=len(outputs), dtype=np.intp)
            bits = engine.unpack_vectors(words[nets], n_vectors)
            return {port: bits[index] for index, port in enumerate(outputs)}
        values = engine.evaluate_values(self._netlist, bound)
        return {port: values[net] for port, net in outputs.items()}

    def run_output_word(
        self,
        inputs: Mapping[str, np.ndarray],
        output_ports: tuple[str, ...],
    ) -> np.ndarray:
        """Compute the output word (integer) assembled from ``output_ports``.

        The ports are interpreted LSB first, matching the adder/multiplier
        conventions.
        """
        outputs = self.run_outputs(inputs)
        bits = np.stack([outputs[port] for port in output_ports], axis=-1)
        return bits_to_int(bits)

    def _bind_inputs(self, inputs: Mapping[str, np.ndarray]) -> dict[int, np.ndarray]:
        expected = set(self._netlist.primary_inputs)
        provided = set(inputs)
        missing = expected - provided
        if missing:
            raise ValueError(f"missing values for primary inputs: {sorted(missing)}")
        unknown = provided - expected
        if unknown:
            raise ValueError(f"unknown primary inputs: {sorted(unknown)}")
        values: dict[int, np.ndarray] = {}
        shapes = set()
        for port, net in self._netlist.primary_inputs.items():
            array = np.asarray(inputs[port], dtype=bool)
            shapes.add(array.shape)
            values[net] = array
        if len(shapes) > 1:
            raise ValueError(f"primary input arrays have inconsistent shapes: {shapes}")
        return values


def simulate_outputs(
    netlist: Netlist,
    inputs: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`LogicSimulator`."""
    return LogicSimulator(netlist).run_outputs(inputs)
