"""Vectorised data-dependent timing simulation under voltage over-scaling.

This is the core of the SPICE substitution.  For a batch of consecutive
input-vector pairs ``(previous, current)`` the simulator propagates, gate by
gate in topological order:

* the settled value under the *previous* operands (the state the circuit has
  relaxed to before the new operands arrive),
* the settled value under the *current* operands,
* the arrival time of the current value: a net that does not change has
  arrival 0; a net that changes settles one gate delay after the latest
  changing input it depends on.

Primary outputs whose arrival time exceeds the clock period latch the stale
(previous) value -- exactly the timing-error mechanism the paper provokes by
scaling the supply voltage: the longest *sensitised* path fails first, which
for adders means long actual carry-propagation chains.

Energy is accounted per vector: every net toggle contributes one CV^2
switching event at the gate driving it, and sub-threshold leakage integrates
over the clock period.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from repro.circuits.cells import evaluate_gate
from repro.circuits.netlist import Netlist
from repro.circuits.signals import bits_to_int
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary

#: Extra load on primary outputs standing in for the capture register input.
_OUTPUT_REGISTER_LOAD_CELL = "DFF"


@dataclasses.dataclass(frozen=True)
class TimingAnnotation:
    """Per-gate delays and energies of a netlist at one operating point.

    Attributes
    ----------
    vdd, vbb:
        Operating voltages the annotation was computed for.
    gate_delays:
        Delay in seconds of each gate, indexed like
        ``netlist.topological_gates``.
    gate_switch_energies:
        Dynamic energy in joules of one output toggle of each gate.
    leakage_power:
        Total static power of the netlist in watts.
    critical_path_delay:
        Static (topological) critical path of the netlist in seconds --
        an upper bound on any data-dependent arrival time.
    """

    vdd: float
    vbb: float
    gate_delays: np.ndarray
    gate_switch_energies: np.ndarray
    leakage_power: float
    critical_path_delay: float

    @classmethod
    def annotate(
        cls,
        netlist: Netlist,
        vdd: float,
        vbb: float,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> "TimingAnnotation":
        """Compute delays/energies of every gate at the operating point."""
        tech = library.technology
        loads = _net_loads(netlist, library)
        delay_model = library.delay_model(vdd, vbb)
        delays = np.empty(len(netlist.topological_gates), dtype=float)
        energies = np.empty(len(netlist.topological_gates), dtype=float)
        leakage = 0.0
        for index, gate in enumerate(netlist.topological_gates):
            cell_name = gate.gate_type.value
            delays[index] = library.cell_delay(
                cell_name,
                loads[gate.output],
                vdd,
                vbb,
                delay_model=delay_model,
            )
            energies[index] = library.cell_switching_energy(cell_name, vdd)
            leakage += library.cell_leakage_power(cell_name, vdd, vbb)
        arrival = np.zeros(netlist.net_count, dtype=float)
        for index, gate in enumerate(netlist.topological_gates):
            arrival[gate.output] = delays[index] + max(
                arrival[net] for net in gate.inputs
            )
        critical = float(max((arrival[net] for net in netlist.output_nets), default=0.0))
        del tech
        return cls(
            vdd=vdd,
            vbb=vbb,
            gate_delays=delays,
            gate_switch_energies=energies,
            leakage_power=leakage,
            critical_path_delay=critical,
        )


def _net_loads(netlist: Netlist, library: StandardCellLibrary) -> np.ndarray:
    """Capacitive load on every net (fanin gate caps + wire + register load)."""
    tech = library.technology
    loads = np.zeros(netlist.net_count, dtype=float)
    for gate in netlist.gates:
        pin_cap = library.input_capacitance(gate.gate_type.value)
        for net in gate.inputs:
            loads[net] += pin_cap + tech.wire_capacitance_per_fanout
    register_cap = library.input_capacitance(_OUTPUT_REGISTER_LOAD_CELL)
    for net in netlist.output_nets:
        loads[net] += register_cap + tech.wire_capacitance_per_fanout
    # A gate must at least drive its own parasitic output capacitance.
    loads += tech.parasitic_capacitance
    return loads


@dataclasses.dataclass(frozen=True)
class VosSimulationResult:
    """Result of a VOS timing simulation over a batch of vectors.

    Attributes
    ----------
    latched_bits:
        Boolean array of shape ``(n_vectors, n_outputs)`` -- the values
        captured by the output register at the end of each cycle (LSB first).
    settled_bits:
        The error-free settled values of the outputs for the same vectors.
    arrival_times:
        Arrival time in seconds of each output bit, same shape.
    dynamic_energy:
        Per-vector dynamic energy in joules, shape ``(n_vectors,)``.
    static_energy:
        Per-vector leakage energy in joules (leakage power * Tclk).
    tclk:
        Clock period used for latching, in seconds.
    """

    latched_bits: np.ndarray
    settled_bits: np.ndarray
    arrival_times: np.ndarray
    dynamic_energy: np.ndarray
    static_energy: np.ndarray
    tclk: float

    @property
    def n_vectors(self) -> int:
        """Number of simulated vectors."""
        return self.latched_bits.shape[0]

    @property
    def latched_words(self) -> np.ndarray:
        """Latched outputs assembled into integers (LSB-first bit order)."""
        return bits_to_int(self.latched_bits)

    @property
    def settled_words(self) -> np.ndarray:
        """Error-free outputs assembled into integers."""
        return bits_to_int(self.settled_bits)

    @property
    def error_bits(self) -> np.ndarray:
        """Boolean matrix of bit errors (latched != settled)."""
        return self.latched_bits != self.settled_bits

    @property
    def total_energy(self) -> np.ndarray:
        """Per-vector total (dynamic + static) energy in joules."""
        return self.dynamic_energy + self.static_energy

    @property
    def mean_energy_per_operation(self) -> float:
        """Average energy per operation in joules."""
        return float(self.total_energy.mean())


class VosTimingSimulator:
    """Vectorised timing-error simulator for one netlist.

    Parameters
    ----------
    netlist:
        Combinational netlist to simulate.
    output_ports:
        Primary output ports to observe, LSB first.  Defaults to all primary
        outputs in declaration order.
    library:
        Standard-cell library providing delays and energies.
    """

    def __init__(
        self,
        netlist: Netlist,
        output_ports: tuple[str, ...] | None = None,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self._netlist = netlist
        self._library = library
        all_outputs = netlist.primary_outputs
        if output_ports is None:
            output_ports = tuple(all_outputs)
        for port in output_ports:
            if port not in all_outputs:
                raise ValueError(f"unknown output port {port!r}")
        self._output_ports = output_ports
        self._output_nets = tuple(all_outputs[port] for port in output_ports)
        self._annotation_cache: dict[tuple[float, float], TimingAnnotation] = {}

    @property
    def netlist(self) -> Netlist:
        """The netlist being simulated."""
        return self._netlist

    @property
    def output_ports(self) -> tuple[str, ...]:
        """Observed output ports, LSB first."""
        return self._output_ports

    def annotation(self, vdd: float, vbb: float) -> TimingAnnotation:
        """Timing annotation at an operating point (cached per simulator)."""
        key = (round(float(vdd), 6), round(float(vbb), 6))
        if key not in self._annotation_cache:
            self._annotation_cache[key] = TimingAnnotation.annotate(
                self._netlist, vdd, vbb, self._library
            )
        return self._annotation_cache[key]

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
        previous_inputs: Mapping[str, np.ndarray] | None = None,
    ) -> VosSimulationResult:
        """Simulate a stream of input vectors under an operating triad.

        Parameters
        ----------
        inputs:
            Mapping from primary-input port name to a boolean array of shape
            ``(n_vectors,)`` -- the vector applied at each cycle.
        tclk:
            Clock period in seconds.
        vdd, vbb:
            Supply and body-bias voltages in volts.
        previous_inputs:
            Optional explicit previous-cycle vectors.  By default the stream
            itself provides them (vector ``k-1`` precedes vector ``k``; the
            first vector's predecessor is the all-zero vector), matching how
            the paper streams 20 K patterns through the SPICE testbench.
        """
        if tclk <= 0:
            raise ValueError("tclk must be positive")
        annotation = self.annotation(vdd, vbb)
        current = self._bind_inputs(inputs)
        previous = (
            self._bind_inputs(previous_inputs)
            if previous_inputs is not None
            else {net: _shift_right(values) for net, values in current.items()}
        )

        n_vectors = next(iter(current.values())).shape[0]
        net_count = self._netlist.net_count
        new_values: dict[int, np.ndarray] = dict(current)
        old_values: dict[int, np.ndarray] = dict(previous)
        arrival: dict[int, np.ndarray] = {
            net: np.zeros(n_vectors, dtype=float) for net in current
        }
        dynamic_energy = np.zeros(n_vectors, dtype=float)

        for index, gate in enumerate(self._netlist.topological_gates):
            gate_inputs_new = [new_values[net] for net in gate.inputs]
            gate_inputs_old = [old_values[net] for net in gate.inputs]
            out_new = evaluate_gate(gate.gate_type, gate_inputs_new)
            out_old = evaluate_gate(gate.gate_type, gate_inputs_old)
            changed = out_new != out_old
            input_arrival = np.zeros(n_vectors, dtype=float)
            for net in gate.inputs:
                contribution = np.where(
                    new_values[net] != old_values[net], arrival[net], 0.0
                )
                np.maximum(input_arrival, contribution, out=input_arrival)
            gate_delay = annotation.gate_delays[index]
            arrival[gate.output] = np.where(changed, input_arrival + gate_delay, 0.0)
            new_values[gate.output] = out_new
            old_values[gate.output] = out_old
            dynamic_energy += changed * annotation.gate_switch_energies[index]

        settled = np.stack([new_values[net] for net in self._output_nets], axis=-1)
        stale = np.stack([old_values[net] for net in self._output_nets], axis=-1)
        arrivals = np.stack([arrival[net] for net in self._output_nets], axis=-1)
        on_time = arrivals <= tclk
        latched = np.where(on_time, settled, stale)
        static_energy = np.full(n_vectors, annotation.leakage_power * tclk)
        del net_count
        return VosSimulationResult(
            latched_bits=latched,
            settled_bits=settled,
            arrival_times=arrivals,
            dynamic_energy=dynamic_energy,
            static_energy=static_energy,
            tclk=tclk,
        )

    def _bind_inputs(self, inputs: Mapping[str, np.ndarray]) -> dict[int, np.ndarray]:
        ports = self._netlist.primary_inputs
        missing = set(ports) - set(inputs)
        if missing:
            raise ValueError(f"missing values for primary inputs: {sorted(missing)}")
        bound: dict[int, np.ndarray] = {}
        shapes = set()
        for port, net in ports.items():
            array = np.atleast_1d(np.asarray(inputs[port], dtype=bool))
            shapes.add(array.shape)
            bound[net] = array
        if len(shapes) > 1:
            raise ValueError(f"primary input arrays have inconsistent shapes: {shapes}")
        return bound


def _shift_right(values: np.ndarray) -> np.ndarray:
    """Previous-cycle version of a vector stream (first cycle sees zeros)."""
    shifted = np.zeros_like(values)
    if values.shape[0] > 1:
        shifted[1:] = values[:-1]
    return shifted
