"""Vectorised data-dependent timing simulation under voltage over-scaling.

This is the core of the SPICE substitution.  For a batch of consecutive
input-vector pairs ``(previous, current)`` the simulator propagates, level by
level on the compiled engine plan:

* the settled value under the *previous* operands (the state the circuit has
  relaxed to before the new operands arrive),
* the settled value under the *current* operands,
* the arrival time of the current value: a net that does not change has
  arrival 0; a net that changes settles one gate delay after the latest
  changing input it depends on.

Primary outputs whose arrival time exceeds the clock period latch the stale
(previous) value -- exactly the timing-error mechanism the paper provokes by
scaling the supply voltage: the longest *sensitised* path fails first, which
for adders means long actual carry-propagation chains.

Energy is accounted per vector: every net toggle contributes one CV^2
switching event at the gate driving it, and sub-threshold leakage integrates
over the clock period.

Sweep-level result reuse
------------------------
Everything except the final latch comparison is independent of some part of
the operating triad, and the simulator caches accordingly:

* settled/stale values and toggle masks depend only on the **pattern set**
  (they are computed once per stimulus, via the bit-packed engine mode),
* arrival times and per-vector dynamic energy additionally depend on
  ``(vdd, vbb)`` and are cached per operating point,
* only ``latched = where(arrival <= tclk, settled, stale)`` and the leakage
  integral depend on ``tclk``.

A triad-grid sweep (the paper's Fig. 4 flow: four clocks x seven supplies x
body biases over one 4k-20k-vector pattern set) therefore performs the
expensive work once per ``(vdd, vbb)`` pair instead of once per triad.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.circuits.cells import evaluate_gate
from repro.circuits.netlist import Netlist
from repro.circuits.signals import bits_to_int
from repro.obs.trace import span
from repro.simulation import engine
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary

#: Bounded cache sizes (entries are full per-vector arrays, so keep few).
_STIMULUS_CACHE_SIZE = 4
_TIMING_CACHE_SIZE = 32


@dataclasses.dataclass(frozen=True)
class TimingAnnotation:
    """Per-gate delays and energies of a netlist at one operating point.

    Attributes
    ----------
    vdd, vbb:
        Operating voltages the annotation was computed for.
    gate_delays:
        Delay in seconds of each gate, indexed like
        ``netlist.topological_gates``.
    gate_switch_energies:
        Dynamic energy in joules of one output toggle of each gate.
    leakage_power:
        Total static power of the netlist in watts.
    critical_path_delay:
        Static (topological) critical path of the netlist in seconds --
        an upper bound on any data-dependent arrival time.
    """

    vdd: float
    vbb: float
    gate_delays: np.ndarray
    gate_switch_energies: np.ndarray
    leakage_power: float
    critical_path_delay: float

    @classmethod
    def annotate(
        cls,
        netlist: Netlist,
        vdd: float,
        vbb: float,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> "TimingAnnotation":
        """Compute delays/energies of every gate at the operating point.

        Delegates to :func:`repro.simulation.engine.annotation_arrays`, which
        vectorises the per-cell-type delay/energy queries and reuses the
        per-netlist capacitive loads across operating points.
        """
        delays, energies, leakage, critical = engine.annotation_arrays(
            netlist, vdd, vbb, library
        )
        return cls(
            vdd=vdd,
            vbb=vbb,
            gate_delays=delays,
            gate_switch_energies=energies,
            leakage_power=leakage,
            critical_path_delay=critical,
        )


def _net_loads(netlist: Netlist, library: StandardCellLibrary) -> np.ndarray:
    """Capacitive load on every net (cached; see :func:`engine.net_loads`)."""
    return engine.net_loads(netlist, library)


@dataclasses.dataclass(frozen=True)
class _StimulusRecord:
    """Triad-independent state of one pattern set (cached per simulator).

    ``changed`` holds the toggle mask of every net -- the sensitisation
    information all arrival/energy computations run on; settled/stale bits
    are kept for the observed outputs only.
    """

    key: bytes
    n_vectors: int
    changed: np.ndarray
    settled_bits: np.ndarray
    stale_bits: np.ndarray


@dataclasses.dataclass(frozen=True)
class _TimingRecord:
    """Per-``(vdd, vbb)`` state of one pattern set (cached per simulator)."""

    arrival_bits: np.ndarray
    dynamic_energy: np.ndarray


@dataclasses.dataclass(frozen=True)
class VosSimulationResult:
    """Result of a VOS timing simulation over a batch of vectors.

    Attributes
    ----------
    latched_bits:
        Boolean array of shape ``(n_vectors, n_outputs)`` -- the values
        captured by the output register at the end of each cycle (LSB first).
    settled_bits:
        The error-free settled values of the outputs for the same vectors.
    arrival_times:
        Arrival time in seconds of each output bit, same shape.
    dynamic_energy:
        Per-vector dynamic energy in joules, shape ``(n_vectors,)``.
    static_energy:
        Per-vector leakage energy in joules (leakage power * Tclk).
    tclk:
        Clock period used for latching, in seconds.
    """

    latched_bits: np.ndarray
    settled_bits: np.ndarray
    arrival_times: np.ndarray
    dynamic_energy: np.ndarray
    static_energy: np.ndarray
    tclk: float

    @property
    def n_vectors(self) -> int:
        """Number of simulated vectors."""
        return self.latched_bits.shape[0]

    @property
    def latched_words(self) -> np.ndarray:
        """Latched outputs assembled into integers (LSB-first bit order)."""
        return bits_to_int(self.latched_bits)

    @property
    def settled_words(self) -> np.ndarray:
        """Error-free outputs assembled into integers."""
        return bits_to_int(self.settled_bits)

    @property
    def error_bits(self) -> np.ndarray:
        """Boolean matrix of bit errors (latched != settled)."""
        return self.latched_bits != self.settled_bits

    @property
    def total_energy(self) -> np.ndarray:
        """Per-vector total (dynamic + static) energy in joules."""
        return self.dynamic_energy + self.static_energy

    @property
    def mean_energy_per_operation(self) -> float:
        """Average energy per operation in joules."""
        return float(self.total_energy.mean())


@dataclasses.dataclass(frozen=True)
class VariationSimulationResult:
    """Result of one VOS simulation over a *batch* of variation instances.

    The instance axis is the leading axis of every per-instance array: one
    simulation pass evaluates ``n_instances`` sampled netlists against the
    shared stimulus (logic values and toggle masks are variation-independent,
    so settled bits carry no instance axis).

    Attributes
    ----------
    latched_bits:
        Boolean array ``(n_instances, n_vectors, n_outputs)`` -- the values
        each sampled instance latches at the end of each cycle (LSB first).
    settled_bits:
        Error-free settled output values, ``(n_vectors, n_outputs)``.
    arrival_times:
        Arrival time in seconds of each output bit per instance,
        ``(n_instances, n_vectors, n_outputs)``.
    dynamic_energy:
        Per-vector dynamic energy in joules, shape ``(n_vectors,)`` --
        toggle counts and switched capacitance do not vary across instances.
    static_energy_per_operation:
        Leakage energy per cycle of each instance in joules, shape
        ``(n_instances,)`` (instance leakage power times ``tclk``).
    tclk:
        Clock period used for latching, in seconds.
    """

    latched_bits: np.ndarray
    settled_bits: np.ndarray
    arrival_times: np.ndarray
    dynamic_energy: np.ndarray
    static_energy_per_operation: np.ndarray
    tclk: float

    @property
    def n_instances(self) -> int:
        """Number of simulated variation instances."""
        return self.latched_bits.shape[0]

    @property
    def n_vectors(self) -> int:
        """Number of simulated vectors."""
        return self.latched_bits.shape[1]

    @property
    def error_bits(self) -> np.ndarray:
        """Per-instance bit errors against the settled values."""
        return self.latched_bits != self.settled_bits[None, :, :]

    @property
    def energy_per_operation(self) -> np.ndarray:
        """Mean total energy per operation of each instance, joules."""
        return float(self.dynamic_energy.mean()) + self.static_energy_per_operation


class VosTimingSimulator:
    """Vectorised timing-error simulator for one netlist.

    Parameters
    ----------
    netlist:
        Combinational netlist to simulate.
    output_ports:
        Primary output ports to observe, LSB first.  Defaults to all primary
        outputs in declaration order.
    library:
        Standard-cell library providing delays and energies.
    """

    def __init__(
        self,
        netlist: Netlist,
        output_ports: tuple[str, ...] | None = None,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self._netlist = netlist
        self._library = library
        self._plan = engine.compile_plan(netlist)
        all_outputs = netlist.primary_outputs
        if output_ports is None:
            output_ports = tuple(all_outputs)
        for port in output_ports:
            if port not in all_outputs:
                raise ValueError(f"unknown output port {port!r}")
        self._output_ports = output_ports
        self._output_nets = tuple(all_outputs[port] for port in output_ports)
        self._output_net_array = np.array(self._output_nets, dtype=np.intp)
        self._annotation_cache: dict[tuple[float, float], TimingAnnotation] = {}
        self._stimulus_cache: "OrderedDict[bytes, _StimulusRecord]" = OrderedDict()
        self._timing_cache: (
            "OrderedDict[tuple[bytes, float, float], _TimingRecord]"
        ) = OrderedDict()

    @property
    def netlist(self) -> Netlist:
        """The netlist being simulated."""
        return self._netlist

    @property
    def output_ports(self) -> tuple[str, ...]:
        """Observed output ports, LSB first."""
        return self._output_ports

    def annotation(self, vdd: float, vbb: float) -> TimingAnnotation:
        """Timing annotation at an operating point (cached per simulator)."""
        key = _operating_point_key(vdd, vbb)
        if key not in self._annotation_cache:
            self._annotation_cache[key] = TimingAnnotation.annotate(
                self._netlist, vdd, vbb, self._library
            )
        return self._annotation_cache[key]

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
        previous_inputs: Mapping[str, np.ndarray] | None = None,
    ) -> VosSimulationResult:
        """Simulate a stream of input vectors under an operating triad.

        Parameters
        ----------
        inputs:
            Mapping from primary-input port name to a boolean array of shape
            ``(n_vectors,)`` -- the vector applied at each cycle.
        tclk:
            Clock period in seconds.
        vdd, vbb:
            Supply and body-bias voltages in volts.
        previous_inputs:
            Optional explicit previous-cycle vectors.  By default the stream
            itself provides them (vector ``k-1`` precedes vector ``k``; the
            first vector's predecessor is the all-zero vector), matching how
            the paper streams 20 K patterns through the SPICE testbench.
        """
        if tclk <= 0:
            raise ValueError("tclk must be positive")
        annotation = self.annotation(vdd, vbb)
        stimulus = self._stimulus(inputs, previous_inputs)
        timing = self._timing(stimulus, vdd, vbb, annotation)

        on_time = timing.arrival_bits <= tclk
        latched = np.where(on_time, stimulus.settled_bits, stimulus.stale_bits)
        n_vectors = stimulus.n_vectors
        static_energy = np.full(n_vectors, annotation.leakage_power * tclk)
        # The cached arrays are shared across results of a sweep; they are
        # marked read-only instead of being copied per triad.
        return VosSimulationResult(
            latched_bits=latched,
            settled_bits=stimulus.settled_bits,
            arrival_times=timing.arrival_bits,
            dynamic_energy=timing.dynamic_energy,
            static_energy=static_energy,
            tclk=tclk,
        )

    def run_reference(
        self,
        inputs: Mapping[str, np.ndarray],
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
        previous_inputs: Mapping[str, np.ndarray] | None = None,
    ) -> VosSimulationResult:
        """Legacy per-gate simulation loop, without any sweep-level reuse.

        Kept as the parity reference for the compiled engine path: logic
        values, arrival times and latched bits follow the seed
        implementation exactly, and the parity tests compare the two paths
        bit for bit.  The one deliberate deviation from the seed is the
        dynamic-energy reduction: both paths reduce the per-gate toggle
        matrix with the same ``energies @ toggles`` expression (the seed
        accumulated ``+=`` per gate, which differs at ULP level), so
        engine-vs-reference energy comparisons are exact.
        """
        if tclk <= 0:
            raise ValueError("tclk must be positive")
        annotation = self.annotation(vdd, vbb)
        current = self._bind_inputs(inputs)
        previous = (
            self._bind_inputs(previous_inputs)
            if previous_inputs is not None
            else {net: _shift_right(values) for net, values in current.items()}
        )

        n_vectors = next(iter(current.values())).shape[0]
        new_values: dict[int, np.ndarray] = dict(current)
        old_values: dict[int, np.ndarray] = dict(previous)
        arrival: dict[int, np.ndarray] = {
            net: np.zeros(n_vectors, dtype=float) for net in current
        }
        changed_gates = np.zeros(
            (self._netlist.gate_count, n_vectors), dtype=bool
        )

        for index, gate in enumerate(self._netlist.topological_gates):
            gate_inputs_new = [new_values[net] for net in gate.inputs]
            gate_inputs_old = [old_values[net] for net in gate.inputs]
            out_new = evaluate_gate(gate.gate_type, gate_inputs_new)
            out_old = evaluate_gate(gate.gate_type, gate_inputs_old)
            changed = out_new != out_old
            input_arrival = np.zeros(n_vectors, dtype=float)
            for net in gate.inputs:
                contribution = np.where(
                    new_values[net] != old_values[net], arrival[net], 0.0
                )
                np.maximum(input_arrival, contribution, out=input_arrival)
            gate_delay = annotation.gate_delays[index]
            arrival[gate.output] = np.where(changed, input_arrival + gate_delay, 0.0)
            new_values[gate.output] = out_new
            old_values[gate.output] = out_old
            changed_gates[index] = changed

        dynamic_energy = annotation.gate_switch_energies @ changed_gates.astype(
            np.float64
        )
        settled = np.stack([new_values[net] for net in self._output_nets], axis=-1)
        stale = np.stack([old_values[net] for net in self._output_nets], axis=-1)
        arrivals = np.stack([arrival[net] for net in self._output_nets], axis=-1)
        on_time = arrivals <= tclk
        latched = np.where(on_time, settled, stale)
        static_energy = np.full(n_vectors, annotation.leakage_power * tclk)
        return VosSimulationResult(
            latched_bits=latched,
            settled_bits=settled,
            arrival_times=arrivals,
            dynamic_energy=dynamic_energy,
            static_energy=static_energy,
            tclk=tclk,
        )

    def run_variation_sweep(
        self,
        inputs: Mapping[str, np.ndarray],
        tclks: Sequence[float],
        vdd: float,
        vbb: float = 0.0,
        delay_multipliers: np.ndarray | None = None,
        leakage_multipliers: np.ndarray | None = None,
        previous_inputs: Mapping[str, np.ndarray] | None = None,
    ) -> list[VariationSimulationResult]:
        """Simulate a batch of variation instances under several clocks.

        The expensive work -- the batched arrival pass over all instances --
        depends only on ``(vdd, vbb)`` and the sampled multipliers, so one
        call evaluates every clock period of an operating-point group against
        the same arrival matrix (mirroring the sweep-level reuse of
        :meth:`run`).  Logic values are variation-independent, so the cached
        stimulus record (settled/stale bits, toggle masks) is shared with
        nominal simulations of the same pattern set.

        Parameters
        ----------
        inputs, previous_inputs:
            As in :meth:`run`.
        tclks:
            Clock periods in seconds; one result is returned per entry.
        vdd, vbb:
            Operating voltages shared by the batch.
        delay_multipliers:
            Per-instance per-gate delay multipliers, shape
            ``(n_instances, gate_count)``; ``None`` runs one nominal
            instance.  All values must be positive.
        leakage_multipliers:
            Optional per-instance per-gate leakage-power multipliers of the
            same shape; ``None`` leaves every instance at nominal leakage.
        """
        if not tclks:
            raise ValueError("tclks must not be empty")
        if any(tclk <= 0 for tclk in tclks):
            raise ValueError("tclk must be positive")
        annotation = self.annotation(vdd, vbb)
        gate_count = annotation.gate_delays.shape[0]
        if delay_multipliers is None:
            delay_multipliers = np.ones((1, gate_count))
        multipliers = np.asarray(delay_multipliers, dtype=float)
        if multipliers.ndim != 2 or multipliers.shape[1] != gate_count:
            raise ValueError(
                "delay_multipliers must have shape (n_instances, "
                f"{gate_count}); got {multipliers.shape}"
            )
        if np.any(multipliers <= 0):
            raise ValueError("delay multipliers must be positive")
        stimulus = self._stimulus(inputs, previous_inputs)

        gate_delays = annotation.gate_delays[None, :] * multipliers
        with span(
            "engine.pass",
            kind="variation",
            instances=multipliers.shape[0],
            vectors=stimulus.n_vectors,
        ):
            arrival = self._plan.batched_arrival_pass(stimulus.changed, gate_delays)
        # (n_outputs, n_instances, n_vectors) -> (n_instances, n_vectors, n_outputs)
        arrival_bits = np.ascontiguousarray(
            arrival[self._output_net_array].transpose(1, 2, 0)
        )
        # Same reduction expression as the cached nominal timing record.
        toggles = stimulus.changed[self._plan.gate_output_nets]
        dynamic_energy = annotation.gate_switch_energies @ toggles.astype(
            np.float64
        )
        n_instances = multipliers.shape[0]
        if leakage_multipliers is None:
            leakage_power = np.full(n_instances, annotation.leakage_power)
        else:
            leak_scale = np.asarray(leakage_multipliers, dtype=float)
            if leak_scale.shape != multipliers.shape:
                raise ValueError(
                    "leakage_multipliers must match delay_multipliers shape "
                    f"{multipliers.shape}; got {leak_scale.shape}"
                )
            per_gate = engine.gate_leakage_powers(
                self._netlist, vdd, vbb, self._library
            )
            leakage_power = leak_scale @ per_gate

        results = []
        for tclk in tclks:
            on_time = arrival_bits <= tclk
            latched = np.where(
                on_time,
                stimulus.settled_bits[None, :, :],
                stimulus.stale_bits[None, :, :],
            )
            results.append(
                VariationSimulationResult(
                    latched_bits=latched,
                    settled_bits=stimulus.settled_bits,
                    arrival_times=arrival_bits,
                    dynamic_energy=dynamic_energy,
                    static_energy_per_operation=leakage_power * tclk,
                    tclk=float(tclk),
                )
            )
        return results

    def run_variation(
        self,
        inputs: Mapping[str, np.ndarray],
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
        delay_multipliers: np.ndarray | None = None,
        leakage_multipliers: np.ndarray | None = None,
        previous_inputs: Mapping[str, np.ndarray] | None = None,
    ) -> VariationSimulationResult:
        """Single-clock convenience wrapper of :meth:`run_variation_sweep`."""
        return self.run_variation_sweep(
            inputs,
            [tclk],
            vdd,
            vbb,
            delay_multipliers=delay_multipliers,
            leakage_multipliers=leakage_multipliers,
            previous_inputs=previous_inputs,
        )[0]

    # -- cached sweep state ----------------------------------------------------

    def _stimulus(
        self,
        inputs: Mapping[str, np.ndarray],
        previous_inputs: Mapping[str, np.ndarray] | None,
    ) -> _StimulusRecord:
        current = self._bind_inputs(inputs)
        previous = (
            self._bind_inputs(previous_inputs)
            if previous_inputs is not None
            else {net: _shift_right(values) for net, values in current.items()}
        )
        shape = next(iter(current.values())).shape
        if next(iter(previous.values())).shape != shape:
            raise ValueError(
                "previous_inputs arrays must match the shape of inputs"
            )
        key = _pattern_fingerprint(self._netlist, current, previous)
        record = self._stimulus_cache.get(key)
        if record is not None:
            self._stimulus_cache.move_to_end(key)
            return record

        flat_current = {net: array.ravel() for net, array in current.items()}
        flat_previous = {net: array.ravel() for net, array in previous.items()}
        new_words, n_vectors = engine.evaluate_packed(self._netlist, flat_current)
        old_words, _ = engine.evaluate_packed(self._netlist, flat_previous)
        changed = engine.unpack_vectors(new_words ^ old_words, n_vectors)
        outputs = self._output_net_array
        settled = np.ascontiguousarray(
            engine.unpack_vectors(new_words[outputs], n_vectors).T
        )
        stale = np.ascontiguousarray(
            engine.unpack_vectors(old_words[outputs], n_vectors).T
        )
        for array in (changed, settled, stale):
            array.setflags(write=False)
        record = _StimulusRecord(
            key=key,
            n_vectors=n_vectors,
            changed=changed,
            settled_bits=settled,
            stale_bits=stale,
        )
        self._stimulus_cache[key] = record
        while len(self._stimulus_cache) > _STIMULUS_CACHE_SIZE:
            self._stimulus_cache.popitem(last=False)
        return record

    def _timing(
        self,
        stimulus: _StimulusRecord,
        vdd: float,
        vbb: float,
        annotation: TimingAnnotation,
    ) -> _TimingRecord:
        key = (stimulus.key, *_operating_point_key(vdd, vbb))
        record = self._timing_cache.get(key)
        if record is not None:
            self._timing_cache.move_to_end(key)
            return record
        with span("engine.pass", kind="arrival", vectors=stimulus.n_vectors):
            arrival = self._plan.arrival_pass(
                stimulus.changed, annotation.gate_delays
            )
            arrival_bits = arrival[self._output_net_array].T.copy()
            toggles = stimulus.changed[self._plan.gate_output_nets]
            dynamic_energy = annotation.gate_switch_energies @ toggles.astype(
                np.float64
            )
        arrival_bits.setflags(write=False)
        dynamic_energy.setflags(write=False)
        record = _TimingRecord(
            arrival_bits=arrival_bits, dynamic_energy=dynamic_energy
        )
        self._timing_cache[key] = record
        while len(self._timing_cache) > _TIMING_CACHE_SIZE:
            self._timing_cache.popitem(last=False)
        return record

    def _bind_inputs(self, inputs: Mapping[str, np.ndarray]) -> dict[int, np.ndarray]:
        ports = self._netlist.primary_inputs
        missing = set(ports) - set(inputs)
        if missing:
            raise ValueError(f"missing values for primary inputs: {sorted(missing)}")
        bound: dict[int, np.ndarray] = {}
        shapes = set()
        for port, net in ports.items():
            array = np.atleast_1d(np.asarray(inputs[port], dtype=bool))
            shapes.add(array.shape)
            bound[net] = array
        if len(shapes) > 1:
            raise ValueError(f"primary input arrays have inconsistent shapes: {shapes}")
        return bound


def _operating_point_key(vdd: float, vbb: float) -> tuple[float, float]:
    """Normalised ``(vdd, vbb)`` cache key (tolerant to float formatting)."""
    return (round(float(vdd), 6), round(float(vbb), 6))


def _pattern_fingerprint(
    netlist: Netlist,
    current: Mapping[int, np.ndarray],
    previous: Mapping[int, np.ndarray],
) -> bytes:
    """Content hash of a bound (current, previous) stimulus pair."""
    digest = hashlib.sha1()
    sample = next(iter(current.values()))
    digest.update(repr(sample.shape).encode())
    for net in netlist.primary_inputs.values():
        digest.update(np.ascontiguousarray(current[net]).tobytes())
        digest.update(b"|")
        digest.update(np.ascontiguousarray(previous[net]).tobytes())
    return digest.digest()


def _shift_right(values: np.ndarray) -> np.ndarray:
    """Previous-cycle version of a vector stream (first cycle sees zeros)."""
    shifted = np.zeros_like(values)
    if values.shape[0] > 1:
        shifted[1:] = values[:-1]
    return shifted
