"""Per-triad measurements for multiplier circuits.

The paper's flow is demonstrated on adders, but its characterization method
applies to any combinational arithmetic operator.  This module extends the
testbench to the array multiplier of :mod:`repro.circuits.multipliers`, so
the VOS behaviour of a multiply unit can be characterized with exactly the
same machinery (and compared against the adder results in the ablation
benchmarks).

Like :class:`~repro.simulation.testbench.AdderTestbench`, sweeps run on the
compiled engine with sweep-level reuse (:meth:`MultiplierTestbench.run_sweep`
computes the golden product and its bit matrix once per pattern set), so the
sweep orchestrator shards multiplier grids exactly like adder grids.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.circuits.multipliers import MultiplierCircuit
from repro.circuits.signals import int_to_bits
from repro.simulation.testbench import (
    TriadMeasurement,
    measurement_from_result,
    sweep_measurements,
)
from repro.simulation.timing_sim import VosTimingSimulator
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


class MultiplierTestbench:
    """Reusable testbench for one multiplier circuit.

    The interface mirrors :class:`repro.simulation.testbench.AdderTestbench`:
    ``run_triad`` applies an operand stream under one operating triad and
    returns a :class:`~repro.simulation.testbench.TriadMeasurement` whose
    golden reference is the exact product.
    """

    def __init__(
        self,
        multiplier: MultiplierCircuit,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self._multiplier = multiplier
        self._simulator = VosTimingSimulator(
            multiplier.netlist,
            output_ports=multiplier.output_ports(),
            library=library,
        )

    @property
    def multiplier(self) -> MultiplierCircuit:
        """The circuit under test."""
        return self._multiplier

    @property
    def simulator(self) -> VosTimingSimulator:
        """The underlying timing simulator."""
        return self._simulator

    def nominal_critical_path(self, vdd: float | None = None, vbb: float = 0.0) -> float:
        """Static critical path delay (seconds) at the given operating point."""
        supply = DEFAULT_LIBRARY.technology.vdd_nominal if vdd is None else vdd
        return self._simulator.annotation(supply, vbb).critical_path_delay

    def run_triad(
        self,
        in1: np.ndarray,
        in2: np.ndarray,
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
        *,
        use_reference: bool = False,
    ) -> TriadMeasurement:
        """Apply an operand stream under one operating triad.

        ``use_reference=True`` runs the legacy per-gate simulation loop
        instead of the compiled engine (parity tests / benchmarks only).
        """
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        if in1_arr.shape != in2_arr.shape:
            raise ValueError("in1 and in2 must have the same shape")
        assignment = self._multiplier.input_assignment(in1_arr, in2_arr)
        simulate = (
            self._simulator.run_reference if use_reference else self._simulator.run
        )
        result = simulate(assignment, tclk=tclk, vdd=vdd, vbb=vbb)
        exact = self._multiplier.exact_product(in1_arr, in2_arr)
        return measurement_from_result(
            self._multiplier.name,
            in1_arr,
            in2_arr,
            result,
            tclk,
            vdd,
            vbb,
            exact,
            int_to_bits(exact, self._multiplier.output_width),
        )

    def run_sweep(
        self,
        in1: np.ndarray,
        in2: np.ndarray,
        triads: Iterable,
        *,
        use_reference: bool = False,
    ) -> list[TriadMeasurement]:
        """Apply one operand stream under every triad of a sweep.

        ``triads`` is any iterable of objects with ``tclk`` / ``vdd`` /
        ``vbb`` attributes.  The operand-to-port binding and the golden
        product (with its bit matrix) are computed once for the whole sweep;
        the simulator additionally reuses settled bits per pattern set and
        arrival times per ``(vdd, vbb)`` pair, exactly like the adder sweep.
        """
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        if in1_arr.shape != in2_arr.shape:
            raise ValueError("in1 and in2 must have the same shape")
        exact = self._multiplier.exact_product(in1_arr, in2_arr)
        return sweep_measurements(
            self._simulator,
            self._multiplier.name,
            self._multiplier.input_assignment(in1_arr, in2_arr),
            in1_arr,
            in2_arr,
            exact,
            int_to_bits(exact, self._multiplier.output_width),
            triads,
            use_reference=use_reference,
        )
