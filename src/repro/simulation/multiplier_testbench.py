"""Per-triad measurements for multiplier circuits.

The paper's flow is demonstrated on adders, but its characterization method
applies to any combinational arithmetic operator.  This module extends the
testbench to the array multiplier of :mod:`repro.circuits.multipliers`, so
the VOS behaviour of a multiply unit can be characterized with exactly the
same machinery (and compared against the adder results in the ablation
benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.multipliers import MultiplierCircuit
from repro.circuits.signals import int_to_bits
from repro.simulation.testbench import TriadMeasurement
from repro.simulation.timing_sim import VosTimingSimulator
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


class MultiplierTestbench:
    """Reusable testbench for one multiplier circuit.

    The interface mirrors :class:`repro.simulation.testbench.AdderTestbench`:
    ``run_triad`` applies an operand stream under one operating triad and
    returns a :class:`~repro.simulation.testbench.TriadMeasurement` whose
    golden reference is the exact product.
    """

    def __init__(
        self,
        multiplier: MultiplierCircuit,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self._multiplier = multiplier
        self._simulator = VosTimingSimulator(
            multiplier.netlist,
            output_ports=multiplier.output_ports(),
            library=library,
        )

    @property
    def multiplier(self) -> MultiplierCircuit:
        """The circuit under test."""
        return self._multiplier

    @property
    def simulator(self) -> VosTimingSimulator:
        """The underlying timing simulator."""
        return self._simulator

    def nominal_critical_path(self, vdd: float | None = None, vbb: float = 0.0) -> float:
        """Static critical path delay (seconds) at the given operating point."""
        supply = DEFAULT_LIBRARY.technology.vdd_nominal if vdd is None else vdd
        return self._simulator.annotation(supply, vbb).critical_path_delay

    def run_triad(
        self,
        in1: np.ndarray,
        in2: np.ndarray,
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
    ) -> TriadMeasurement:
        """Apply an operand stream under one operating triad."""
        in1_arr = np.asarray(in1, dtype=np.int64)
        in2_arr = np.asarray(in2, dtype=np.int64)
        if in1_arr.shape != in2_arr.shape:
            raise ValueError("in1 and in2 must have the same shape")
        assignment = self._multiplier.input_assignment(in1_arr, in2_arr)
        result = self._simulator.run(assignment, tclk=tclk, vdd=vdd, vbb=vbb)
        exact = self._multiplier.exact_product(in1_arr, in2_arr)
        exact_bits = int_to_bits(exact, self._multiplier.output_width)
        return TriadMeasurement(
            adder_name=self._multiplier.name,
            tclk=tclk,
            vdd=vdd,
            vbb=vbb,
            in1=in1_arr,
            in2=in2_arr,
            latched_words=result.latched_words,
            exact_words=exact,
            error_bits=result.latched_bits != exact_bits,
            energy_per_operation=float(result.total_energy.mean()),
            dynamic_energy_per_operation=float(result.dynamic_energy.mean()),
            static_energy_per_operation=float(result.static_energy.mean()),
        )
