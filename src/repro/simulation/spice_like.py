"""Event-driven reference simulator (the "slow but faithful" engine).

The vectorised simulator in :mod:`repro.simulation.timing_sim` approximates
signal settling with a single arrival time per net.  This module provides an
event-driven simulator that propagates individual value-change events through
the netlist with per-gate delays, optionally perturbed by random per-gate
variation.  It models glitches (a net may change value several times within
one cycle) and is used to cross-check the vectorised engine in tests and in
the variability ablation benchmark.  It simulates one vector pair at a time,
so it plays the role SPICE plays in the paper: accurate and slow.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Mapping

import numpy as np

from repro.circuits.cells import evaluate_gate
from repro.circuits.netlist import Netlist
from repro.simulation.timing_sim import TimingAnnotation
from repro.technology.corners import VariabilityModel
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


@dataclasses.dataclass(frozen=True)
class EventDrivenResult:
    """Result of one event-driven cycle simulation.

    Attributes
    ----------
    latched:
        Mapping from output port name to the value sampled at ``tclk``.
    settled:
        Mapping from output port name to the final settled value.
    settle_time:
        Time at which the last observed output event occurred (seconds).
    transition_count:
        Total number of value-change events that occurred (includes
        glitches), which upper-bounds the dynamic energy estimate of the
        vectorised engine.
    """

    latched: dict[str, bool]
    settled: dict[str, bool]
    settle_time: float
    transition_count: int


class EventDrivenSimulator:
    """Single-vector event-driven timing simulator.

    Parameters
    ----------
    netlist:
        Combinational netlist to simulate.
    library:
        Standard-cell library providing per-gate delays.
    variability:
        Optional per-gate random delay variation; when provided, a seeded
        ``numpy.random.Generator`` must be supplied too.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: StandardCellLibrary = DEFAULT_LIBRARY,
        variability: VariabilityModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._netlist = netlist
        self._library = library
        self._variability = variability
        self._rng = rng
        if variability is not None and rng is None:
            raise ValueError("a random generator is required when variability is set")
        # Fanout map: net -> list of (gate index, gate).
        self._fanout: dict[int, list[int]] = {net: [] for net in range(netlist.net_count)}
        for index, gate in enumerate(netlist.topological_gates):
            for net in gate.inputs:
                self._fanout[net].append(index)

    def run_cycle(
        self,
        previous_inputs: Mapping[str, bool],
        current_inputs: Mapping[str, bool],
        tclk: float,
        vdd: float,
        vbb: float = 0.0,
    ) -> EventDrivenResult:
        """Simulate one clock cycle: previous vector settled, new vector applied.

        Parameters
        ----------
        previous_inputs / current_inputs:
            Scalar boolean value per primary-input port.
        tclk:
            Clock period in seconds; outputs are sampled at this time.
        vdd, vbb:
            Operating voltages.
        """
        if tclk <= 0:
            raise ValueError("tclk must be positive")
        annotation = TimingAnnotation.annotate(self._netlist, vdd, vbb, self._library)
        delays = annotation.gate_delays.copy()
        if self._variability is not None:
            multipliers = self._variability.sample_multipliers(
                len(delays), vdd, self._rng
            )
            delays = delays * multipliers

        gates = self._netlist.topological_gates
        values = self._settled_values(previous_inputs)
        sample_values: dict[int, bool] | None = None
        transition_count = 0
        last_output_event = 0.0
        output_nets = set(self._netlist.output_nets)

        # Event queue of (time, sequence, net, new_value).
        queue: list[tuple[float, int, int, bool]] = []
        sequence = 0
        for port, net in self._netlist.primary_inputs.items():
            new_value = bool(current_inputs[port])
            if new_value != values[net]:
                heapq.heappush(queue, (0.0, sequence, net, new_value))
                sequence += 1

        while queue:
            time, _seq, net, new_value = heapq.heappop(queue)
            if sample_values is None and time > tclk:
                # Clock edge passed: freeze the register sample before
                # applying any later events.
                sample_values = dict(values)
            if values[net] == new_value:
                continue
            values[net] = new_value
            transition_count += 1
            if net in output_nets:
                last_output_event = max(last_output_event, time)
            for gate_index in self._fanout[net]:
                gate = gates[gate_index]
                gate_output = bool(
                    evaluate_gate(
                        gate.gate_type,
                        [np.asarray(values[i]) for i in gate.inputs],
                    )
                )
                event_time = time + delays[gate_index]
                heapq.heappush(queue, (event_time, sequence, gate.output, gate_output))
                sequence += 1

        if sample_values is None:
            sample_values = dict(values)

        outputs = self._netlist.primary_outputs
        return EventDrivenResult(
            latched={port: bool(sample_values[net]) for port, net in outputs.items()},
            settled={port: bool(values[net]) for port, net in outputs.items()},
            settle_time=last_output_event,
            transition_count=transition_count,
        )

    def _settled_values(self, inputs: Mapping[str, bool]) -> dict[int, bool]:
        """Zero-delay settled state of every net for the given inputs."""
        ports = self._netlist.primary_inputs
        missing = set(ports) - set(inputs)
        if missing:
            raise ValueError(f"missing values for primary inputs: {sorted(missing)}")
        values: dict[int, bool] = {
            net: bool(inputs[port]) for port, net in ports.items()
        }
        for gate in self._netlist.topological_gates:
            gate_inputs = [np.asarray(values[net]) for net in gate.inputs]
            values[gate.output] = bool(evaluate_gate(gate.gate_type, gate_inputs))
        return values
