"""Random bit-flip fault injection baseline.

The simplest functional error model injects independent bit flips with a
fixed probability per output bit.  It ignores everything the paper's carry
statistical model captures (data dependence, bit-position dependence), which
makes it the natural baseline: the model-accuracy benchmark compares the SNR
of the carry-chain model against this injector at matched BER.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.signals import bits_to_int, int_to_bits


@dataclasses.dataclass(frozen=True)
class RandomBitFlipModel:
    """Position-independent random bit-flip error model.

    Attributes
    ----------
    width:
        Output word width in bits (adder output width = operand width + 1).
    bit_error_rate:
        Probability of flipping each output bit, independently.
    seed:
        Seed of the dedicated random generator.
    """

    width: int
    bit_error_rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ValueError("bit_error_rate must be within [0, 1]")

    def apply(self, exact_values: np.ndarray) -> np.ndarray:
        """Return the exact output words with random bit flips applied."""
        values = np.asarray(exact_values, dtype=np.int64)
        bits = int_to_bits(values, self.width)
        rng = np.random.default_rng(self.seed)
        flips = rng.random(bits.shape) < self.bit_error_rate
        return bits_to_int(np.logical_xor(bits, flips))

    def add(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Faulty addition: exact sum followed by random output bit flips."""
        exact = np.asarray(in1, dtype=np.int64) + np.asarray(in2, dtype=np.int64)
        return self.apply(exact)
