"""Fault injection: random bit-flip baseline and gate-level stuck-at faults.

Two error sources are modelled:

* :class:`RandomBitFlipModel` -- the simplest functional error model:
  independent bit flips with a fixed probability per output bit.  It ignores
  everything the paper's carry statistical model captures (data dependence,
  bit-position dependence), which makes it the natural baseline: the
  model-accuracy benchmark compares the SNR of the carry-chain model against
  this injector at matched BER.
* :class:`StuckAtFaultSimulator` -- structural single-stuck-at fault
  simulation on the compiled level-packed engine: a fault forces one net to
  a constant and the whole pattern set is evaluated 64 vectors per machine
  word (:meth:`repro.simulation.engine.CompiledNetlistPlan.evaluate_forced`).
  Fault lists shard cleanly across worker processes, so the sweep
  orchestrator (:mod:`repro.core.sweep`) can fan a full fault campaign out
  the same way it shards triad grids.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.signals import bits_to_int, int_to_bits
from repro.simulation import engine


@dataclasses.dataclass(frozen=True)
class RandomBitFlipModel:
    """Position-independent random bit-flip error model.

    Attributes
    ----------
    width:
        Output word width in bits (adder output width = operand width + 1).
    bit_error_rate:
        Probability of flipping each output bit, independently.
    seed:
        Seed of the dedicated random generator.
    """

    width: int
    bit_error_rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ValueError("bit_error_rate must be within [0, 1]")

    def apply(self, exact_values: np.ndarray) -> np.ndarray:
        """Return the exact output words with random bit flips applied."""
        values = np.asarray(exact_values, dtype=np.int64)
        bits = int_to_bits(values, self.width)
        rng = np.random.default_rng(self.seed)
        flips = rng.random(bits.shape) < self.bit_error_rate
        return bits_to_int(np.logical_xor(bits, flips))

    def add(self, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
        """Faulty addition: exact sum followed by random output bit flips."""
        exact = np.asarray(in1, dtype=np.int64) + np.asarray(in2, dtype=np.int64)
        return self.apply(exact)


# ---------------------------------------------------------------------------
# Gate-level stuck-at faults (compiled-engine path)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault site: one net forced to a constant value.

    Attributes
    ----------
    net:
        Net id the fault is injected on.
    stuck_value:
        The constant the net is forced to (``False`` = stuck-at-0).
    """

    net: int
    stuck_value: bool

    def __post_init__(self) -> None:
        if self.net < 0:
            raise ValueError("net must be non-negative")

    def label(self) -> str:
        """Conventional fault label, e.g. ``"n17/sa1"``."""
        return f"n{self.net}/sa{int(self.stuck_value)}"


def enumerate_stuck_at_faults(netlist: Netlist) -> tuple[StuckAtFault, ...]:
    """The full single-stuck-at fault list of a netlist.

    Both polarities on every primary-input net and every gate output net, in
    deterministic (net id, polarity) order -- the classic collapsed-universe
    starting point for a fault-coverage campaign.
    """
    sites = sorted(
        set(netlist.input_nets) | {gate.output for gate in netlist.gates}
    )
    return tuple(
        StuckAtFault(net=net, stuck_value=value)
        for net in sites
        for value in (False, True)
    )


def fault_coverage(results: "Iterable[FaultSimulationResult]") -> float:
    """Fault coverage of a result list: detected faults over all faults.

    The one definition shared by :meth:`StuckAtFaultSimulator.coverage` and
    the campaign summaries of :mod:`repro.analysis.faults` (and therefore by
    the ``repro faults`` workflow, whose sharded results come back through
    :func:`repro.core.sweep.run_fault_sweep`).
    """
    result_list = list(results)
    if not result_list:
        return 0.0
    return sum(result.detected for result in result_list) / len(result_list)


@dataclasses.dataclass(frozen=True)
class FaultSimulationResult:
    """Outcome of simulating one stuck-at fault over a pattern set.

    Attributes
    ----------
    fault:
        The injected fault.
    detected:
        True when at least one pattern propagates the fault to an observed
        output (the fault is testable by this pattern set).
    faulty_vector_fraction:
        Fraction of patterns whose output word differs from the golden word.
    ber:
        Bit error rate over all observed output bits and patterns.
    """

    fault: StuckAtFault
    detected: bool
    faulty_vector_fraction: float
    ber: float


class StuckAtFaultSimulator:
    """Single-stuck-at fault simulator on the compiled packed engine.

    The golden (fault-free) response is evaluated once per pattern set in
    bit-packed mode; each fault then re-runs the packed evaluation with the
    fault site forced, and the two output words are XOR-compared 64 vectors
    per machine word.

    Parameters
    ----------
    netlist:
        Combinational netlist under test.
    output_ports:
        Observed primary outputs, LSB first; defaults to all primary outputs
        in declaration order.
    """

    def __init__(
        self, netlist: Netlist, output_ports: tuple[str, ...] | None = None
    ) -> None:
        self._netlist = netlist
        self._plan = engine.compile_plan(netlist)
        all_outputs = netlist.primary_outputs
        if output_ports is None:
            output_ports = tuple(all_outputs)
        for port in output_ports:
            if port not in all_outputs:
                raise ValueError(f"unknown output port {port!r}")
        self._output_ports = output_ports
        self._output_nets = np.array(
            [all_outputs[port] for port in output_ports], dtype=np.intp
        )

    @property
    def netlist(self) -> Netlist:
        """The netlist under test."""
        return self._netlist

    @property
    def output_ports(self) -> tuple[str, ...]:
        """Observed output ports, LSB first."""
        return self._output_ports

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        faults: Iterable[StuckAtFault] | None = None,
    ) -> list[FaultSimulationResult]:
        """Simulate a fault list over one pattern set.

        Parameters
        ----------
        inputs:
            Mapping from primary-input port name to a 1-D boolean array (the
            pattern set, one element per vector).
        faults:
            Faults to inject; defaults to the full list of
            :func:`enumerate_stuck_at_faults`.  Results come back in the
            given order.
        """
        fault_list = list(
            enumerate_stuck_at_faults(self._netlist) if faults is None else faults
        )
        for fault in fault_list:
            if fault.net >= self._plan.net_count:
                raise ValueError(
                    f"fault net {fault.net} outside netlist "
                    f"(net_count={self._plan.net_count})"
                )
        bound = self._bind_inputs(inputs)
        golden_words, n_vectors = engine.evaluate_packed(self._netlist, bound)
        golden_outputs = golden_words[self._output_nets]
        # Padding bits of the tail word are identical between golden and
        # faulty runs of unforced nets but junk under forcing; mask them out
        # of every comparison.
        mask = _tail_mask(n_vectors, golden_outputs.shape[-1])
        results: list[FaultSimulationResult] = []
        # The packed primary-input rows are fault-independent: build the
        # template once, reset the value array from it per fault.
        template, _ = engine.pack_bound_inputs(self._plan.net_count, bound)
        values = np.empty_like(template)
        n_output_bits = n_vectors * self._output_nets.size
        for fault in fault_list:
            values[:] = template
            self._plan.evaluate_forced(values, {fault.net: fault.stuck_value})
            diff = (values[self._output_nets] ^ golden_outputs) & mask
            error_bit_count = int(np.bitwise_count(diff).sum())
            any_diff = np.bitwise_or.reduce(diff, axis=0)
            faulty_vectors = int(np.bitwise_count(any_diff).sum())
            results.append(
                FaultSimulationResult(
                    fault=fault,
                    detected=error_bit_count > 0,
                    faulty_vector_fraction=faulty_vectors / n_vectors,
                    ber=error_bit_count / n_output_bits,
                )
            )
        return results

    def coverage(
        self,
        inputs: Mapping[str, np.ndarray],
        faults: Iterable[StuckAtFault] | None = None,
    ) -> float:
        """Fault coverage of a pattern set: detected faults over all faults."""
        return fault_coverage(self.run(inputs, faults))

    def _bind_inputs(self, inputs: Mapping[str, np.ndarray]) -> dict[int, np.ndarray]:
        ports = self._netlist.primary_inputs
        missing = set(ports) - set(inputs)
        if missing:
            raise ValueError(f"missing values for primary inputs: {sorted(missing)}")
        bound: dict[int, np.ndarray] = {}
        shapes = set()
        for port, net in ports.items():
            array = np.atleast_1d(np.asarray(inputs[port], dtype=bool))
            if array.ndim != 1:
                raise ValueError("fault simulation expects 1-D pattern arrays")
            shapes.add(array.shape)
            bound[net] = array
        if len(shapes) > 1:
            raise ValueError(f"primary input arrays have inconsistent shapes: {shapes}")
        return bound


def _tail_mask(n_vectors: int, n_words: int) -> np.ndarray:
    """Per-word mask of valid vector bits (the tail word is partially used)."""
    mask = np.full(n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
    tail_bits = n_vectors - (n_words - 1) * engine.WORD_BITS
    if tail_bits < engine.WORD_BITS:
        mask[-1] = np.uint64((1 << tail_bits) - 1)
    return mask
