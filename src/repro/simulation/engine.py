"""Compiled, level-packed netlist evaluation engine.

The per-gate Python loops of the original simulators dominate every number
this reproduction produces: a functional pass dispatches one Python call per
gate, and the characterization flow re-simulates identical golden values for
every triad of the grid.  This module compiles a netlist **once** into a
:class:`CompiledNetlistPlan` -- per-level, per-gate-type NumPy index arrays --
so that:

* a whole level of same-typed gates is evaluated with one vectorised bitwise
  operation (see :data:`repro.circuits.cells.GATE_WORD_FUNCTIONS`),
* the same plan evaluates either boolean arrays (one vector per element) or
  **bit-packed** ``uint64`` words (64 vectors per element) -- the packed mode
  is what makes zero-delay golden simulation ~2 orders of magnitude cheaper,
* the data-dependent arrival-time propagation of the VOS timing simulator
  runs group-at-a-time over ``(gates, vectors)`` blocks instead of gate by
  gate,
* per-netlist metadata (capacitive net loads, level structure) and the
  per-operating-point timing annotation are computed once and shared by
  every simulation that follows.

Caching contract
----------------
* keyed on the **netlist** (weakly, so netlists can be garbage collected):
  the compiled plan and the capacitive net loads per library;
* keyed on ``(vdd, vbb)``: gate delays / switch energies / leakage
  (:func:`annotation_arrays`), computed through the same float expressions
  and summation order as the legacy per-gate loop so annotations stay
  bit-identical with it;
* keyed on the **pattern set** and ``(vdd, vbb)``: settled values, toggle
  masks and arrival times are cached by :class:`~repro.simulation.timing_sim.
  VosTimingSimulator`, so triads differing only in ``tclk`` re-run only the
  latch comparison.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Mapping

import numpy as np

from repro.circuits.cells import GATE_WORD_FUNCTIONS, GateType, evaluate_gate
from repro.circuits.netlist import Netlist
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary

#: Version tag of the simulation numerics.  The sweep result store keys every
#: cached entry on this value; bump it whenever a change alters any number an
#: engine simulation produces (delays, energies, latched bits), so stale
#: on-disk results are invalidated instead of silently reused.
ENGINE_VERSION = 2

#: Extra load on primary outputs standing in for the capture register input.
OUTPUT_REGISTER_LOAD_CELL = "DFF"

#: Vectors per packed word.
WORD_BITS = 64


# ---------------------------------------------------------------------------
# Bit packing (64 stimulus vectors per uint64 word)
# ---------------------------------------------------------------------------


def pack_vectors(bits: np.ndarray) -> np.ndarray:
    """Pack boolean vectors along the last axis into ``uint64`` words.

    ``bits[..., i]`` becomes bit ``i % 64`` of word ``bits[..., i // 64]``;
    the tail word is zero padded.  Inverse of :func:`unpack_vectors`.
    """
    array = np.ascontiguousarray(np.asarray(bits, dtype=bool))
    n = array.shape[-1]
    n_words = (n + WORD_BITS - 1) // WORD_BITS
    packed = np.packbits(array, axis=-1, bitorder="little")
    word_bytes = n_words * (WORD_BITS // 8)
    if packed.shape[-1] != word_bytes:
        # Pad to whole words after packing (bytes), not before (bools).
        buffer = np.zeros(array.shape[:-1] + (word_bytes,), dtype=np.uint8)
        buffer[..., : packed.shape[-1]] = packed
        packed = buffer
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_vectors(words: np.ndarray, n_vectors: int) -> np.ndarray:
    """Unpack ``uint64`` words back into ``n_vectors`` boolean vectors."""
    array = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
    bits = np.unpackbits(array.view(np.uint8), axis=-1, bitorder="little")
    # unpackbits yields 0/1 uint8 -- reinterpreting as bool is free.
    return bits[..., :n_vectors].view(bool)


# ---------------------------------------------------------------------------
# In-place singleton kernels
# ---------------------------------------------------------------------------
#
# Deep serial structures (the carry chain of a ripple-carry adder) degenerate
# into one-gate groups no schedule can merge, so the per-group constant cost
# is what bounds their throughput.  These kernels evaluate a single gate with
# the minimum number of ufunc calls, writing straight into the output row of
# the value array (`out=`), with no temporaries beyond what the boolean
# identity needs.  Each must compute the same function as its
# :data:`~repro.circuits.cells.GATE_WORD_FUNCTIONS` entry (the parity tests
# in ``tests/simulation/test_engine.py`` enforce this bit for bit).


def _k_inv(v, i, o):
    np.bitwise_not(v[i[0]], out=v[o])


def _k_buf(v, i, o):
    np.copyto(v[o], v[i[0]])


def _k_and2(v, i, o):
    np.bitwise_and(v[i[0]], v[i[1]], out=v[o])


def _k_or2(v, i, o):
    np.bitwise_or(v[i[0]], v[i[1]], out=v[o])


def _k_nand2(v, i, o):
    out = v[o]
    np.bitwise_and(v[i[0]], v[i[1]], out=out)
    np.bitwise_not(out, out=out)


def _k_nand3(v, i, o):
    out = v[o]
    np.bitwise_and(v[i[0]], v[i[1]], out=out)
    np.bitwise_and(out, v[i[2]], out=out)
    np.bitwise_not(out, out=out)


def _k_nor2(v, i, o):
    out = v[o]
    np.bitwise_or(v[i[0]], v[i[1]], out=out)
    np.bitwise_not(out, out=out)


def _k_nor3(v, i, o):
    out = v[o]
    np.bitwise_or(v[i[0]], v[i[1]], out=out)
    np.bitwise_or(out, v[i[2]], out=out)
    np.bitwise_not(out, out=out)


def _k_xor2(v, i, o):
    np.bitwise_xor(v[i[0]], v[i[1]], out=v[o])


def _k_xnor2(v, i, o):
    out = v[o]
    np.bitwise_xor(v[i[0]], v[i[1]], out=out)
    np.bitwise_not(out, out=out)


def _k_aoi21(v, i, o):
    out = v[o]
    np.bitwise_and(v[i[0]], v[i[1]], out=out)
    np.bitwise_or(out, v[i[2]], out=out)
    np.bitwise_not(out, out=out)


def _k_oai21(v, i, o):
    out = v[o]
    np.bitwise_or(v[i[0]], v[i[1]], out=out)
    np.bitwise_and(out, v[i[2]], out=out)
    np.bitwise_not(out, out=out)


def _k_maj3(v, i, o):
    # MAJ(a, b, c) == (a & b) | ((a ^ b) & c)
    a, b, c = v[i[0]], v[i[1]], v[i[2]]
    out = v[o]
    carry_propagate = np.bitwise_xor(a, b)
    np.bitwise_and(carry_propagate, c, out=carry_propagate)
    np.bitwise_and(a, b, out=out)
    np.bitwise_or(out, carry_propagate, out=out)


def _k_mux2(v, i, o):
    # MUX(a, b, sel) == (a & ~sel) | (b & sel); pin order (A, B, SEL).
    a, b, sel = v[i[0]], v[i[1]], v[i[2]]
    out = v[o]
    not_sel = np.bitwise_not(sel)
    np.bitwise_and(not_sel, a, out=not_sel)
    np.bitwise_and(b, sel, out=out)
    np.bitwise_or(out, not_sel, out=out)


_SINGLE_GATE_KERNELS = {
    GateType.INV: _k_inv,
    GateType.BUF: _k_buf,
    GateType.AND2: _k_and2,
    GateType.OR2: _k_or2,
    GateType.NAND2: _k_nand2,
    GateType.NAND3: _k_nand3,
    GateType.NOR2: _k_nor2,
    GateType.NOR3: _k_nor3,
    GateType.XOR2: _k_xor2,
    GateType.XNOR2: _k_xnor2,
    GateType.AOI21: _k_aoi21,
    GateType.OAI21: _k_oai21,
    GateType.MAJ3: _k_maj3,
    GateType.MUX2: _k_mux2,
}


#: Per-net payload (elements) above which a multi-gate group switches from
#: one gathered vectorised call to per-gate in-place kernels: the gather and
#: scatter copies grow with the payload while the per-gate call overhead is
#: constant, so big batches favour the copy-free kernels.
_GROUP_LOOP_THRESHOLD = 2048


def _compile_group_step(group: "GateGroup"):
    """Closure evaluating one group with minimal Python/numpy overhead."""
    kernel = _SINGLE_GATE_KERNELS[group.gate_type]
    if group.output_nets.size == 1:
        pins = tuple(int(net) for net in group.input_nets[:, 0])
        output = int(group.output_nets[0])

        def step(values, kernel=kernel, pins=pins, output=output):
            kernel(values, pins, output)

    else:
        function = GATE_WORD_FUNCTIONS[group.gate_type]
        inputs = group.input_nets
        outputs = group.output_nets
        per_gate = tuple(
            (tuple(int(net) for net in inputs[:, j]), int(outputs[j]))
            for j in range(outputs.size)
        )

        def step(
            values,
            kernel=kernel,
            function=function,
            inputs=inputs,
            outputs=outputs,
            per_gate=per_gate,
        ):
            if values[0].size >= _GROUP_LOOP_THRESHOLD:
                for pins, output in per_gate:
                    kernel(values, pins, output)
            else:
                values[outputs] = function(values[inputs])

    return step


# ---------------------------------------------------------------------------
# Compiled plan
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class GateGroup:
    """One vectorisable unit: all gates of one type within one logic level.

    Attributes
    ----------
    gate_type:
        Shared cell type of the group.
    level:
        Logic level of the group's outputs.
    input_nets:
        Net ids of the input pins, shape ``(arity, n_gates)``.
    output_nets:
        Net ids driven by the group, shape ``(n_gates,)``.
    topo_indices:
        Position of each gate in ``netlist.topological_gates`` -- the index
        space of the timing-annotation arrays.
    """

    gate_type: GateType
    level: int
    input_nets: np.ndarray
    output_nets: np.ndarray
    topo_indices: np.ndarray


class CompiledNetlistPlan:
    """Level-packed evaluation schedule of one netlist.

    The plan holds only index arrays (no reference back to the netlist), so
    the module-level plan cache can let netlists be garbage collected.
    """

    def __init__(self, netlist: Netlist) -> None:
        topo = netlist.topological_gates
        groups: list[GateGroup] = []
        for level, gate_type, indices in netlist.level_groups():
            gates = [topo[i] for i in indices]
            groups.append(
                GateGroup(
                    gate_type=gate_type,
                    level=level,
                    input_nets=np.array(
                        [gate.inputs for gate in gates], dtype=np.intp
                    ).T.copy(),
                    output_nets=np.array(
                        [gate.output for gate in gates], dtype=np.intp
                    ),
                    topo_indices=np.array(indices, dtype=np.intp),
                )
            )
        self._groups = tuple(groups)
        self._program = tuple(_compile_group_step(group) for group in groups)
        self._net_count = netlist.net_count
        self._gate_count = len(topo)
        self._gate_output_nets = np.array(
            [gate.output for gate in topo], dtype=np.intp
        )
        self._input_nets = np.array(netlist.input_nets, dtype=np.intp)
        self._output_nets = np.array(netlist.output_nets, dtype=np.intp)
        driven = list(netlist.primary_inputs.values()) + [g.output for g in topo]
        self._driven_nets = tuple(dict.fromkeys(driven))
        type_indices: dict[GateType, list[int]] = {}
        for group in groups:
            type_indices.setdefault(group.gate_type, []).extend(
                group.topo_indices.tolist()
            )
        self._type_indices = {
            gate_type: np.array(indices, dtype=np.intp)
            for gate_type, indices in sorted(
                type_indices.items(), key=lambda item: item[0].value
            )
        }

    # -- structural accessors -------------------------------------------------

    @property
    def groups(self) -> tuple[GateGroup, ...]:
        """Evaluation groups in schedule (level, then type) order."""
        return self._groups

    @property
    def net_count(self) -> int:
        """Number of nets in the compiled netlist."""
        return self._net_count

    @property
    def gate_count(self) -> int:
        """Number of gates in the compiled netlist."""
        return self._gate_count

    @property
    def gate_output_nets(self) -> np.ndarray:
        """Output net of each gate, indexed like ``topological_gates``."""
        return self._gate_output_nets

    @property
    def driven_nets(self) -> tuple[int, ...]:
        """Nets with a driver (primary inputs first, then gate outputs)."""
        return self._driven_nets

    @property
    def type_indices(self) -> dict[GateType, np.ndarray]:
        """Topological gate indices grouped per cell type."""
        return self._type_indices

    # -- evaluation kernels ----------------------------------------------------

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Settle all gate outputs in-place over a full value array.

        ``values`` has shape ``(net_count, ...)`` with primary-input rows
        already filled.  The dtype may be ``bool`` (one stimulus vector per
        element) or ``uint64`` (64 packed vectors per element); the gate
        functions only use bitwise operations so both behave identically.
        Multi-gate groups dispatch one vectorised bitwise op through
        :data:`~repro.circuits.cells.GATE_WORD_FUNCTIONS`; one-gate groups
        (serial structures such as a ripple carry chain) run pre-compiled
        in-place kernels.
        """
        for step in self._program:
            step(values)
        return values

    def evaluate_forced(
        self, values: np.ndarray, forced: Mapping[int, bool]
    ) -> np.ndarray:
        """Settle all gate outputs with selected nets forced to constants.

        ``forced`` maps net ids to stuck values; a forced net keeps its
        constant regardless of what its driver computes, which models a
        stuck-at fault at that net.  Works on the same value-array layouts as
        :meth:`evaluate` (``bool`` rows or bit-packed ``uint64`` rows --
        padding bits of a forced packed row are junk, like every packed tail).
        """
        if not forced:
            return self.evaluate(values)
        one = (
            np.iinfo(np.uint64).max
            if values.dtype == np.uint64
            else values.dtype.type(True)
        )
        zero = values.dtype.type(0)
        for net, value in forced.items():
            values[net] = one if value else zero
        for step, group in zip(self._program, self._groups):
            step(values)
            for net in group.output_nets:
                stuck = forced.get(int(net))
                if stuck is not None:
                    values[net] = one if stuck else zero
        return values

    def arrival_pass(
        self, changed: np.ndarray, gate_delays: np.ndarray
    ) -> np.ndarray:
        """Data-dependent arrival time of every net for a batch of vectors.

        Parameters
        ----------
        changed:
            Boolean toggle mask per net, shape ``(net_count, n_vectors)``,
            with primary-input rows filled.
        gate_delays:
            Per-gate delays in seconds, indexed like ``topological_gates``.

        A net that does not toggle has arrival 0; a toggling net settles one
        gate delay after its latest *toggling* input -- the same recurrence as
        the legacy per-gate loop, evaluated one group at a time.
        """
        arrival = np.zeros(changed.shape, dtype=float)
        for group in self._groups:
            gathered = arrival[group.input_nets]
            contribution = np.where(changed[group.input_nets], gathered, 0.0)
            input_arrival = contribution.max(axis=0)
            delays = gate_delays[group.topo_indices][:, None]
            arrival[group.output_nets] = np.where(
                changed[group.output_nets], input_arrival + delays, 0.0
            )
        return arrival

    def batched_arrival_pass(
        self, changed: np.ndarray, gate_delay_matrix: np.ndarray
    ) -> np.ndarray:
        """Arrival times for a *batch* of per-gate delay assignments.

        The Monte Carlo variation subsystem evaluates many sampled delay
        instances of one netlist against one toggle mask; this pass lowers
        the instance axis through the same group-at-a-time recurrence as
        :meth:`arrival_pass` so a whole batch costs one schedule walk, not a
        Python loop over instances.

        Parameters
        ----------
        changed:
            Boolean toggle mask per net, shape ``(net_count, n_vectors)`` --
            variation-independent (delays never change logic values).
        gate_delay_matrix:
            Per-instance per-gate delays in seconds, shape
            ``(n_instances, gate_count)``.

        Returns
        -------
        Arrival times of shape ``(net_count, n_instances, n_vectors)``.  For
        a single all-nominal instance the result is bit-identical with
        :meth:`arrival_pass` (same operations in the same order).
        """
        delays = np.asarray(gate_delay_matrix, dtype=float)
        if delays.ndim != 2 or delays.shape[1] != self._gate_count:
            raise ValueError(
                "gate_delay_matrix must have shape (n_instances, "
                f"{self._gate_count}); got {delays.shape}"
            )
        n_instances = delays.shape[0]
        arrival = np.zeros(
            (changed.shape[0], n_instances, changed.shape[1]), dtype=float
        )
        for group in self._groups:
            gathered = arrival[group.input_nets]
            mask = changed[group.input_nets][:, :, None, :]
            contribution = np.where(mask, gathered, 0.0)
            input_arrival = contribution.max(axis=0)
            group_delays = delays[:, group.topo_indices].T[:, :, None]
            arrival[group.output_nets] = np.where(
                changed[group.output_nets][:, None, :],
                input_arrival + group_delays,
                0.0,
            )
        return arrival

    def static_arrival_pass(self, gate_delays: np.ndarray) -> np.ndarray:
        """Topological (worst-case) arrival time of every net, in seconds."""
        arrival = np.zeros(self._net_count, dtype=float)
        for group in self._groups:
            input_arrival = arrival[group.input_nets].max(axis=0)
            arrival[group.output_nets] = (
                input_arrival + gate_delays[group.topo_indices]
            )
        return arrival


_PLAN_CACHE: "weakref.WeakKeyDictionary[Netlist, CompiledNetlistPlan]" = (
    weakref.WeakKeyDictionary()
)


def compile_plan(netlist: Netlist) -> CompiledNetlistPlan:
    """Compile (or fetch the cached) evaluation plan of a netlist."""
    plan = _PLAN_CACHE.get(netlist)
    if plan is None:
        plan = CompiledNetlistPlan(netlist)
        _PLAN_CACHE[netlist] = plan
    return plan


# ---------------------------------------------------------------------------
# Per-netlist electrical metadata and per-(vdd, vbb) annotation
# ---------------------------------------------------------------------------


_NET_LOADS_CACHE: (
    "weakref.WeakKeyDictionary[Netlist, weakref.WeakKeyDictionary[StandardCellLibrary, np.ndarray]]"
) = weakref.WeakKeyDictionary()


def net_loads(netlist: Netlist, library: StandardCellLibrary) -> np.ndarray:
    """Capacitive load on every net (fanin gate caps + wire + register load).

    Computed once per ``(netlist, library)`` pair and cached weakly -- the
    legacy flow recomputed this for every operating point of a sweep.
    """
    per_library = _NET_LOADS_CACHE.get(netlist)
    if per_library is None:
        per_library = weakref.WeakKeyDictionary()
        _NET_LOADS_CACHE[netlist] = per_library
    loads = per_library.get(library)
    if loads is None:
        tech = library.technology
        loads = np.zeros(netlist.net_count, dtype=float)
        for gate in netlist.gates:
            pin_cap = library.input_capacitance(gate.gate_type.value)
            for net in gate.inputs:
                loads[net] += pin_cap + tech.wire_capacitance_per_fanout
        register_cap = library.input_capacitance(OUTPUT_REGISTER_LOAD_CELL)
        for net in netlist.output_nets:
            loads[net] += register_cap + tech.wire_capacitance_per_fanout
        # A gate must at least drive its own parasitic output capacitance.
        loads += tech.parasitic_capacitance
        loads.setflags(write=False)
        per_library[library] = loads
    return loads


def annotation_arrays(
    netlist: Netlist,
    vdd: float,
    vbb: float,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Gate delays, switch energies, leakage power and critical path.

    Vectorised per cell type, but through the exact float expressions of
    ``StandardCellLibrary.cell_delay`` so every per-gate delay is
    bit-identical with the legacy per-gate annotation loop.
    """
    plan = compile_plan(netlist)
    loads = net_loads(netlist, library)
    tech = library.technology
    tau = library.delay_model(vdd, vbb).tau
    delays = np.empty(plan.gate_count, dtype=float)
    energies = np.empty(plan.gate_count, dtype=float)
    leakage_per_type: dict[GateType, float] = {}
    for gate_type, indices in plan.type_indices.items():
        cell = library.cell(gate_type.value)
        own_input_cap = cell.input_capacitance_factor * tech.gate_capacitance
        electrical_effort = loads[plan.gate_output_nets[indices]] / (
            own_input_cap * cell.drive_strength
        )
        delays[indices] = tau * (
            cell.parasitic_delay + cell.logical_effort * electrical_effort
        )
        energies[indices] = library.cell_switching_energy(gate_type.value, vdd)
        leakage_per_type[gate_type] = library.cell_leakage_power(
            gate_type.value, vdd, vbb
        )
    # Accumulate leakage gate by gate in topological order -- the same float
    # summation the per-gate annotation loop performed, so the total is
    # bit-identical with it.
    leakage = 0.0
    for gate in netlist.topological_gates:
        leakage += leakage_per_type[gate.gate_type]
    arrival = plan.static_arrival_pass(delays)
    output_nets = np.array(netlist.output_nets, dtype=np.intp)
    critical = float(arrival[output_nets].max()) if output_nets.size else 0.0
    return delays, energies, leakage, critical


def gate_leakage_powers(
    netlist: Netlist,
    vdd: float,
    vbb: float,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
) -> np.ndarray:
    """Static power in watts of each gate, indexed like ``topological_gates``.

    :func:`annotation_arrays` only needs the netlist *total*; the variation
    subsystem scales each gate's leakage by its sampled mismatch before
    summing, so it needs the per-gate array.  Summing this array gate by gate
    in topological order reproduces the annotation total exactly.
    """
    plan = compile_plan(netlist)
    powers = np.empty(plan.gate_count, dtype=float)
    for gate_type, indices in plan.type_indices.items():
        powers[indices] = library.cell_leakage_power(gate_type.value, vdd, vbb)
    return powers


# ---------------------------------------------------------------------------
# Functional (zero-delay) evaluation entry points
# ---------------------------------------------------------------------------


def evaluate_values(
    netlist: Netlist, bound_inputs: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Settled boolean value of every net for bound primary-input arrays.

    ``bound_inputs`` maps input net ids to boolean arrays of one common shape
    ``S``; the result has shape ``(net_count, *S)``.
    """
    plan = compile_plan(netlist)
    sample = next(iter(bound_inputs.values()))
    values = np.zeros((plan.net_count,) + np.shape(sample), dtype=bool)
    for net, array in bound_inputs.items():
        values[net] = array
    return plan.evaluate(values)


def pack_bound_inputs(
    net_count: int, bound_inputs: Mapping[int, np.ndarray]
) -> tuple[np.ndarray, int]:
    """Bit-packed value matrix with the primary-input rows filled.

    Returns ``(words, n_vectors)`` where ``words`` has shape
    ``(net_count, n_words)`` -- 64 stimulus vectors per ``uint64`` word, all
    undriven rows zero.  Each port is packed straight into its row of the
    word matrix: no stacked boolean intermediate, one packbits pass per
    input array.  This is the single definition of the packed input layout;
    every packed evaluation (golden, fault-forced) must build on it.
    """
    sample = next(iter(bound_inputs.values()))
    n_vectors = int(np.shape(sample)[0])
    n_words = (n_vectors + WORD_BITS - 1) // WORD_BITS
    words = np.zeros((net_count, n_words), dtype=np.uint64)
    byte_rows = words.view(np.uint8)
    for net, array in bound_inputs.items():
        packed = np.packbits(
            np.ascontiguousarray(array, dtype=bool), bitorder="little"
        )
        byte_rows[net, : packed.size] = packed
    return words, n_vectors


def evaluate_packed(
    netlist: Netlist, bound_inputs: Mapping[int, np.ndarray]
) -> tuple[np.ndarray, int]:
    """Bit-packed settled values of every net for 1-D bound input arrays.

    Returns ``(words, n_vectors)`` where ``words`` has shape
    ``(net_count, n_words)`` -- 64 stimulus vectors per ``uint64`` word.
    """
    plan = compile_plan(netlist)
    words, n_vectors = pack_bound_inputs(plan.net_count, bound_inputs)
    return plan.evaluate(words), n_vectors


def reference_evaluate_values(
    netlist: Netlist, bound_inputs: Mapping[int, np.ndarray]
) -> dict[int, np.ndarray]:
    """Legacy per-gate functional evaluation (one Python call per gate).

    Kept as the parity/benchmark reference for the compiled engine.
    """
    values: dict[int, np.ndarray] = dict(bound_inputs)
    for gate in netlist.topological_gates:
        gate_inputs = [values[net] for net in gate.inputs]
        values[gate.output] = evaluate_gate(gate.gate_type, gate_inputs)
    return values
