"""Reproduction harness: data series and tables for every paper figure/table.

Each public function returns plain Python/numpy data (and a rendered text
table where relevant) so the benchmarks can both check the qualitative shape
and print the same rows/series the paper reports.

* Table II  -- :func:`repro.analysis.tables.table2_synthesis`
* Table III -- :func:`repro.analysis.tables.table3_triads`
* Table IV  -- :func:`repro.analysis.tables.table4_energy_efficiency`
* Fig. 5    -- :func:`repro.analysis.figures.fig5_ber_per_bit`
* Fig. 7    -- :func:`repro.analysis.figures.fig7_model_accuracy`
* Fig. 8    -- :func:`repro.analysis.figures.fig8_ber_energy_series`

Beyond the paper, the exploration subsystem's reports live here too:
the Pareto-frontier series (:func:`repro.analysis.figures.frontier_series`)
and the ranked-configuration table
(:func:`repro.analysis.tables.ranked_configurations`), as do the Monte Carlo
variation reports (:mod:`repro.analysis.variation`: per-triad BER
distribution tables and yield-vs-Vdd series).
"""

from repro.analysis.tables import (
    table2_synthesis,
    table3_triads,
    table4_energy_efficiency,
    render_table4,
    RankedConfiguration,
    ranked_configurations,
    render_ranked_configurations,
)
from repro.analysis.figures import (
    Fig5Series,
    fig5_ber_per_bit,
    Fig7Point,
    fig7_model_accuracy,
    Fig8Series,
    fig8_ber_energy_series,
    render_fig8,
    FrontierSeries,
    frontier_series,
    render_frontier,
)
from repro.analysis.variation import (
    YieldPoint,
    render_variation_table,
    render_yield_series,
    yield_vs_vdd_series,
)

__all__ = [
    "table2_synthesis",
    "table3_triads",
    "table4_energy_efficiency",
    "render_table4",
    "Fig5Series",
    "fig5_ber_per_bit",
    "Fig7Point",
    "fig7_model_accuracy",
    "Fig8Series",
    "fig8_ber_energy_series",
    "render_fig8",
    "FrontierSeries",
    "frontier_series",
    "render_frontier",
    "RankedConfiguration",
    "ranked_configurations",
    "render_ranked_configurations",
    "YieldPoint",
    "render_variation_table",
    "render_yield_series",
    "yield_vs_vdd_series",
]
