"""Reports of the Monte Carlo variation subsystem.

Beyond the paper: the paper's Fig. 5/8 numbers are nominal-process values;
these renderers report their spread under sampled process variation -- the
per-triad BER/energy distribution table and the yield-vs-Vdd series a
manufacturing-margin analysis reads.  Like the other analysis generators,
every function returns structured data (or a rendered text table) so the
benchmarks can assert shapes and print the same rows.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.variation.stats import TriadVariationResult


def render_variation_table(
    results: Sequence[TriadVariationResult], max_ber: float
) -> str:
    """Distribution table: per-triad BER spread, yield and energy.

    One row per triad in input order; BER columns are percentages, the yield
    column is the fraction of sampled instances meeting ``max_ber``.
    """
    lines = ["Variation-aware characterization: BER distribution per triad"]
    lines.append(
        f"{'triad (Tclk ns, Vdd V, Vbb V)':<30}{'mean %':>9}{'p50 %':>9}"
        f"{'p95 %':>9}{'p99 %':>9}{f'yield@{max_ber * 100:g}%':>11}"
        f"{'E/op pJ':>10}"
    )
    for result in results:
        ber = result.ber
        lines.append(
            f"{result.triad.label():<30}"
            f"{ber.mean * 100:>9.2f}{ber.p50 * 100:>9.2f}"
            f"{ber.p95 * 100:>9.2f}{ber.p99 * 100:>9.2f}"
            f"{result.yield_at(max_ber) * 100:>10.1f}%"
            f"{result.energy.mean * 1e12:>10.4f}"
        )
    return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class YieldPoint:
    """Parametric yield of one operating triad under a BER margin.

    Attributes
    ----------
    vdd / tclk / vbb:
        The operating triad's coordinates.
    yield_fraction:
        Fraction of sampled instances whose BER meets the margin (0..1).
    ber_p95:
        95th-percentile BER across instances (fraction) -- the robust BER
        the yield is effectively gated by.
    """

    vdd: float
    tclk: float
    vbb: float
    yield_fraction: float
    ber_p95: float


def yield_vs_vdd_series(
    results: Sequence[TriadVariationResult], max_ber: float
) -> list[YieldPoint]:
    """Yield as a function of supply voltage, highest supply first.

    Intended for supply-scaling grids (one triad per Vdd, e.g.
    :func:`repro.variation.montecarlo.supply_scaling_grid`); with several
    triads per supply each keeps its own point, ordered by descending Vdd
    then descending Tclk.
    """
    ordered = sorted(
        results, key=lambda result: (-result.triad.vdd, -result.triad.tclk)
    )
    return [
        YieldPoint(
            vdd=result.triad.vdd,
            tclk=result.triad.tclk,
            vbb=result.triad.vbb,
            yield_fraction=result.yield_at(max_ber),
            ber_p95=result.ber_quantile(0.95),
        )
        for result in ordered
    ]


def render_yield_series(series: Sequence[YieldPoint], max_ber: float) -> str:
    """Render a yield-vs-Vdd series as a text table."""
    lines = [f"Yield vs Vdd (margin: BER <= {max_ber * 100:g}%)"]
    lines.append(f"{'Vdd V':>6}{'Tclk ns':>9}{'yield %':>9}{'BER p95 %':>11}")
    for point in series:
        lines.append(
            f"{point.vdd:>6.2f}{point.tclk * 1e9:>9.4f}"
            f"{point.yield_fraction * 100:>8.1f}%"
            f"{point.ber_p95 * 100:>11.2f}"
        )
    return "\n".join(lines)
