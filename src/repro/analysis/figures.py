"""Generators for the paper's figures (5, 7, 8).

Every generator returns structured data (label + numpy series) so the
benchmarks can assert the qualitative shape and render the same series the
paper plots.  No plotting library is required; the benches print the series
as text.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.circuits.adders import build_adder
from repro.core.calibration import calibrate_probability_table
from repro.core.characterization import AdderCharacterization, CharacterizationFlow
from repro.core.metrics import normalized_hamming_distance, signal_to_noise_ratio_db
from repro.core.modified_adder import ApproximateAdderModel
from repro.core.resilience import ExecutionPolicy, ExecutionReport
from repro.core.store import SweepResultStore
from repro.core.triad import OperatingTriad
from repro.simulation.patterns import PatternConfig
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary


# -- Fig. 5: per-bit BER of the 8-bit RCA under supply scaling -----------------


@dataclasses.dataclass(frozen=True)
class Fig5Series:
    """Per-output-bit BER profile at one supply voltage.

    Attributes
    ----------
    vdd:
        Supply voltage of the series.
    ber_per_bit:
        BER (fraction) per output bit position, LSB first.
    """

    vdd: float
    ber_per_bit: np.ndarray

    @property
    def mean_ber(self) -> float:
        """Average BER across output bits."""
        return float(self.ber_per_bit.mean())


def fig5_ber_per_bit(
    architecture: str = "rca",
    width: int = 8,
    supply_voltages: Sequence[float] = (0.8, 0.7, 0.6, 0.5),
    n_vectors: int = 4000,
    seed: int = 2017,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
    sta_margin: float = 1.5,
    jobs: int = 1,
    store: SweepResultStore | None = None,
    flow: CharacterizationFlow | None = None,
    policy: ExecutionPolicy | None = None,
    report: ExecutionReport | None = None,
    shm: bool | None = None,
) -> list[Fig5Series]:
    """Reproduce Fig. 5: BER distribution over output bits under Vdd scaling.

    The clock is held at the benchmark's nominal (matched Table III) period
    with no body bias while the supply is scaled, exactly as in the paper.
    The supply points run as one sweep, so they shard over ``jobs`` worker
    processes and persist to the optional result ``store`` -- keyed by the
    pattern configuration, so the nominal-clock points share warm store
    entries with ``characterize`` sweeps of the same adder and stimulus.
    ``flow`` reuses a pre-built characterization flow (e.g. the session's
    circuit cache) instead of rebuilding the adder.
    """
    if flow is None:
        flow = CharacterizationFlow.for_benchmark(
            architecture, width, library=library, sta_margin=sta_margin
        )
    width = flow.adder.width
    # The matched equivalent of the paper's 0.28 ns nominal clock.
    nominal_tclk = flow.nominal_clock_period()
    config = PatternConfig(n_vectors=n_vectors, width=width, seed=seed, kind="uniform")
    triads = [
        OperatingTriad(tclk=nominal_tclk, vdd=vdd, vbb=0.0)
        for vdd in supply_voltages
    ]
    characterization = flow.run(
        triads=triads,
        pattern=config,
        keep_measurements=False,
        jobs=jobs,
        store=store,
        policy=policy,
        report=report,
        shm=shm,
    )
    return [
        Fig5Series(
            vdd=vdd,
            ber_per_bit=np.asarray(
                characterization.find(
                    OperatingTriad(tclk=nominal_tclk, vdd=vdd, vbb=0.0)
                ).bitwise_error
            ),
        )
        for vdd in supply_voltages
    ]


def render_fig5(series: Sequence[Fig5Series], width: int) -> str:
    """Render a Fig. 5 profile as a text table (one row per supply voltage).

    ``width`` is the *operand* width; one column is emitted per output bit
    (``width + 1`` columns, LSB first), BER values in percent.
    """
    output_width = width + 1
    lines = ["Vdd " + "".join(f"  bit{i:>2}" for i in range(output_width))]
    for entry in series:
        lines.append(
            f"{entry.vdd:0.1f} "
            + "".join(f"{value * 100:7.1f}" for value in entry.ber_per_bit)
        )
    return "\n".join(lines)


# -- Fig. 7: accuracy of the statistical model ---------------------------------


@dataclasses.dataclass(frozen=True)
class Fig7Point:
    """Model-accuracy summary for one adder and one calibration metric.

    Attributes
    ----------
    adder_name:
        Benchmark name (``"rca8"``, ``"bka16"``, ...).
    metric:
        Calibration distance metric (``"mse"``, ``"hamming"``,
        ``"weighted_hamming"``).
    mean_snr_db:
        SNR of the model output versus the characterized hardware output,
        averaged over the evaluated triads (Fig. 7a).
    mean_normalized_hamming:
        Normalised Hamming distance averaged over the evaluated triads
        (Fig. 7b).
    """

    adder_name: str
    metric: str
    mean_snr_db: float
    mean_normalized_hamming: float


def fig7_model_accuracy(
    benchmarks: Sequence[tuple[str, int]] = (("bka", 8), ("rca", 8), ("bka", 16), ("rca", 16)),
    metrics: Sequence[str] = ("mse", "hamming", "weighted_hamming"),
    n_vectors: int = 3000,
    seed: int = 2017,
    max_triads: int | None = 12,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
) -> list[Fig7Point]:
    """Reproduce Fig. 7: estimation error of the statistical model.

    For every benchmark the adder is characterized with carry-balanced
    training patterns; for every triad that produces errors, Algorithm 1 is
    run under each distance metric, and the resulting model is compared with
    the hardware outputs (SNR and normalised Hamming distance).  The returned
    points aggregate over triads, matching the per-adder bars of Fig. 7.

    ``max_triads`` bounds the number of faulty triads evaluated per adder to
    keep the run time of the benchmark harness reasonable; ``None`` evaluates
    every faulty triad as the paper does.
    """
    points: list[Fig7Point] = []
    for architecture, width in benchmarks:
        flow = CharacterizationFlow.for_benchmark(architecture, width, library=library)
        config = PatternConfig(
            n_vectors=n_vectors, width=width, seed=seed, kind="carry_balanced"
        )
        characterization = flow.run(pattern=config)
        faulty = [entry for entry in characterization.results if entry.ber > 0.0]
        if max_triads is not None:
            faulty = faulty[:max_triads]
        for metric in metrics:
            snrs: list[float] = []
            hammings: list[float] = []
            for entry in faulty:
                measurement = characterization.measurement_for(entry.triad)
                calibration = calibrate_probability_table(
                    measurement.in1,
                    measurement.in2,
                    measurement.latched_words,
                    width,
                    metric=metric,
                )
                model = ApproximateAdderModel(width, calibration.table, seed=seed)
                model_output = model.add(measurement.in1, measurement.in2)
                snr = signal_to_noise_ratio_db(measurement.latched_words, model_output)
                if np.isfinite(snr):
                    snrs.append(snr)
                hammings.append(
                    normalized_hamming_distance(
                        measurement.latched_words, model_output, width + 1
                    )
                )
            points.append(
                Fig7Point(
                    adder_name=f"{architecture}{width}",
                    metric=metric,
                    mean_snr_db=float(np.mean(snrs)) if snrs else float("inf"),
                    mean_normalized_hamming=float(np.mean(hammings)) if hammings else 0.0,
                )
            )
    return points


# -- Fig. 8: BER and energy/operation across the triad grid ---------------------


@dataclasses.dataclass(frozen=True)
class Fig8Series:
    """The two series of one Fig. 8 sub-plot for one adder.

    Attributes
    ----------
    adder_name:
        Benchmark name.
    labels:
        Triad labels ordered by decreasing energy per operation (the paper's
        x-axis ordering).
    ber_percent:
        BER (%) per triad in the same order.
    energy_per_operation_pj:
        Energy per operation (pJ) per triad in the same order.
    """

    adder_name: str
    labels: tuple[str, ...]
    ber_percent: np.ndarray
    energy_per_operation_pj: np.ndarray

    def zero_ber_count(self) -> int:
        """Number of triads with exactly zero BER."""
        return int(np.sum(self.ber_percent == 0.0))


def fig8_ber_energy_series(characterization: AdderCharacterization) -> Fig8Series:
    """Reproduce one Fig. 8 sub-plot from a characterization."""
    ordered = characterization.sorted_by_energy()
    return Fig8Series(
        adder_name=characterization.adder_name,
        labels=tuple(entry.label() for entry in ordered),
        ber_percent=np.array([entry.ber_percent for entry in ordered]),
        energy_per_operation_pj=np.array(
            [entry.energy_per_operation_pj for entry in ordered]
        ),
    )


def render_fig8(series: Fig8Series) -> str:
    """Render a Fig. 8 series as a text table (label, BER %, energy pJ)."""
    lines = [f"{series.adder_name}: BER vs Energy/Operation"]
    lines.append(f"{'triad (Tclk ns, Vdd V, Vbb V)':<32}{'BER %':>10}{'E/op pJ':>12}")
    for label, ber, energy in zip(
        series.labels, series.ber_percent, series.energy_per_operation_pj
    ):
        lines.append(f"{label:<32}{ber:>10.2f}{energy:>12.4f}")
    return "\n".join(lines)


def build_adder_name(architecture: str, width: int) -> str:
    """Helper mirroring the benchmark naming convention (``rca8`` ...)."""
    return build_adder(architecture, width).name


# -- Exploration: the BER-vs-energy Pareto frontier ----------------------------


@dataclasses.dataclass(frozen=True)
class FrontierSeries:
    """The Pareto-frontier curve of one design-space exploration.

    Attributes
    ----------
    labels:
        ``operator @ triad`` label per frontier point, ordered by
        increasing BER.
    ber_percent:
        BER (%) per point in the same order.
    energy_per_operation_pj:
        Energy per operation (pJ) per point in the same order.
    """

    labels: tuple[str, ...]
    ber_percent: np.ndarray
    energy_per_operation_pj: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)


def frontier_series(frontier) -> FrontierSeries:
    """Series of a :class:`repro.explore.frontier.ParetoFrontier`.

    Structured like the Fig. 8 series: plot energy against BER to see the
    achievable trade-off curve of the whole design space instead of one
    adder's triad grid.
    """
    points = frontier.points
    return FrontierSeries(
        labels=tuple(
            f"{point.operator_name} @ {point.triad.label()}" for point in points
        ),
        ber_percent=np.array([point.ber * 100.0 for point in points]),
        energy_per_operation_pj=np.array(
            [point.energy_per_operation * 1e12 for point in points]
        ),
    )


def render_frontier(series: FrontierSeries) -> str:
    """Render a frontier series as a text table (label, BER %, energy pJ)."""
    lines = ["Pareto frontier: BER vs Energy/Operation"]
    lines.append(f"{'operator @ triad':<40}{'BER %':>10}{'E/op pJ':>12}")
    for label, ber, energy in zip(
        series.labels, series.ber_percent, series.energy_per_operation_pj
    ):
        lines.append(f"{label:<40}{ber:>10.2f}{energy:>12.4f}")
    return "\n".join(lines)
