"""Generators for the paper's tables (II, III, IV) and exploration reports."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.circuits.adders import build_adder
from repro.core.characterization import AdderCharacterization
from repro.core.energy import EfficiencySummary, summarize_by_ber_range
from repro.core.triad import (
    PAPER_CLOCK_PERIODS_NS,
    PAPER_SUPPLY_VOLTAGES,
    matched_triad_grid,
)
from repro.synthesis.report import format_table, render_synthesis_table
from repro.synthesis.synthesize import SynthesisReport, synthesize
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary

#: The four benchmark (architecture, width) pairs of the paper's evaluation.
PAPER_BENCHMARKS: tuple[tuple[str, int], ...] = (
    ("rca", 8),
    ("bka", 8),
    ("rca", 16),
    ("bka", 16),
)


def table2_synthesis(
    benchmarks: Sequence[tuple[str, int]] = PAPER_BENCHMARKS,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
) -> tuple[list[SynthesisReport], str]:
    """Table II: synthesis results of the benchmark adders at nominal supply.

    Returns the structured reports plus the rendered text table (benchmark,
    area, total power, critical path).
    """
    reports = [
        synthesize(build_adder(architecture, width).netlist, library=library)
        for architecture, width in benchmarks
    ]
    return reports, render_synthesis_table(reports)


def table3_triads(
    critical_paths: Mapping[str, float] | None = None,
) -> tuple[dict[str, list[str]], str]:
    """Table III: the operating-triad grid of every benchmark.

    Parameters
    ----------
    critical_paths:
        Optional mapping from benchmark name to this substrate's measured
        critical path in seconds.  When given, the clock periods are the
        rescaled (matched) ones actually used by the characterization flow;
        otherwise the paper's original nanosecond values are listed.

    Returns
    -------
    tuple
        A mapping from benchmark name to its list of triad labels, and a
        rendered summary table with the clock/supply/body-bias columns.
    """
    rows = []
    labels: dict[str, list[str]] = {}
    for name, periods in PAPER_CLOCK_PERIODS_NS.items():
        if critical_paths is not None and name in critical_paths:
            grid = matched_triad_grid(name, critical_paths[name])
            clocks = sorted({triad.tclk_ns for triad in grid}, reverse=True)
        else:
            grid = None
            clocks = list(periods)
        vdd_text = f"{PAPER_SUPPLY_VOLTAGES[0]:g} to {PAPER_SUPPLY_VOLTAGES[-1]:g}"
        rows.append(
            (
                name,
                ", ".join(f"{clock:.3g}" for clock in clocks),
                vdd_text,
                "0, ±2",
            )
        )
        if grid is not None:
            labels[name] = [triad.label() for triad in grid]
        else:
            labels[name] = [f"{clock:g},{vdd_text},0/±2" for clock in clocks]
    table = format_table(
        ("Benchmark", "Tclk (ns)", "Vdd (V)", "Vbb (V)"), rows
    )
    return labels, table


def table4_energy_efficiency(
    characterizations: Mapping[str, AdderCharacterization],
) -> dict[str, list[EfficiencySummary]]:
    """Table IV: energy efficiency and BER per BER range, per benchmark."""
    return {
        name: summarize_by_ber_range(characterization)
        for name, characterization in characterizations.items()
    }


def render_table4(summaries: Mapping[str, list[EfficiencySummary]]) -> str:
    """Render the Table IV aggregation as a text table.

    Rows are BER ranges; for every benchmark three columns are shown (triad
    count, max energy efficiency, BER at max efficiency), mirroring the
    paper's layout.
    """
    names = list(summaries)
    if not names:
        raise ValueError("summaries must contain at least one benchmark")
    range_labels = [entry.ber_range_label for entry in summaries[names[0]]]
    header = ["BER Range"]
    for name in names:
        header.extend([f"{name} #triads", f"{name} max eff (%)", f"{name} BER@max (%)"])
    rows = []
    for index, range_label in enumerate(range_labels):
        row = [range_label]
        for name in names:
            entry = summaries[name][index]
            row.append(str(entry.triad_count))
            if entry.max_energy_efficiency is None:
                row.extend(["-", "-"])
            else:
                row.append(f"{entry.max_energy_efficiency * 100:.1f}")
                row.append(f"{(entry.ber_at_max_efficiency or 0.0) * 100:.1f}")
        rows.append(tuple(row))
    return format_table(tuple(header), rows)


# -- Exploration: ranked operator configurations -------------------------------


@dataclasses.dataclass(frozen=True)
class RankedConfiguration:
    """One row of the exploration ranking report.

    Attributes
    ----------
    rank:
        1-based rank (lowest energy within the BER budget first).
    operator_name / triad_label:
        The configuration's identity.
    ber / energy_per_operation / mse:
        Its measured trade-off coordinates.
    """

    rank: int
    operator_name: str
    triad_label: str
    ber: float
    energy_per_operation: float
    mse: float


def ranked_configurations(
    frontier,
    max_ber: float | None = None,
    top_n: int | None = None,
) -> list[RankedConfiguration]:
    """Rank the frontier points of an exploration by energy per operation.

    Parameters
    ----------
    frontier:
        A :class:`repro.explore.frontier.ParetoFrontier`.
    max_ber:
        Optional BER budget (fraction); points above it are dropped.
    top_n:
        Optional cap on the number of returned rows.
    """
    points = [
        point
        for point in frontier.points
        if max_ber is None or point.ber <= max_ber
    ]
    points.sort(key=lambda point: (point.energy_per_operation, point))
    if top_n is not None:
        points = points[:top_n]
    return [
        RankedConfiguration(
            rank=index + 1,
            operator_name=point.operator_name,
            triad_label=point.triad.label(),
            ber=point.ber,
            energy_per_operation=point.energy_per_operation,
            mse=point.mse,
        )
        for index, point in enumerate(points)
    ]


def render_ranked_configurations(rows: Sequence[RankedConfiguration]) -> str:
    """Render the exploration ranking as a text table."""
    if not rows:
        return "no configuration satisfies the BER budget"
    table_rows = [
        (
            str(row.rank),
            row.operator_name,
            row.triad_label,
            f"{row.ber * 100:.2f}",
            f"{row.energy_per_operation * 1e12:.4f}",
            f"{row.mse:.3g}",
        )
        for row in rows
    ]
    return format_table(
        ("Rank", "Operator", "Triad (ns,V,V)", "BER %", "E/op pJ", "MSE"),
        table_rows,
    )
