"""Reports of structural stuck-at fault campaigns.

The fault sweep (:func:`repro.core.sweep.run_fault_sweep`) produces one
:class:`~repro.simulation.fault_injection.FaultSimulationResult` per fault
site; this module condenses a campaign into the numbers a test-coverage
review reads -- coverage, undetected sites, highest-impact faults -- and
renders them as a text table like the other analysis generators.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.simulation.fault_injection import FaultSimulationResult, fault_coverage
from repro.synthesis.report import format_table


@dataclasses.dataclass(frozen=True)
class FaultCoverageSummary:
    """Condensed outcome of one stuck-at fault campaign.

    Attributes
    ----------
    n_faults:
        Number of simulated fault sites.
    detected:
        Faults propagated to an observed output by at least one pattern.
    coverage:
        ``detected / n_faults`` (0..1).
    undetected:
        Labels of the untestable faults, in fault order.
    worst:
        The highest-BER detected faults, most severe first.
    """

    n_faults: int
    detected: int
    coverage: float
    undetected: tuple[str, ...]
    worst: tuple[FaultSimulationResult, ...]


def summarize_fault_results(
    results: Sequence[FaultSimulationResult], top_n: int = 10
) -> FaultCoverageSummary:
    """Summarise a fault campaign (coverage plus the ``top_n`` worst faults)."""
    if not results:
        raise ValueError("a fault campaign produced no results")
    if top_n < 0:
        raise ValueError("top_n must be non-negative")
    detected = [result for result in results if result.detected]
    worst = sorted(
        detected, key=lambda result: (-result.ber, result.fault)
    )[:top_n]
    return FaultCoverageSummary(
        n_faults=len(results),
        detected=len(detected),
        coverage=fault_coverage(results),
        undetected=tuple(
            result.fault.label() for result in results if not result.detected
        ),
        worst=tuple(worst),
    )


def render_fault_summary(
    circuit_name: str, n_vectors: int, summary: FaultCoverageSummary
) -> str:
    """Render a fault-campaign summary as a text report."""
    lines = [
        f"{circuit_name}: {summary.n_faults} stuck-at faults, "
        f"{n_vectors} vectors",
        f"coverage: {summary.detected}/{summary.n_faults} detected "
        f"({summary.coverage * 100:.1f}%)",
    ]
    if summary.undetected:
        lines.append("undetected: " + ", ".join(summary.undetected))
    if summary.worst:
        lines.append("")
        lines.append("highest-impact faults")
        rows = [
            (
                result.fault.label(),
                f"{result.ber * 100:.2f}",
                f"{result.faulty_vector_fraction * 100:.1f}",
            )
            for result in summary.worst
        ]
        lines.append(format_table(("Fault", "BER %", "Faulty vectors %"), rows))
    return "\n".join(lines)
