"""Test-support harnesses shipped with the library.

The modules here are imported by the test suite and by CI smoke jobs, not by
the simulation flows themselves -- with one deliberate exception: the
deterministic fault-injection hooks of :mod:`repro.testing.chaos` are
consulted by the fault-tolerant shard engine
(:mod:`repro.core.resilience`), so worker crashes, hangs and corrupted
payloads can be injected into real sweeps without patching any orchestrator
code.
"""

from repro.testing.chaos import ChaosPlan, ChaosRule

__all__ = ["ChaosPlan", "ChaosRule"]
