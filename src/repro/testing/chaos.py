"""Deterministic fault injection for the sharded sweep orchestrators.

The paper's speculative circuits keep producing acceptable results while the
underlying hardware misbehaves; this module gives the *orchestrator* the
matching test harness.  A :class:`ChaosPlan` is a seedless, fully
deterministic script of faults -- "the worker executing shard N's K-th
attempt crashes / hangs past the timeout / returns a corrupted payload" --
that the fault-tolerant shard engine (:mod:`repro.core.resilience`)
carries into its worker processes.  Because rules are keyed on the
``(shard index, attempt)`` pair rather than wall clock or process identity,
a chaos run is exactly reproducible: the same plan against the same sweep
produces the same failures, the same recoveries, and (the property the
tests assert) results byte-identical to a fault-free serial run.

Fault actions
-------------

``crash``
    The worker process exits hard (``os._exit``), as an OOM kill or SIGKILL
    would -- the parent observes ``BrokenProcessPool``.
``hang``
    The worker sleeps for ``hang_s`` seconds before completing, which
    exercises the per-shard timeout and pool-rebuild path.
``corrupt``
    The worker completes but returns a deterministically mangled payload,
    exercising parent-side result validation.

Crash and hang fire **only inside worker processes**: the in-process serial
fallback is the orchestrator's trusted path of last resort and is never
sabotaged (a plan that crashed the parent would test nothing).  Corrupt
rules are likewise suppressed in-process, so a serial fallback always
produces a clean result.

Plans reach the engine either programmatically (the ``chaos=`` argument of
:func:`repro.core.resilience.run_shards` and the sweep orchestrators) or --
for CLI-level smoke tests such as the ``chaos-smoke`` CI job -- through the
:data:`CHAOS_ENV` environment variable, a JSON list of rule documents::

    REPRO_CHAOS='[{"action": "crash", "shard": 0}]' repro characterize ...
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Mapping, Sequence

#: Environment variable carrying a JSON chaos plan into CLI invocations.
CHAOS_ENV = "REPRO_CHAOS"

#: The supported fault actions.
CHAOS_ACTIONS = ("crash", "hang", "corrupt")

#: Marker key of a deterministically corrupted payload (what a ``corrupt``
#: rule turns each result into).  Orchestrator validators reject any payload
#: carrying it; tests can grep for it.
CORRUPTION_MARKER = "chaos_corrupted"

#: Exit code of a chaos-crashed worker (distinctive in core dumps/CI logs).
CRASH_EXIT_CODE = 32


@dataclasses.dataclass(frozen=True)
class ChaosRule:
    """One scripted fault: sabotage shard ``shard``'s ``attempt``-th try.

    Attributes
    ----------
    action:
        ``"crash"``, ``"hang"`` or ``"corrupt"``.
    shard:
        Index of the targeted shard in the engine's original task order
        (subtasks produced by split-and-retry keep their parent's index).
    attempt:
        Which execution attempt of that shard to sabotage (0 = first try).
    hang_s:
        Sleep duration of a ``hang`` rule, seconds.  Keep it comfortably
        above the policy's shard timeout and below forever, so an abandoned
        worker the engine could not terminate still dies on its own.
    """

    action: str
    shard: int
    attempt: int = 0
    hang_s: float = 600.0

    def __post_init__(self) -> None:
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"available: {', '.join(CHAOS_ACTIONS)}"
            )
        if self.shard < 0:
            raise ValueError("shard must be non-negative")
        if self.attempt < 0:
            raise ValueError("attempt must be non-negative")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation (the :data:`CHAOS_ENV` format)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ChaosRule":
        """Inverse of :meth:`to_json` (unknown keys are rejected)."""
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(f"unknown ChaosRule field(s): {', '.join(unknown)}")
        return cls(**dict(data))


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A deterministic script of faults over one sharded run."""

    rules: tuple[ChaosRule, ...] = ()

    def rule_for(self, shard: int, attempt: int) -> ChaosRule | None:
        """The first rule targeting ``(shard, attempt)``, or ``None``."""
        for rule in self.rules:
            if rule.shard == shard and rule.attempt == attempt:
                return rule
        return None

    def __bool__(self) -> bool:
        return bool(self.rules)

    def to_json(self) -> list[dict[str, Any]]:
        """JSON-serialisable representation (the :data:`CHAOS_ENV` format)."""
        return [rule.to_json() for rule in self.rules]

    @classmethod
    def from_json(cls, data: Sequence[Mapping[str, Any]]) -> "ChaosPlan":
        """Build a plan from a JSON list of rule documents."""
        if isinstance(data, (str, bytes)) or isinstance(data, Mapping):
            raise ValueError("a chaos plan is a JSON list of rule documents")
        return cls(rules=tuple(ChaosRule.from_json(entry) for entry in data))

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "ChaosPlan | None":
        """The plan configured in :data:`CHAOS_ENV`, or ``None``.

        Malformed JSON raises immediately -- a chaos run that silently
        injected nothing would make every recovery test vacuous.
        """
        text = (environ if environ is not None else os.environ).get(CHAOS_ENV)
        if not text:
            return None
        try:
            return cls.from_json(json.loads(text))
        except (json.JSONDecodeError, TypeError, ValueError) as error:
            raise ValueError(f"invalid {CHAOS_ENV} plan: {error}") from None


def trigger(rule: ChaosRule) -> None:
    """Fire the pre-execution half of a rule (crash or hang) in a worker.

    Called by the shard engine's worker wrapper before the real shard body;
    ``corrupt`` rules do nothing here (they mangle the result afterwards,
    see :func:`corrupt_result`).
    """
    if rule.action == "crash":
        # Exit hard, bypassing finalizers -- exactly what an OOM kill looks
        # like from the parent: the pool breaks, no exception travels back.
        os._exit(CRASH_EXIT_CODE)
    if rule.action == "hang":
        time.sleep(rule.hang_s)


def corrupt_result(result: Any) -> Any:
    """Deterministically mangle a shard result (a ``corrupt`` rule's output).

    Keeps the container shape (so naive length checks alone do not catch
    it) while replacing every unit payload with a marked garbage dict that
    any payload-version validation must reject.
    """
    if isinstance(result, list):
        return [{CORRUPTION_MARKER: True, "payload_version": -1} for _ in result]
    return {CORRUPTION_MARKER: True, "payload_version": -1}
