"""Minimal asyncio HTTP/1.1 plumbing for the characterization service.

Dependency-free by design (the ROADMAP's serving layer must run wherever
the library runs): requests are parsed straight off an
:class:`asyncio.StreamReader` and responses are rendered to bytes, with no
``http.server``/``wsgiref`` machinery in between.  The subset implemented
is exactly what the service needs:

* one request per connection (every response carries ``Connection:
  close``), which keeps parsing state trivial and makes close-delimited
  streaming responses (the ``/v1/jobs/<id>/events`` feed) legal HTTP/1.1;
* ``Content-Length`` bodies only -- chunked *requests* are refused with
  ``411 Length Required``;
* hard limits on header block and body size, so a misbehaving client
  cannot balloon the event loop's memory.

:class:`HttpError` is the parse/validation escape hatch: raising it
anywhere in a handler turns into a JSON error response with the carried
status code.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Request",
    "json_response",
    "read_request",
    "response",
    "stream_header",
]

#: Ceiling of the request line + header block, in bytes.
MAX_HEADER_BYTES = 32 * 1024

#: Default ceiling of a request body (job documents are a few KiB).
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_METHODS = frozenset({"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS"})


class HttpError(Exception):
    """A request that cannot be served, carrying its HTTP status.

    ``headers`` (optional) are added to the error response -- the rate
    limiter uses it for ``Retry-After``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers) if headers else {}


@dataclasses.dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    route: str
    query: Mapping[str, str]
    headers: Mapping[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON (``400`` on malformed or empty body)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON document")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")

    def header(self, name: str, default: str = "") -> str:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)


async def read_request(reader: Any, max_body: int = MAX_BODY_BYTES) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on anything malformed or over the limits;
    the caller renders it into an error response.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as error:
        # IncompleteReadError: EOF before the blank line (clean close when
        # nothing arrived at all).  LimitOverrunError: head larger than the
        # stream limit; it carries no ``partial``, so it always maps to 400.
        partial = getattr(error, "partial", b"")
        if not partial and isinstance(error, asyncio.IncompleteReadError):
            return None
        raise HttpError(400, "truncated or oversized request head")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head exceeds the header limit")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpError(400, "undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    if method not in _METHODS:
        raise HttpError(405, f"unsupported method {method!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length", "")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length: {length_text!r}")
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return Request(
        method=method,
        target=target,
        route=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: Mapping[str, str] | None = None,
) -> bytes:
    """Render a complete close-delimited HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int, payload: Any, headers: Mapping[str, str] | None = None
) -> bytes:
    """Render a JSON response (sorted keys, trailing newline)."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return response(status, body, headers=headers)


def stream_header(content_type: str = "text/plain; charset=utf-8") -> bytes:
    """Header block of a close-delimited streaming response.

    No ``Content-Length``: the body runs until the server closes the
    connection, which HTTP/1.1 permits exactly because every response here
    is ``Connection: close``.
    """
    return (
        "HTTP/1.1 200 OK\r\n"
        f"Content-Type: {content_type}\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
