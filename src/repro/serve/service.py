"""Characterization-as-a-service: an async HTTP job queue over the session API.

The ROADMAP's serving milestone, stdlib-only: :class:`CharacterizationService`
wraps one :class:`repro.api.Session` behind a small HTTP surface

========================  ====================================================
``POST /v1/jobs``         submit any job document ``repro batch`` accepts
                          (validated at admission via the typed job
                          constructors); returns ``202`` with the job id
``GET /v1/jobs/<id>``     status, batch/dedup accounting, the
                          :class:`~repro.obs.report.RunReport`, and the typed
                          result document once done
``GET /v1/jobs/<id>/events``  streamed progress lines (replays history, then
                          follows live until the job is terminal)
``GET /v1/healthz``       liveness + drain state + queue depths
``GET /v1/stats``         metrics registry snapshot, store/overlay/hot-tier
                          counters, rate-limiter and queue state
========================  ====================================================

Execution model.  The event loop only ever *admits* work: requests are
rate-limited per client (token bucket), validated, deduplicated against a
hot-result LRU, and parked in a fair round-robin admission queue.  A single
batch loop drains the queue in small time windows and hands each window to
``session.run_batch`` on a dedicated one-thread executor -- so N clients
submitting overlapping jobs inside one window collapse into *one* sharded
executor pass (the session's batch planner dedups identical work units),
and the session's reentrant lock is only ever taken from that one thread.

Shutdown.  SIGTERM/SIGINT request a *graceful drain*: new submissions get
``503``, queued and in-flight windows run to completion, event streams
finish their replay, then the server closes and ``run`` returns 0.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import dataclasses
import itertools
import json
import signal
from collections import OrderedDict
from typing import Any

from repro.api.jobs import (
    CalibrateJob,
    CharacterizeJob,
    Fig5Job,
    FaultSweepJob,
    Job,
    MonteCarloJob,
    SynthesizeJob,
    job_from_json,
    job_to_json,
)
from repro.api.session import Session, SessionError
from repro.obs import metrics
from repro.obs.trace import Tracer, _new_id
from repro.serve.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    stream_header,
)
from repro.serve.queue import AdmissionQueue, JobRecord, JobState, new_job_id
from repro.serve.ratelimit import ClientRateLimiter

__all__ = ["CharacterizationService", "HotResultCache", "ServeConfig"]

#: Job types whose result documents depend only on the job itself (given a
#: deterministic engine), and are therefore safe to serve from the hot
#: result tier.  Store-administration jobs and jobs that read user files
#: observe mutable external state and are recomputed every time.
_HOT_CACHEABLE = (
    CharacterizeJob,
    Fig5Job,
    CalibrateJob,
    SynthesizeJob,
    MonteCarloJob,
    FaultSweepJob,
)


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Tunables of one service instance (all validated at construction)."""

    host: str = "127.0.0.1"
    port: int = 8765
    window_s: float = 0.05
    max_batch_jobs: int = 16
    rate_per_s: float = 20.0
    burst: int = 40
    hot_entries: int = 256
    max_records: int = 4096
    max_clients: int = 1024

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ValueError("window_s must be non-negative")
        if self.max_batch_jobs < 1:
            raise ValueError("max_batch_jobs must be at least 1")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1:
            raise ValueError("burst must be at least 1")
        if self.hot_entries < 0:
            raise ValueError("hot_entries must be non-negative")
        if self.max_records < 1:
            raise ValueError("max_records must be at least 1")


class HotResultCache:
    """LRU of finished result documents, keyed by canonical job JSON.

    Sits in *front* of the packfile store: a hot hit serves the fully
    rendered result without touching the session, the batch loop, or the
    store at all.  ``max_entries=0`` disables the tier.
    """

    def __init__(self, max_entries: int) -> None:
        self._max_entries = max_entries
        self._entries: OrderedDict[str, tuple[str, dict[str, Any] | None]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> tuple[str, dict[str, Any] | None] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, result_json: str, run: dict[str, Any] | None) -> None:
        if self._max_entries == 0:
            return
        self._entries[key] = (result_json, run)
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def snapshot(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }


class _NullSpan:
    """Attribute sink standing in for a span when tracing is off."""

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _RequestScope:
    """One request's tracing handle: the request span plus its tracer.

    Each request gets a private *buffered* tracer sharing the service's
    trace id -- per-request because a tracer's span stack is not safe
    against interleaved async requests, buffered so the whole request tree
    lands in the trace file as one atomic append.  When tracing is off the
    scope degrades to no-ops.
    """

    def __init__(self, span: Any, tracer: Tracer | None) -> None:
        self._span = span
        self._tracer = tracer

    def set(self, **attrs: Any) -> "_RequestScope":
        self._span.set(**attrs)
        return self

    def child(self, name: str, **attrs: Any) -> Any:
        """A child span of the request span (no-op without tracing)."""
        if self._tracer is None:
            return _NULL_SPAN
        return self._tracer.span(name, attrs)


_NULL_SCOPE = _RequestScope(_NULL_SPAN, None)


class CharacterizationService:
    """One session served over HTTP; see the module docstring.

    The service owns nothing about how jobs *execute* -- that is entirely
    the session's business.  It owns admission (validation, rate limits,
    fairness, dedup windows), result distribution, and telemetry.
    """

    def __init__(
        self,
        session: Session,
        config: ServeConfig | None = None,
        *,
        trace: str | None = None,
    ) -> None:
        self._session = session
        self._config = config if config is not None else ServeConfig()
        self._trace_path = trace
        self._trace_id = _new_id()
        self._queue = AdmissionQueue()
        self._records: OrderedDict[str, JobRecord] = OrderedDict()
        self._hot = HotResultCache(self._config.hot_entries)
        self._limiter = ClientRateLimiter(
            self._config.rate_per_s,
            self._config.burst,
            self._config.max_clients,
        )
        self._seq = itertools.count()
        self._draining = False
        self._drain_requested: asyncio.Event | None = None
        self._new_work: asyncio.Event | None = None
        self._progress: asyncio.Condition | None = None
        self._server: asyncio.base_events.Server | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._connections: set[asyncio.Task[None]] = set()
        self._batches = 0
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the listening socket (port 0 picks a free port)."""
        self._drain_requested = asyncio.Event()
        self._new_work = asyncio.Event()
        self._progress = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._on_connection, self._config.host, self._config.port
        )
        sockets = self._server.sockets or ()
        self.port = sockets[0].getsockname()[1] if sockets else self._config.port

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run(self, *, install_signal_handlers: bool = True) -> int:
        """Serve until drained; returns the process exit code (0)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(signum, self.request_drain)
        print(
            f"repro serve: listening on http://{self._config.host}:{self.port} "
            f"(window {self._config.window_s * 1000:.0f}ms, "
            f"max batch {self._config.max_batch_jobs})",
            flush=True,
        )
        await self._batch_loop()
        self._server.close()
        await self._server.wait_closed()
        if self._connections:
            await asyncio.wait(
                self._connections, timeout=5.0
            )  # event streams of just-finished jobs
            for task in self._connections:
                task.cancel()
        self._executor.shutdown(wait=True)
        print("repro serve: drained, exiting", flush=True)
        return 0

    # ------------------------------------------------------------------
    # batch loop (the only caller of the session)

    async def _batch_loop(self) -> None:
        assert self._new_work is not None and self._drain_requested is not None
        loop = asyncio.get_running_loop()
        while True:
            if self._queue.pending == 0:
                if self._draining:
                    break
                self._new_work.clear()
                await self._wait_for_work_or_drain()
                continue
            # The batch window: give concurrent clients a beat to pile
            # their jobs into this window so the planner dedups them.
            if self._config.window_s > 0:
                await asyncio.sleep(self._config.window_s)
            window = self._queue.take_window(self._config.max_batch_jobs)
            if not window:
                continue
            self._batches += 1
            metrics.REGISTRY.counter("serve.batches").add()
            metrics.REGISTRY.counter("serve.batch_jobs").add(len(window))
            for record in window:
                record.state = JobState.RUNNING
                record.add_event(
                    f"running: dispatched in a window of {len(window)} job(s)"
                )
            await self._notify_progress()
            with self._batch_span(len(window)) as batch_span:
                outcome, payload = await loop.run_in_executor(
                    self._executor,
                    self._execute_window,
                    [record.job for record in window],
                )
                batch_span.set(status=outcome)
            if outcome == "ok":
                self._distribute(window, payload)
            else:
                for record in window:
                    record.state = JobState.FAILED
                    record.error = payload
                    record.add_event(f"failed: {payload}")
                    record.done.set()
            await self._notify_progress()

    async def _wait_for_work_or_drain(self) -> None:
        assert self._new_work is not None and self._drain_requested is not None
        waiters = [
            asyncio.ensure_future(self._new_work.wait()),
            asyncio.ensure_future(self._drain_requested.wait()),
        ]
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for waiter in waiters:
                waiter.cancel()

    def _execute_window(self, jobs: list[Job]) -> tuple[str, Any]:
        """Runs on the worker thread; never raises."""
        try:
            return "ok", self._session.run_batch(jobs)
        except SessionError as error:
            return "error", str(error)
        except Exception as error:  # a library defect must not kill the loop
            metrics.REGISTRY.counter("serve.batch_errors").add()
            return "error", f"internal error: {type(error).__name__}: {error}"

    def _distribute(self, window: list[JobRecord], batch: Any) -> None:
        report = batch.report
        report_doc = {
            "jobs": report.jobs,
            "planned_units": report.planned_units,
            "deduped_units": report.deduped_units,
            "cache_hits": report.cache_hits,
            "simulated_units": report.simulated_units,
        }
        for record, result in zip(window, batch.results):
            document = result.to_json()
            run = document.pop("run", None)
            record.result_json = json.dumps(document, sort_keys=True)
            record.run = run
            record.batch = report_doc
            record.state = JobState.DONE
            record.add_event(
                f"done: {report.simulated_units} simulated, "
                f"{report.deduped_units} deduped, "
                f"{report.cache_hits} warm in a {report.jobs}-job window"
            )
            record.done.set()
            if isinstance(record.job, _HOT_CACHEABLE):
                self._hot.put(record.canonical, record.result_json, record.run)

    async def _notify_progress(self) -> None:
        assert self._progress is not None
        async with self._progress:
            self._progress.notify_all()

    # ------------------------------------------------------------------
    # connection handling

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status = 500
        route = "?"
        method = "?"
        try:
            try:
                request = await asyncio.wait_for(read_request(reader), timeout=30.0)
            except asyncio.TimeoutError:
                writer.write(
                    json_response(408, {"error": "timed out reading the request"})
                )
                return
            except HttpError as error:
                writer.write(
                    json_response(
                        error.status, {"error": error.message}, error.headers
                    )
                )
                return
            if request is None:
                return
            method, route = request.method, request.route
            metrics.REGISTRY.counter("serve.requests").add()
            with self._request_span(request) as span:
                try:
                    status = await self._dispatch(request, writer, span)
                except HttpError as error:
                    status = error.status
                    writer.write(
                        json_response(status, {"error": error.message}, error.headers)
                    )
                except Exception as error:
                    metrics.REGISTRY.counter("serve.request_errors").add()
                    status = 500
                    writer.write(
                        json_response(
                            500,
                            {"error": f"internal error: {type(error).__name__}"},
                        )
                    )
                span.set(status=status)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    def _request_span(self, request: Request) -> Any:
        if self._trace_path is None:
            return contextlib.nullcontext(_NULL_SCOPE)
        tracer = Tracer(self._trace_path, trace_id=self._trace_id, buffered=True)

        @contextlib.contextmanager
        def traced() -> Any:
            try:
                with tracer.span(
                    "serve.request",
                    {"method": request.method, "route": request.route},
                ) as span:
                    yield _RequestScope(span, tracer)
            finally:
                tracer.close()

        return traced()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, span: Any
    ) -> int:
        route = request.route
        if route == "/v1/jobs" and request.method == "POST":
            return self._admit(request, writer, span)
        if route == "/v1/healthz" and request.method == "GET":
            writer.write(json_response(200, self._health()))
            return 200
        if route == "/v1/stats" and request.method == "GET":
            writer.write(json_response(200, self._stats()))
            return 200
        if route.startswith("/v1/jobs/") and request.method == "GET":
            rest = route[len("/v1/jobs/") :]
            if rest.endswith("/events"):
                return await self._stream_events(rest[: -len("/events")].rstrip("/"), writer)
            return self._job_status(rest, writer)
        raise HttpError(404, f"no such endpoint: {request.method} {route}")

    # ------------------------------------------------------------------
    # endpoints

    def _client_of(self, request: Request, writer: asyncio.StreamWriter) -> str:
        client = request.header("x-client").strip()
        if client:
            return client[:120]
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, tuple) and peer else "unknown"

    def _admit(
        self, request: Request, writer: asyncio.StreamWriter, span: Any
    ) -> int:
        assert self._new_work is not None
        client = self._client_of(request, writer)
        span.set(client=client)
        if self._draining:
            raise HttpError(503, "the service is draining; resubmit elsewhere")
        retry_after = self._limiter.acquire(client)
        if retry_after > 0:
            metrics.REGISTRY.counter("serve.rate_limited").add()
            raise HttpError(
                429,
                f"client {client!r} is over its admission rate",
                {"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            )
        document = request.json()
        if not isinstance(document, dict):
            raise HttpError(400, "the request body must be a JSON object")
        priority_raw = document.pop("priority", 0)
        job_doc = document.pop("job", None) or document
        try:
            priority = int(priority_raw)
            job = job_from_json(job_doc)
        except (TypeError, ValueError) as error:
            metrics.REGISTRY.counter("serve.rejected").add()
            raise HttpError(400, f"rejected at admission: {error}")
        canonical = json.dumps(job_to_json(job), sort_keys=True)

        record = JobRecord(
            id=new_job_id(),
            client=client,
            job=job,
            canonical=canonical,
            priority=priority,
            seq=next(self._seq),
        )
        with span.child("serve.admit", client=client) as admit_span:
            hot = (
                self._hot.get(canonical)
                if isinstance(job, _HOT_CACHEABLE)
                else None
            )
            if hot is not None:
                record.result_json, record.run = hot
                record.hot = True
                record.state = JobState.DONE
                record.add_event("done: served from the hot result tier")
                record.done.set()
                metrics.REGISTRY.counter("serve.hot_hits").add()
                admit_span.set(hot=True)
            else:
                record.add_event(
                    f"queued (client {client!r}, priority {record.priority})"
                )
                self._queue.add(record)
                self._new_work.set()
                metrics.REGISTRY.counter("serve.admitted").add()
                admit_span.set(hot=False)
        self._remember(record)
        body = {"id": record.id, "status": record.state, "hot": record.hot}
        writer.write(json_response(202, body))
        return 202

    def _remember(self, record: JobRecord) -> None:
        self._records[record.id] = record
        while len(self._records) > self._config.max_records:
            # Evict the oldest *terminal* record; never forget live jobs.
            for job_id, old in self._records.items():
                if old.terminal:
                    del self._records[job_id]
                    break
            else:
                break

    def _record_or_404(self, job_id: str) -> JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise HttpError(404, f"unknown job id {job_id!r}")
        return record

    def _job_status(self, job_id: str, writer: asyncio.StreamWriter) -> int:
        record = self._record_or_404(job_id)
        document = record.describe()
        if record.result_json is not None:
            document["result"] = json.loads(record.result_json)
        writer.write(json_response(200, document))
        return 200

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> int:
        assert self._progress is not None
        record = self._record_or_404(job_id)
        writer.write(stream_header())
        cursor = 0
        while True:
            while cursor < len(record.events):
                writer.write((record.events[cursor] + "\n").encode("utf-8"))
                cursor += 1
            await writer.drain()
            if record.terminal:
                return 200
            async with self._progress:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._progress.wait(), timeout=1.0)

    def _health(self) -> dict[str, Any]:
        counts = {state: 0 for state in (JobState.QUEUED, JobState.RUNNING)}
        done = 0
        for record in self._records.values():
            if record.terminal:
                done += 1
            else:
                counts[record.state] = counts.get(record.state, 0) + 1
        return {
            "status": "draining" if self._draining else "ok",
            "queued": counts.get(JobState.QUEUED, 0),
            "running": counts.get(JobState.RUNNING, 0),
            "finished": done,
            "batches": self._batches,
        }

    def _stats(self) -> dict[str, Any]:
        store = self._session.store
        return {
            "server": self._health(),
            "queue": self._queue.snapshot(),
            "rate_limiter": self._limiter.snapshot(),
            "hot_results": self._hot.snapshot(),
            "overlay": self._session.overlay.snapshot(),
            "store": store.stats._values() if store is not None else None,
            "metrics": metrics.REGISTRY.snapshot(),
        }

    def _batch_span(self, jobs: int) -> Any:
        if self._trace_path is None:
            return contextlib.nullcontext(_NULL_SPAN)
        tracer = Tracer(self._trace_path, trace_id=self._trace_id, buffered=True)

        @contextlib.contextmanager
        def traced() -> Any:
            try:
                with tracer.span("serve.batch_window", {"jobs": jobs}) as span:
                    yield span
            finally:
                tracer.close()

        return traced()
