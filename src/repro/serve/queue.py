"""Admission queue of the characterization service.

Submitted jobs become :class:`JobRecord` entries and wait in per-client
priority heaps inside :class:`AdmissionQueue`.  The batch loop drains the
queue in *windows* (:meth:`AdmissionQueue.take_window`): one pass picks at
most ``max_jobs`` records by cycling the clients round-robin, taking each
client's best-priority job per turn.  That is the fairness property the
ISSUE's serving layer needs -- a client flooding the queue with a thousand
jobs delays other clients by at most one job per window turn, while within
a single client higher ``priority`` values (then FIFO order) win.

The queue itself is plain data structures with no locking: it is only
touched from the event-loop thread.  Cross-thread coordination lives in
:mod:`repro.serve.service`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import heapq
import secrets
from collections import deque
from typing import Any

from repro.api.jobs import job_type_name

__all__ = ["AdmissionQueue", "JobRecord", "JobState", "new_job_id"]


class JobState:
    """Lifecycle states of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = frozenset({DONE, FAILED})


def new_job_id() -> str:
    """A short collision-resistant job identifier."""
    return secrets.token_hex(8)


@dataclasses.dataclass
class JobRecord:
    """Everything the service knows about one submitted job."""

    id: str
    client: str
    job: Any
    canonical: str
    priority: int = 0
    seq: int = 0
    state: str = JobState.QUEUED
    hot: bool = False
    events: list[str] = dataclasses.field(default_factory=list)
    result_json: str | None = None
    run: dict[str, Any] | None = None
    batch: dict[str, Any] | None = None
    error: str | None = None
    done: asyncio.Event = dataclasses.field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def add_event(self, line: str) -> None:
        self.events.append(line)

    def describe(self) -> dict[str, Any]:
        """The job resource document served by ``GET /v1/jobs/<id>``."""
        doc: dict[str, Any] = {
            "id": self.id,
            "client": self.client,
            "type": job_type_name(self.job),
            "status": self.state,
            "priority": self.priority,
            "hot": self.hot,
            "events": len(self.events),
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.batch is not None:
            doc["batch"] = self.batch
        if self.run is not None:
            doc["run"] = self.run
        return doc


class AdmissionQueue:
    """Per-client priority heaps drained fairly, round-robin, in windows."""

    def __init__(self) -> None:
        self._heaps: dict[str, list[tuple[int, int, JobRecord]]] = {}
        self._rotation: deque[str] = deque()
        self._pending = 0

    @property
    def pending(self) -> int:
        """Number of queued (not yet windowed) jobs."""
        return self._pending

    @property
    def clients(self) -> int:
        """Number of clients with queued jobs."""
        return len(self._heaps)

    def add(self, record: JobRecord) -> None:
        heap = self._heaps.get(record.client)
        if heap is None:
            heap = self._heaps[record.client] = []
            self._rotation.append(record.client)
        # Max-priority first, FIFO within a priority.
        heapq.heappush(heap, (-record.priority, record.seq, record))
        self._pending += 1

    def take_window(self, max_jobs: int) -> list[JobRecord]:
        """Drain up to ``max_jobs`` records, one per client per turn.

        The rotation persists across windows, so a client served last in
        one window is served first in the next.
        """
        if max_jobs < 1:
            raise ValueError("max_jobs must be at least 1")
        window: list[JobRecord] = []
        while self._rotation and len(window) < max_jobs:
            client = self._rotation[0]
            self._rotation.rotate(-1)
            heap = self._heaps[client]
            _, _, record = heapq.heappop(heap)
            window.append(record)
            self._pending -= 1
            if not heap:
                del self._heaps[client]
                self._rotation.remove(client)
        return window

    def snapshot(self) -> dict[str, int]:
        return {"pending": self._pending, "clients": len(self._heaps)}
