"""Per-client token-bucket rate limiting for the characterization service.

Each client identity (``X-Client`` header, falling back to the peer
address) gets its own :class:`TokenBucket`: ``burst`` tokens of capacity,
refilled continuously at ``rate`` tokens per second.  Admission costs one
token; an empty bucket yields a ``429`` with a ``Retry-After`` hint equal
to the time until the next token matures.

The clock is injectable so tests can drive refill deterministically
instead of sleeping.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

__all__ = ["ClientRateLimiter", "TokenBucket"]


class TokenBucket:
    """A continuously-refilled token bucket.

    ``capacity`` is the burst size; ``rate`` the sustained tokens/second.
    """

    def __init__(
        self,
        capacity: float,
        rate: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.capacity = float(capacity)
        self.rate = float(rate)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available.

        Returns ``0.0`` on success, else the seconds until enough tokens
        mature (the ``Retry-After`` hint).  A failed acquire takes nothing.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (after refill); for tests and stats."""
        self._refill()
        return self._tokens


class ClientRateLimiter:
    """A bucket per client identity, with LRU eviction of idle clients.

    ``max_clients`` bounds the map so an attacker cycling client names
    cannot grow it without bound; evicting an idle client merely resets
    its bucket to full, which only ever errs in the client's favour.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._max_clients = max_clients
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.denied = 0

    def acquire(self, client: str) -> float:
        """One admission attempt for ``client``; see ``TokenBucket.try_acquire``."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.burst, self.rate, self._clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self._max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        retry_after = bucket.try_acquire()
        if retry_after > 0:
            self.denied += 1
        return retry_after

    def snapshot(self) -> dict[str, float | int]:
        return {
            "clients": len(self._buckets),
            "rate_per_s": self.rate,
            "burst": self.burst,
            "denied": self.denied,
        }
