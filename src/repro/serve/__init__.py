"""Characterization-as-a-service: the async HTTP job queue over :mod:`repro.api`.

Public surface:

* :class:`~repro.serve.service.CharacterizationService` -- one
  :class:`repro.api.Session` served over HTTP with admission batching,
  per-client rate limits, and a hot-result LRU.
* :class:`~repro.serve.service.ServeConfig` -- its tunables.
* ``repro serve`` (:mod:`repro.cli`) -- the CLI entrypoint.
"""

from repro.serve.queue import AdmissionQueue, JobRecord, JobState
from repro.serve.ratelimit import ClientRateLimiter, TokenBucket
from repro.serve.service import CharacterizationService, HotResultCache, ServeConfig

__all__ = [
    "AdmissionQueue",
    "CharacterizationService",
    "ClientRateLimiter",
    "HotResultCache",
    "JobRecord",
    "JobState",
    "ServeConfig",
    "TokenBucket",
]
