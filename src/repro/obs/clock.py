"""The single sanctioned wall-clock seam.

Wall-clock timestamps leak into persisted artifacts -- store index lines,
trace records, benchmark reports -- so every read must go through one
seam: monkeypatch :func:`wall_time` here and every timestamp in the
process follows, instead of each test patching its own module's ``time``
import (the store test used to do exactly that).  ``repro lint`` enforces
the seam statically (rule RPL002): this module is the only place allowed
to call ``time.time``.

Monotonic *duration* clocks (``perf_counter``, ``process_time``,
``monotonic``) are deliberately not wrapped -- they never appear in
persisted bytes, and wrapping them would put a function call on hot
paths for no determinism gain.

Callers must bind the module, not the function, so a single monkeypatch
reaches every call site::

    from repro.obs import clock

    stamp = clock.wall_time()
"""

from __future__ import annotations

import time

__all__ = ["wall_time"]


def wall_time() -> float:
    """Current wall-clock time in epoch seconds (`time.time`)."""
    return time.time()
