"""Unified observability: hierarchical tracing, metrics, run reports.

The package is dependency-free and **disabled by default**: until a
:class:`~repro.obs.trace.Tracer` is activated, :func:`~repro.obs.trace.span`
returns a shared no-op span and the instrumented hot paths pay a single
``None`` check.  Traced and untraced runs are byte-identical on stdout and
on-disk store bytes -- all timing lives in the JSONL trace file.

* :mod:`repro.obs.trace`   -- spans, the JSONL trace writer, and the
  picklable :class:`~repro.obs.trace.TraceContext` that carries a span
  parent across ``ProcessPoolExecutor`` workers.
* :mod:`repro.obs.metrics` -- counters/gauges/histograms plus the
  registry-view machinery behind ``StoreStats`` and ``ExecutionReport``.
* :mod:`repro.obs.report`  -- :class:`~repro.obs.report.RunReport` (the
  ``"run"`` key of typed results' ``to_json()``), trace loading/validation
  against the committed schema, and the ``repro trace summary`` renderer.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.report import (
    RunReport,
    TraceSummary,
    load_trace,
    summarize_trace,
    validate_trace,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    activated,
    active_tracer,
    current_context,
    span,
    worker_scope,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "RunReport",
    "Span",
    "TraceContext",
    "TraceSummary",
    "Tracer",
    "activated",
    "active_tracer",
    "current_context",
    "load_trace",
    "span",
    "summarize_trace",
    "validate_trace",
    "worker_scope",
]
