"""Run reports and trace-file analysis (`repro trace summary`).

Three consumers of the observability data live here:

* :class:`RunReport` -- the deterministic, counters-only summary attached
  to every typed result's ``to_json()`` under the ``"run"`` key.  It
  deliberately carries **no wall-clock values and no trace path**, so
  traced and untraced runs stay byte-identical on stdout; timings live in
  the trace file only.
* :func:`load_trace` / :func:`validate_trace` -- JSONL parsing plus
  validation against the committed ``trace_schema.json`` (field contract)
  and structural well-formedness (unique span ids, resolvable parents, at
  least one root).
* :func:`summarize_trace` / :class:`TraceSummary` -- the per-phase time
  breakdown and cache/dedup funnel rendered by ``repro trace summary``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Mapping, Sequence

__all__ = [
    "PhaseStat",
    "RunReport",
    "TraceSummary",
    "default_schema",
    "load_trace",
    "summarize_trace",
    "validate_trace",
]

SCHEMA_PATH = pathlib.Path(__file__).with_name("trace_schema.json")

#: Schema type names -> accepted Python types.  ``bool`` is an ``int``
#: subclass, so integer/number checks exclude it explicitly.
_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "string-or-null": lambda v: v is None or isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
}


@dataclasses.dataclass(frozen=True)
class RunReport:
    """Counters-only account of one :meth:`Session.run` call.

    Attributes
    ----------
    simulated_units:
        Work units (triad/range evaluations) actually simulated by this
        run -- ``0`` on a fully warm run.
    execution:
        The run's :class:`~repro.core.resilience.ExecutionReport` (retry /
        timeout / pool-rebuild accounting), or ``None`` for jobs that run
        no sweep.
    store:
        Per-run deltas of the session store's hit/miss counters
        (``hits``/``misses``/``stores``/``corrupt``/``io_errors``), or
        ``None`` when the session has no store.
    """

    simulated_units: int = 0
    execution: Any | None = None
    store: Mapping[str, int] | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "simulated_units": self.simulated_units,
            "execution": (
                self.execution.to_json() if self.execution is not None else None
            ),
            "store": dict(self.store) if self.store is not None else None,
        }


def load_trace(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into span records.

    Raises ``ValueError`` naming the offending line on malformed JSON or a
    non-object record; an empty file returns an empty list.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: malformed JSON: {error}")
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: span record is not an object")
            records.append(record)
    return records


def default_schema() -> dict[str, Any]:
    """The committed span-record schema shipped with the package."""
    return json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))


def validate_trace(
    records: Sequence[Mapping[str, Any]],
    schema: Mapping[str, Any] | None = None,
) -> list[str]:
    """Return every problem found (empty list = valid trace).

    Checks each record against the field schema, then the trace structure:
    span ids must be unique, every non-null parent must resolve to a span
    in the file, and a non-empty trace must have at least one root.
    """
    if schema is None:
        schema = default_schema()
    fields: Mapping[str, str] = schema["fields"]
    problems: list[str] = []

    seen: set[str] = set()
    for index, record in enumerate(records):
        where = f"span {index}"
        for field, type_name in fields.items():
            if field not in record:
                problems.append(f"{where}: missing field {field!r}")
                continue
            check = _TYPE_CHECKS.get(type_name)
            if check is None:
                problems.append(
                    f"schema: unknown type {type_name!r} for field {field!r}"
                )
            elif not check(record[field]):
                problems.append(
                    f"{where}: field {field!r} is not a {type_name} "
                    f"(got {record[field]!r})"
                )
        span_id = record.get("span_id")
        if isinstance(span_id, str):
            if span_id in seen:
                problems.append(f"{where}: duplicate span_id {span_id!r}")
            seen.add(span_id)

    roots = 0
    for index, record in enumerate(records):
        parent = record.get("parent_id")
        if parent is None:
            roots += 1
        elif isinstance(parent, str) and parent not in seen:
            problems.append(
                f"span {index}: parent_id {parent!r} does not resolve"
            )
    if records and roots == 0:
        problems.append("trace has no root span (every parent_id is set)")
    return problems


@dataclasses.dataclass(frozen=True)
class PhaseStat:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    wall_s: float
    cpu_s: float


@dataclasses.dataclass(frozen=True)
class TraceSummary:
    """Per-phase breakdown and cache funnel of one trace file."""

    spans: int
    traces: int
    processes: int
    roots: int
    wall_s: float
    phases: tuple[PhaseStat, ...]
    funnel: Mapping[str, int]
    shards: int
    shard_queue_wait_s: float
    shard_compute_s: float
    service: Mapping[str, int] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"trace summary: {self.spans} span(s), {self.traces} trace(s), "
            f"{self.processes} process(es), {self.roots} root(s), "
            f"wall {self.wall_s:.3f}s",
            f"{'phase':<28}{'count':>7}{'wall [s]':>12}{'cpu [s]':>12}",
        ]
        for phase in self.phases:
            lines.append(
                f"{phase.name:<28}{phase.count:>7}"
                f"{phase.wall_s:>12.3f}{phase.cpu_s:>12.3f}"
            )
        if self.funnel:
            units = self.funnel.get("units", 0)
            cached = self.funnel.get("cached", 0)
            simulated = self.funnel.get("simulated", 0)
            lines.append(
                f"cache funnel: {units} unit(s) requested -> "
                f"{cached} warm from store -> {simulated} simulated"
            )
            if "deduped" in self.funnel:
                lines.append(
                    f"batch dedup: {self.funnel.get('planned', 0)} planned, "
                    f"{self.funnel['deduped']} deduped"
                )
        if self.shards:
            lines.append(
                f"shards: {self.shards} shard(s), "
                f"queue wait {self.shard_queue_wait_s:.3f}s, "
                f"compute {self.shard_compute_s:.3f}s"
            )
        if self.service:
            lines.append(
                f"service: {self.service.get('requests', 0)} request(s), "
                f"{self.service.get('admitted', 0)} admitted, "
                f"{self.service.get('hot_hits', 0)} hot, "
                f"{self.service.get('rate_limited', 0)} rate-limited, "
                f"{self.service.get('batch_windows', 0)} window(s) / "
                f"{self.service.get('batched_jobs', 0)} job(s)"
            )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "spans": self.spans,
            "traces": self.traces,
            "processes": self.processes,
            "roots": self.roots,
            "wall_s": self.wall_s,
            "phases": [dataclasses.asdict(phase) for phase in self.phases],
            "funnel": dict(self.funnel),
            "shards": self.shards,
            "shard_queue_wait_s": self.shard_queue_wait_s,
            "shard_compute_s": self.shard_compute_s,
            "service": dict(self.service),
        }


def summarize_trace(records: Sequence[Mapping[str, Any]]) -> TraceSummary:
    """Aggregate span records into a :class:`TraceSummary`.

    Phase rows group spans by name (sorted by total wall time).  The cache
    funnel sums the ``units``/``cached``/``simulated`` attributes of
    ``sweep`` spans and the ``planned``/``deduped`` attributes of
    ``session`` spans; shard timing sums ``sweep.shard`` spans' queue-wait
    attribute against their wall time.  Traces recorded by ``repro serve``
    additionally yield a service section (request / admission / hot-tier /
    batch-window counts from the ``serve.*`` spans).
    """
    by_name: dict[str, list[Mapping[str, Any]]] = {}
    for record in records:
        by_name.setdefault(str(record.get("name", "?")), []).append(record)

    phases = tuple(
        sorted(
            (
                PhaseStat(
                    name=name,
                    count=len(group),
                    wall_s=sum(float(r.get("wall_s", 0.0)) for r in group),
                    cpu_s=sum(float(r.get("cpu_s", 0.0)) for r in group),
                )
                for name, group in by_name.items()
            ),
            key=lambda phase: (-phase.wall_s, phase.name),
        )
    )

    funnel: dict[str, int] = {}
    for record in by_name.get("sweep", ()):
        attrs = record.get("attrs") or {}
        for key in ("units", "cached", "simulated"):
            if key in attrs:
                funnel[key] = funnel.get(key, 0) + int(attrs[key])
    for record in by_name.get("session", ()):
        attrs = record.get("attrs") or {}
        for key in ("planned", "deduped"):
            if key in attrs:
                funnel[key] = funnel.get(key, 0) + int(attrs[key])

    service: dict[str, int] = {}
    request_records = by_name.get("serve.request", ())
    if request_records:
        service["requests"] = len(request_records)
        service["rate_limited"] = sum(
            1
            for r in request_records
            if (r.get("attrs") or {}).get("status") == 429
        )
    for record in by_name.get("serve.admit", ()):
        attrs = record.get("attrs") or {}
        key = "hot_hits" if attrs.get("hot") else "admitted"
        service[key] = service.get(key, 0) + 1
    window_records = by_name.get("serve.batch_window", ())
    if window_records:
        service["batch_windows"] = len(window_records)
        service["batched_jobs"] = sum(
            int((r.get("attrs") or {}).get("jobs", 0)) for r in window_records
        )

    shard_records = by_name.get("sweep.shard", ())
    shard_queue_wait = sum(
        float((r.get("attrs") or {}).get("queue_wait_s", 0.0))
        for r in shard_records
    )
    shard_compute = sum(float(r.get("wall_s", 0.0)) for r in shard_records)

    roots = [r for r in records if r.get("parent_id") is None]
    return TraceSummary(
        spans=len(records),
        traces=len({r.get("trace_id") for r in records}) if records else 0,
        processes=len({r.get("pid") for r in records}) if records else 0,
        roots=len(roots),
        wall_s=sum(float(r.get("wall_s", 0.0)) for r in roots),
        phases=phases,
        funnel=funnel,
        shards=len(shard_records),
        shard_queue_wait_s=shard_queue_wait,
        shard_compute_s=shard_compute,
        service=service,
    )
