"""Hierarchical spans with a JSONL writer and cross-process propagation.

One finished span is one JSON object on one line of the trace file:

.. code-block:: json

    {"trace_id": "5f0c...", "span_id": "9a41...", "parent_id": "..." ,
     "name": "sweep.shard", "pid": 4242, "t0_s": 1700000000.123,
     "wall_s": 0.52, "cpu_s": 0.49, "attrs": {"triads": 12}}

``t0_s`` is the wall-clock start (epoch seconds, comparable across
processes); ``wall_s``/``cpu_s`` are monotonic ``perf_counter`` /
``process_time`` durations.  Records are appended as spans *finish*, so
children precede their parents in the file -- consumers must join on
``parent_id``, not on line order (see :mod:`repro.obs.report`).

Tracing is process-global and disabled by default: :func:`span` consults a
module-level active tracer and returns the shared :data:`_NULL_SPAN` when
none is set, so instrumented hot paths cost one attribute load and a
``None`` check (and allocate nothing that outlives the call).

Cross-worker propagation rides the existing shard-task payloads: the
parent snapshots :func:`current_context` into each task, and the worker
body wraps itself in :func:`worker_scope`, which re-parents the worker's
spans under the parent's span and records the queue wait (task creation to
worker start) alongside the compute time.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import secrets
import time
from typing import Any, Iterator, Mapping

from repro.obs import clock

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "activated",
    "active_tracer",
    "current_context",
    "span",
    "worker_scope",
]

_ACTIVE: "Tracer | None" = None


def _new_id() -> str:
    """Random 64-bit hex id, collision-safe across processes."""
    return secrets.token_hex(8)


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed node of the trace tree.

    Use as a context manager; the record is written when the span exits.
    ``parent_id`` is resolved from the tracer's open-span stack on entry,
    so spans nest by lexical scope.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "_tracer",
        "_t0",
        "_wall0",
        "_cpu0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = _new_id()
        self.parent_id: str | None = None
        self.attrs = attrs

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (chains; later keys win)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        self.parent_id = stack[-1].span_id if stack else self._tracer.root_parent_id
        stack.append(self)
        self._t0 = clock.wall_time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._emit(self, self._t0, wall, cpu)
        return False


class Tracer:
    """Appends finished spans of one process to a JSONL trace file.

    Parameters
    ----------
    path:
        Trace file, opened lazily in append mode -- several processes (and
        several tracers) may share one file.
    trace_id:
        Identity of the run; workers inherit the parent's id through
        :class:`TraceContext` so the file holds one coherent trace.
    parent_id:
        Span id adopted as the parent of this tracer's top-level spans
        (``None`` = top-level spans are roots).
    buffered:
        Collect records in memory and write them as a single append on
        :meth:`close` -- one syscall per worker shard instead of one per
        span, and no line interleaving between concurrent writers.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        buffered: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self.root_parent_id = parent_id
        self._buffered = buffered
        self._buffer: list[bytes] = []
        self._stack: list[Span] = []
        self._fd: int | None = None

    def span(self, name: str, attrs: Mapping[str, Any] | None = None) -> Span:
        """Create a span (enter it with ``with`` to start the clock)."""
        return Span(self, name, dict(attrs) if attrs else {})

    def _emit(self, span: Span, t0: float, wall: float, cpu: float) -> None:
        record = {
            "trace_id": self.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "pid": os.getpid(),
            "t0_s": t0,
            "wall_s": wall,
            "cpu_s": cpu,
            "attrs": span.attrs,
        }
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        if self._buffered:
            self._buffer.append(line)
        else:
            os.write(self._open_fd(), line)

    def _open_fd(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def flush(self) -> None:
        """Write any buffered records as one append."""
        if self._buffer:
            payload = b"".join(self._buffer)
            self._buffer.clear()
            os.write(self._open_fd(), payload)

    def close(self) -> None:
        """Flush and release the file descriptor (tracer stays usable)."""
        self.flush()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def active_tracer() -> Tracer | None:
    """The tracer :func:`span` currently writes to (``None`` = disabled)."""
    return _ACTIVE


def span(name: str, **attrs: Any) -> Any:
    """Open a span on the active tracer, or a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, attrs)


@contextlib.contextmanager
def activated(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Make ``tracer`` the process-global span sink for the block.

    ``None`` is accepted and leaves tracing as-is, so call sites can write
    ``with activated(self._tracer):`` without guarding.
    """
    global _ACTIVE
    if tracer is None:
        yield None
        return
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Picklable snapshot that re-parents worker spans under the caller.

    Carried by the shard-task dataclasses (``trace`` field, default
    ``None``); ``created_at`` is the wall-clock task-creation time, so the
    worker can report how long the task sat on the queue.
    """

    path: str
    trace_id: str
    parent_id: str | None
    created_at: float


def current_context() -> TraceContext | None:
    """Snapshot the active tracer + innermost span for a worker task."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    stack = tracer._stack
    parent = stack[-1].span_id if stack else tracer.root_parent_id
    return TraceContext(
        path=tracer.path,
        trace_id=tracer.trace_id,
        parent_id=parent,
        created_at=clock.wall_time(),
    )


@contextlib.contextmanager
def worker_scope(
    context: TraceContext | None, name: str, **attrs: Any
) -> Iterator[None]:
    """Trace one worker-side task under the parent's span.

    No-op when ``context`` is ``None`` (untraced run).  Otherwise a
    buffered tracer is activated for the block, a ``name`` span with a
    ``queue_wait_s`` attribute wraps it, and every record is appended to
    the shared trace file in one write at exit.  Also safe in-process (the
    serial fallback path): the previous active tracer is restored.
    """
    if context is None:
        yield
        return
    global _ACTIVE
    tracer = Tracer(
        context.path,
        trace_id=context.trace_id,
        parent_id=context.parent_id,
        buffered=True,
    )
    queue_wait = max(0.0, clock.wall_time() - context.created_at)
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        with tracer.span(name, {**attrs, "queue_wait_s": queue_wait}):
            yield
    finally:
        _ACTIVE = previous
        tracer.close()
