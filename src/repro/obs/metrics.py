"""Counters, gauges, histograms, and registry-backed stat views.

Two layers:

* :class:`MetricsRegistry` -- a flat name -> instrument map.  The
  process-global :data:`REGISTRY` aggregates cross-cutting counters
  (simulated work units, batch dedup funnel); stat objects that are
  per-instance by design (a store's hit/miss counters, a sweep's execution
  report) each own a private registry.
* :func:`bind_registry_fields` -- class decorator that turns a plain
  ``field = 0`` attribute surface into properties over registry counters.
  ``StoreStats`` (:mod:`repro.core.store`) and ``ExecutionReport``
  (:mod:`repro.core.resilience`) are built on it, so their ubiquitous
  ``stats.hits += 1`` call sites keep working unchanged while the values
  live in a registry that reports, traces, and ``to_json`` all share.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "RegistryView",
    "bind_registry_fields",
]


class Counter:
    """A monotonically *intended* accumulator (direct assignment allowed).

    ``value`` starts at the declared zero (``0`` or ``0.0``) and keeps the
    arithmetic type of what call sites add, so integer counters serialise
    as JSON integers.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: float = 1) -> float:
        """Increment and return the new value."""
        self.value += amount
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> float:
        self.value = value
        return value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value!r})"


class Histogram:
    """Streaming count/sum/min/max summary of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean!r})"


class MetricsRegistry:
    """Flat, get-or-create map of named instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises ``TypeError`` --
    silently returning a mismatched instrument would corrupt counters.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Name -> plain-value map (histograms as summary dicts)."""
        return {
            name: (
                metric.to_json()
                if isinstance(metric, Histogram)
                else metric.value
            )
            for name, metric in sorted(self._metrics.items())
        }


#: Process-global registry for cross-cutting counters (work units simulated,
#: batch dedup funnel).  Per-instance stats own private registries instead.
REGISTRY = MetricsRegistry()


class RegistryView:
    """Base of stat façades whose fields are registry counters.

    Subclasses declare ``_FIELDS`` as a ``{name: zero}`` mapping (the zero
    fixes the counter's arithmetic type), set ``_NAMESPACE``, and decorate
    with :func:`bind_registry_fields`.  The result keeps the surface of the
    plain dataclasses it replaces: keyword construction, ``a.field += n``
    mutation, value equality, and a dataclass-style ``repr``.
    """

    _FIELDS: dict[str, float] = {}
    _NAMESPACE = ""

    def __init__(
        self, *, registry: MetricsRegistry | None = None, **values: float
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        for field, zero in self._FIELDS.items():
            counter = self._registry.counter(f"{self._NAMESPACE}.{field}")
            if counter.value == 0:
                # Adopt the declared zero so the counter keeps its arithmetic
                # type (0.0 fields must serialise as JSON floats).
                counter.value = zero
        for field, value in values.items():
            if field not in self._FIELDS:
                raise TypeError(
                    f"{type(self).__name__} has no field {field!r}"
                )
            setattr(self, field, value)

    @property
    def registry(self) -> MetricsRegistry:
        """The backing registry (shared with whoever injected it)."""
        return self._registry

    def _values(self) -> dict[str, float]:
        return {field: getattr(self, field) for field in self._FIELDS}

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._values() == other._values()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values().items())
        return f"{type(self).__name__}({inner})"


def bind_registry_fields(cls: type[RegistryView]) -> type[RegistryView]:
    """Install a counter-backed property per ``_FIELDS`` entry."""

    def make_property(field: str) -> property:
        key = f"{cls._NAMESPACE}.{field}"

        def getter(self: RegistryView) -> float:
            return self._registry.counter(key).value

        def setter(self: RegistryView, value: float) -> None:
            self._registry.counter(key).value = value

        return property(getter, setter)

    for field in cls._FIELDS:
        setattr(cls, field, make_property(field))
    return cls
