"""Application-level output quality metrics."""

from __future__ import annotations

import numpy as np


def psnr_db(reference: np.ndarray, observed: np.ndarray, peak: float | None = None) -> float:
    """Peak signal-to-noise ratio in decibels.

    Parameters
    ----------
    reference:
        Golden output (e.g. the image produced with exact arithmetic).
    observed:
        Output produced with approximate arithmetic.
    peak:
        Peak signal value; defaults to the maximum of the reference.
    """
    ref = np.asarray(reference, dtype=float)
    obs = np.asarray(observed, dtype=float)
    if ref.shape != obs.shape:
        raise ValueError("reference and observed must have the same shape")
    mse = float(np.mean((ref - obs) ** 2))
    if mse == 0.0:
        return float("inf")
    peak_value = float(ref.max()) if peak is None else float(peak)
    if peak_value <= 0:
        raise ValueError("peak must be positive")
    return 10.0 * np.log10(peak_value**2 / mse)


def output_snr_db(reference: np.ndarray, observed: np.ndarray) -> float:
    """Signal-to-noise ratio of an application output in decibels."""
    ref = np.asarray(reference, dtype=float)
    obs = np.asarray(observed, dtype=float)
    if ref.shape != obs.shape:
        raise ValueError("reference and observed must have the same shape")
    noise = float(np.sum((ref - obs) ** 2))
    signal = float(np.sum(ref**2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal / noise)


def relative_error(reference: np.ndarray, observed: np.ndarray) -> float:
    """Mean relative numerical error (with a small guard for zero references)."""
    ref = np.asarray(reference, dtype=float)
    obs = np.asarray(observed, dtype=float)
    if ref.shape != obs.shape:
        raise ValueError("reference and observed must have the same shape")
    denominator = np.maximum(np.abs(ref), 1.0)
    return float(np.mean(np.abs(obs - ref) / denominator))
