"""Error-resilient applications mapped onto the approximate operator model.

The paper motivates VOS-based approximate operators with statistical /
signal-processing workloads that tolerate hardware errors.  This package
provides three such workloads built on :class:`repro.core.ApproximateAdderModel`:

* :mod:`repro.apps.fir`   -- fixed-point FIR filtering,
* :mod:`repro.apps.image` -- image convolution (box blur, Sobel edges),
* :mod:`repro.apps.dct`   -- 8-point one-dimensional DCT,
* :mod:`repro.apps.quality` -- application-level quality metrics (PSNR, SNR).

Each application can run with the exact adder or with an approximate adder
model, so the examples and benchmarks can quantify the application-level
quality loss corresponding to a circuit-level BER.
"""

from repro.apps.quality import psnr_db, output_snr_db, relative_error
from repro.apps.fir import FirFilter, moving_average_coefficients, low_pass_coefficients
from repro.apps.image import (
    convolve2d,
    box_blur,
    sobel_magnitude,
    synthetic_gradient_image,
    synthetic_checkerboard_image,
)
from repro.apps.dct import dct_1d, dct_matrix, blockwise_dct

__all__ = [
    "psnr_db",
    "output_snr_db",
    "relative_error",
    "FirFilter",
    "moving_average_coefficients",
    "low_pass_coefficients",
    "convolve2d",
    "box_blur",
    "sobel_magnitude",
    "synthetic_gradient_image",
    "synthetic_checkerboard_image",
    "dct_1d",
    "dct_matrix",
    "blockwise_dct",
]
