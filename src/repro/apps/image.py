"""Image convolution workloads (box blur, Sobel edge detection).

Image filtering is the prototypical error-resilient application in the
approximate-computing literature the paper builds on: per-pixel accumulation
errors show up as mild noise while the picture stays recognisable.  The
kernels here operate on unsigned 8-bit synthetic images and accumulate with
either exact arithmetic or an approximate adder model.
"""

from __future__ import annotations

import numpy as np

from repro.core.modified_adder import ApproximateAdderModel


def synthetic_gradient_image(height: int = 32, width: int = 32) -> np.ndarray:
    """Diagonal gradient test image with values in 0..255."""
    if height <= 0 or width <= 0:
        raise ValueError("image dimensions must be positive")
    rows = np.arange(height).reshape(-1, 1)
    cols = np.arange(width).reshape(1, -1)
    image = (rows * 255 // max(height - 1, 1) + cols * 255 // max(width - 1, 1)) // 2
    return image.astype(np.int64)


def synthetic_checkerboard_image(
    height: int = 32, width: int = 32, tile: int = 4, low: int = 32, high: int = 224
) -> np.ndarray:
    """Checkerboard test image exercising strong local contrast."""
    if height <= 0 or width <= 0:
        raise ValueError("image dimensions must be positive")
    if tile <= 0:
        raise ValueError("tile must be positive")
    if not (0 <= low <= 255 and 0 <= high <= 255):
        raise ValueError("low/high must be 8-bit pixel values")
    rows = (np.arange(height) // tile).reshape(-1, 1)
    cols = (np.arange(width) // tile).reshape(1, -1)
    board = (rows + cols) % 2
    return np.where(board == 0, low, high).astype(np.int64)


def convolve2d(
    image: np.ndarray,
    kernel: np.ndarray,
    adder: ApproximateAdderModel | None = None,
    normalize: int = 1,
    clip_to_byte: bool = True,
) -> np.ndarray:
    """2-D convolution with integer kernel and optional approximate accumulation.

    Parameters
    ----------
    image:
        2-D array of non-negative integer pixels.
    kernel:
        2-D integer kernel (may contain negative weights).
    adder:
        Approximate adder model used for the per-pixel accumulation; exact
        when ``None``.
    normalize:
        Divisor applied to the accumulated value (e.g. kernel sum for a box
        blur).
    clip_to_byte:
        Clip the result to 0..255 (standard for 8-bit image pipelines).
    """
    pixels = np.asarray(image, dtype=np.int64)
    weights = np.asarray(kernel, dtype=np.int64)
    if pixels.ndim != 2 or weights.ndim != 2:
        raise ValueError("image and kernel must be 2-D arrays")
    if normalize <= 0:
        raise ValueError("normalize must be positive")
    pad_r, pad_c = weights.shape[0] // 2, weights.shape[1] // 2
    padded = np.pad(pixels, ((pad_r, pad_r), (pad_c, pad_c)), mode="edge")
    output = np.empty_like(pixels)
    for row in range(pixels.shape[0]):
        for col in range(pixels.shape[1]):
            patch = padded[row : row + weights.shape[0], col : col + weights.shape[1]]
            products = (patch * weights).ravel()
            total = _accumulate(products, adder)
            value = total // normalize
            if clip_to_byte:
                value = min(max(value, 0), 255)
            output[row, col] = value
    return output


def box_blur(
    image: np.ndarray,
    size: int = 3,
    adder: ApproximateAdderModel | None = None,
) -> np.ndarray:
    """Box blur with a ``size x size`` all-ones kernel."""
    if size <= 0 or size % 2 == 0:
        raise ValueError("size must be a positive odd number")
    kernel = np.ones((size, size), dtype=np.int64)
    return convolve2d(image, kernel, adder=adder, normalize=size * size)


_SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.int64)
_SOBEL_Y = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.int64)


def sobel_magnitude(
    image: np.ndarray,
    adder: ApproximateAdderModel | None = None,
) -> np.ndarray:
    """Approximate Sobel gradient magnitude ``|Gx| + |Gy|`` (clipped to 8 bits)."""
    gradient_x = convolve2d(image, _SOBEL_X, adder=adder, clip_to_byte=False)
    gradient_y = convolve2d(image, _SOBEL_Y, adder=adder, clip_to_byte=False)
    magnitude = np.abs(gradient_x) + np.abs(gradient_y)
    return np.clip(magnitude, 0, 255)


def _accumulate(products: np.ndarray, adder: ApproximateAdderModel | None) -> int:
    if adder is None:
        return int(products.sum())
    positive = products[products > 0]
    negative = -products[products < 0]
    pos_total = adder.accumulate(positive) if positive.size else 0
    neg_total = adder.accumulate(negative) if negative.size else 0
    return int(pos_total) - int(neg_total)
