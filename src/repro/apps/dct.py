"""Fixed-point 8-point DCT built on the approximate adder model.

The discrete cosine transform is the core of image/video compression, one of
the application classes the paper lists as error resilient.  The transform
here uses an integer (scaled) DCT-II matrix; the per-coefficient dot products
accumulate with either exact arithmetic or the approximate adder model.
"""

from __future__ import annotations

import numpy as np

from repro.core.modified_adder import ApproximateAdderModel

#: Fixed-point scale of the integer DCT matrix entries.
DCT_SCALE = 64


def dct_matrix(size: int = 8, scale: int = DCT_SCALE) -> np.ndarray:
    """Integer DCT-II matrix of the requested size (entries scaled by ``scale``)."""
    if size <= 0:
        raise ValueError("size must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    k = np.arange(size).reshape(-1, 1)
    n = np.arange(size).reshape(1, -1)
    basis = np.cos(np.pi * (2 * n + 1) * k / (2 * size))
    basis[0, :] *= 1.0 / np.sqrt(2.0)
    basis *= np.sqrt(2.0 / size)
    return np.round(basis * scale).astype(np.int64)


def dct_1d(
    samples: np.ndarray,
    adder: ApproximateAdderModel | None = None,
    matrix: np.ndarray | None = None,
) -> np.ndarray:
    """1-D integer DCT of a sample block.

    Parameters
    ----------
    samples:
        Integer samples (one block, any length matching the matrix size).
    adder:
        Approximate adder model for the accumulations; exact when ``None``.
    matrix:
        Pre-computed integer DCT matrix; defaults to :func:`dct_matrix` of
        the block size.
    """
    block = np.asarray(samples, dtype=np.int64)
    if block.ndim != 1:
        raise ValueError("samples must be a 1-D block")
    transform = dct_matrix(block.size) if matrix is None else np.asarray(matrix, dtype=np.int64)
    if transform.shape != (block.size, block.size):
        raise ValueError("matrix shape does not match the block size")
    coefficients = np.empty(block.size, dtype=np.int64)
    for row in range(block.size):
        products = transform[row] * block
        coefficients[row] = _accumulate(products, adder)
    return coefficients


def blockwise_dct(
    signal: np.ndarray,
    block_size: int = 8,
    adder: ApproximateAdderModel | None = None,
) -> np.ndarray:
    """Apply the 1-D DCT to consecutive blocks of a long signal.

    The trailing partial block (if any) is zero-padded.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    samples = np.asarray(signal, dtype=np.int64).reshape(-1)
    n_blocks = (samples.size + block_size - 1) // block_size
    padded = np.zeros(n_blocks * block_size, dtype=np.int64)
    padded[: samples.size] = samples
    matrix = dct_matrix(block_size)
    output = np.empty_like(padded)
    for index in range(n_blocks):
        start = index * block_size
        output[start : start + block_size] = dct_1d(
            padded[start : start + block_size], adder=adder, matrix=matrix
        )
    return output


def _accumulate(products: np.ndarray, adder: ApproximateAdderModel | None) -> int:
    if adder is None:
        return int(products.sum())
    positive = products[products > 0]
    negative = -products[products < 0]
    pos_total = adder.accumulate(positive) if positive.size else 0
    neg_total = adder.accumulate(negative) if negative.size else 0
    return int(pos_total) - int(neg_total)
