"""Fixed-point FIR filtering with exact or approximate accumulation.

The FIR filter is the canonical "soft DSP" workload (the paper cites Hegde &
Shanbhag's soft digital signal processing): multiply-accumulate chains whose
accumulations can tolerate occasional errors.  Multiplications stay exact;
the accumulation adder is either the exact integer adder or an
:class:`~repro.core.modified_adder.ApproximateAdderModel` trained on a VOS
triad.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.modified_adder import ApproximateAdderModel


def moving_average_coefficients(taps: int) -> np.ndarray:
    """Integer moving-average coefficients (all ones)."""
    if taps <= 0:
        raise ValueError("taps must be positive")
    return np.ones(taps, dtype=np.int64)


def low_pass_coefficients(taps: int, scale: int = 64) -> np.ndarray:
    """Windowed-sinc low-pass coefficients quantised to integers.

    Cut-off is fixed at a quarter of the sample rate; the coefficients are
    scaled by ``scale`` and rounded, giving a realistic small fixed-point
    kernel without needing scipy.
    """
    if taps <= 0:
        raise ValueError("taps must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = np.arange(taps) - (taps - 1) / 2.0
    cutoff = 0.25
    safe_n = np.where(n == 0, 1.0, n)
    sinc = np.where(n == 0, 2 * cutoff, np.sin(2 * np.pi * cutoff * safe_n) / (np.pi * safe_n))
    window = 0.54 - 0.46 * np.cos(2 * np.pi * np.arange(taps) / max(taps - 1, 1))
    kernel = sinc * window
    quantised = np.round(kernel * scale).astype(np.int64)
    if not quantised.any():
        quantised[taps // 2] = 1
    return quantised


@dataclasses.dataclass
class FirFilter:
    """Direct-form FIR filter over unsigned fixed-point samples.

    Parameters
    ----------
    coefficients:
        Integer tap coefficients (may be negative; the accumulation is done
        in offset-binary so the approximate adder only sees non-negative
        operands).
    adder:
        Optional approximate adder model used for the accumulations; when
        ``None`` the filter is exact.
    accumulator_width:
        Bit width of the accumulation datapath; defaults to the adder
        model's width, or 32 for the exact filter.
    """

    coefficients: np.ndarray
    adder: ApproximateAdderModel | None = None
    accumulator_width: int | None = None

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=np.int64)
        if self.coefficients.ndim != 1 or self.coefficients.size == 0:
            raise ValueError("coefficients must be a non-empty 1-D array")
        if self.accumulator_width is None:
            self.accumulator_width = self.adder.width if self.adder is not None else 32
        if self.adder is not None and self.adder.width != self.accumulator_width:
            raise ValueError("accumulator_width must match the adder width")
        if self.accumulator_width <= 1:
            raise ValueError("accumulator_width must be at least 2 bits")

    @property
    def taps(self) -> int:
        """Number of filter taps."""
        return int(self.coefficients.size)

    def filter(self, samples: np.ndarray) -> np.ndarray:
        """Filter a 1-D sample stream, returning one output per input sample.

        The convolution is causal: output ``n`` uses samples ``n-taps+1 .. n``
        (zero-padded at the start).
        """
        signal = np.asarray(samples, dtype=np.int64)
        if signal.ndim != 1:
            raise ValueError("samples must be a 1-D array")
        padded = np.concatenate([np.zeros(self.taps - 1, dtype=np.int64), signal])
        outputs = np.empty(signal.size, dtype=np.int64)
        for index in range(signal.size):
            window = padded[index : index + self.taps][::-1]
            outputs[index] = self._mac(window)
        return outputs

    def _mac(self, window: np.ndarray) -> int:
        products = window * self.coefficients
        if self.adder is None:
            return int(products.sum())
        # Accumulate positive and negative contributions separately so the
        # unsigned approximate adder never sees a negative operand, then take
        # the exact difference (the subtractor is assumed accurate, as in the
        # paper's accurate/approximate split designs).
        positive = products[products > 0]
        negative = -products[products < 0]
        pos_total = self.adder.accumulate(positive) if positive.size else 0
        neg_total = self.adder.accumulate(negative) if negative.size else 0
        return int(pos_total) - int(neg_total)

    def frequency_response(self, n_points: int = 128) -> np.ndarray:
        """Magnitude of the filter's frequency response (exact coefficients)."""
        if n_points <= 0:
            raise ValueError("n_points must be positive")
        frequencies = np.linspace(0.0, 0.5, n_points)
        taps = np.arange(self.taps)
        response = np.array(
            [
                abs(np.sum(self.coefficients * np.exp(-2j * np.pi * f * taps)))
                for f in frequencies
            ]
        )
        return response
