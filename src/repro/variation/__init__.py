"""Variation-aware Monte Carlo characterization.

The paper's numbers are nominal-process numbers; this subsystem puts error
bars (and a manufacturing yield) on them.  It samples per-gate process
variation around a process corner, lowers whole batches of sampled instances
through the packed timing engine as one vectorized simulation pass, shards
sample ranges across the worker-process orchestrator, and persists every
``(triad, sample range)`` summary in the content-addressed sweep result
store -- so Monte Carlo at paper-fidelity stimulus sizes stays interactive
and warm reruns simulate nothing.

Layers:

* :mod:`repro.variation.sampler`    -- deterministic per-gate mismatch draws,
* :mod:`repro.variation.montecarlo` -- the sharded, cached Monte Carlo runner,
* :mod:`repro.variation.stats`      -- distribution summaries, quantile BER,
  yield at a BER margin.

The exploration subsystem (:mod:`repro.explore`) consumes these results to
score candidates by *quantile* BER instead of nominal BER -- a Pareto
frontier that is robust under variation.
"""

from repro.variation.montecarlo import (
    DEFAULT_SAMPLE_CHUNK,
    MonteCarloConfig,
    run_montecarlo_sweep,
    supply_scaling_grid,
)
from repro.variation.sampler import VariationBatch, VariationSampler
from repro.variation.stats import (
    DistributionSummary,
    TriadVariationResult,
    yield_at_margin,
)

__all__ = [
    "DEFAULT_SAMPLE_CHUNK",
    "MonteCarloConfig",
    "run_montecarlo_sweep",
    "supply_scaling_grid",
    "VariationBatch",
    "VariationSampler",
    "DistributionSummary",
    "TriadVariationResult",
    "yield_at_margin",
]
