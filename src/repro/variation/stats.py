"""Distribution statistics over Monte Carlo variation samples.

The Monte Carlo runner produces one BER / energy value per sampled netlist
instance; this module condenses those per-sample arrays into the statistics a
yield analysis reports: moments, quantiles, and the parametric yield at a BER
margin (the fraction of manufactured instances that would meet the margin at
the operating triad).  Everything is a pure, deterministic function of the
sample arrays, so statistics are identical whether samples were simulated
serially, sharded across workers, or replayed from the result store.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.triad import OperatingTriad

#: Quantiles reported by :meth:`DistributionSummary.from_samples`.
SUMMARY_QUANTILES: tuple[float, ...] = (0.05, 0.50, 0.95, 0.99)


@dataclasses.dataclass(frozen=True)
class DistributionSummary:
    """Moments and quantiles of one scalar sample distribution.

    Attributes
    ----------
    mean / std / minimum / maximum:
        The usual moments and extrema over the samples.
    p05 / p50 / p95 / p99:
        Linear-interpolation quantiles (:data:`SUMMARY_QUANTILES`).
    n_samples:
        Number of samples the summary was computed from.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    p05: float
    p50: float
    p95: float
    p99: float
    n_samples: int

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "DistributionSummary":
        """Summarise a non-empty 1-D sample array."""
        values = np.asarray(samples, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("cannot summarise an empty sample array")
        quantiles = np.quantile(values, SUMMARY_QUANTILES)
        return cls(
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            p05=float(quantiles[0]),
            p50=float(quantiles[1]),
            p95=float(quantiles[2]),
            p99=float(quantiles[3]),
            n_samples=int(values.size),
        )


def yield_at_margin(ber_samples: np.ndarray, max_ber: float) -> float:
    """Fraction of sampled instances whose BER does not exceed the margin."""
    if max_ber < 0:
        raise ValueError("max_ber must be non-negative")
    values = np.asarray(ber_samples, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("cannot compute yield over an empty sample array")
    return float((values <= max_ber).mean())


@dataclasses.dataclass(frozen=True)
class TriadVariationResult:
    """Monte Carlo characterization of one circuit at one operating triad.

    Attributes
    ----------
    triad:
        The operating triad.
    n_vectors:
        Stimulus size each sample was simulated with.
    ber_samples:
        BER (fraction) of each sampled instance, shape ``(n_samples,)``,
        ordered by absolute sample index.
    faulty_fraction_samples:
        Per-sample fraction of cycles whose whole output word was wrong.
    energy_samples:
        Per-sample mean total energy per operation, joules.
    static_energy_samples:
        Per-sample leakage energy per operation, joules.
    dynamic_energy_per_operation:
        Mean dynamic energy per operation, joules (variation-independent:
        toggle counts and switched capacitance do not change with mismatch).
    """

    triad: OperatingTriad
    n_vectors: int
    ber_samples: np.ndarray
    faulty_fraction_samples: np.ndarray
    energy_samples: np.ndarray
    static_energy_samples: np.ndarray
    dynamic_energy_per_operation: float

    def __post_init__(self) -> None:
        samples = self.n_samples
        for attr in (
            "faulty_fraction_samples",
            "energy_samples",
            "static_energy_samples",
        ):
            if np.asarray(getattr(self, attr)).shape != (samples,):
                raise ValueError(f"{attr} must have shape ({samples},)")
        if samples == 0:
            raise ValueError("a variation result needs at least one sample")

    @property
    def n_samples(self) -> int:
        """Number of Monte Carlo samples."""
        return int(np.asarray(self.ber_samples).size)

    @property
    def ber(self) -> DistributionSummary:
        """Distribution summary of the per-instance BER."""
        return DistributionSummary.from_samples(self.ber_samples)

    @property
    def energy(self) -> DistributionSummary:
        """Distribution summary of the per-instance energy per operation."""
        return DistributionSummary.from_samples(self.energy_samples)

    def ber_quantile(self, quantile: float) -> float:
        """BER at a given quantile of the sampled instances (0..1)."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must lie within [0, 1]")
        return float(np.quantile(np.asarray(self.ber_samples, dtype=float), quantile))

    def yield_at(self, max_ber: float) -> float:
        """Parametric yield: instances meeting the BER margin (0..1)."""
        return yield_at_margin(self.ber_samples, max_ber)
