"""Seeded per-gate variation sampling for Monte Carlo characterization.

A *variation instance* is one manufactured die: a per-gate draw of
``(current-factor multiplier, Vt offset)`` from the
:class:`~repro.technology.corners.GateVariationModel`.  The sampler's
determinism contract is the foundation of the whole subsystem:

* instance ``i`` is derived from the seed sequence ``(seed, i)`` alone, so a
  sample is byte-identical whether it is drawn serially, inside a worker
  process, or as part of any chunk of any size -- which is what lets sample
  ranges shard across the :class:`~concurrent.futures.ProcessPoolExecutor`
  orchestrator and persist in the content-addressed result store without the
  run topology leaking into the numbers;
* the raw draws live in *device parameter* space and are independent of the
  operating point -- the same die is then evaluated at every triad of a
  sweep by lowering the draws to per-gate delay / leakage multipliers at
  each ``(vdd, vbb)`` through the device equations
  (:func:`~repro.technology.corners.variation_delay_multipliers`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.technology.corners import (
    GateVariationModel,
    variation_delay_multipliers,
    variation_leakage_multipliers,
)
from repro.technology.fdsoi28 import TechnologyParameters


@dataclasses.dataclass(frozen=True)
class VariationBatch:
    """Raw per-gate parameter draws of a contiguous sample-index range.

    Attributes
    ----------
    start / stop:
        The half-open absolute sample-index range ``[start, stop)``.
    current_multipliers:
        Per-instance per-gate current-factor multipliers,
        shape ``(stop - start, n_gates)``.
    vt_offsets:
        Per-instance per-gate threshold-voltage offsets in volts, same shape.
    """

    start: int
    stop: int
    current_multipliers: np.ndarray
    vt_offsets: np.ndarray

    @property
    def n_instances(self) -> int:
        """Number of instances in the batch."""
        return self.stop - self.start

    def delay_multipliers(
        self, vdd: float, vbb: float, tech: TechnologyParameters
    ) -> np.ndarray:
        """Per-gate delay multipliers of the batch at an operating point."""
        return variation_delay_multipliers(
            self.current_multipliers, self.vt_offsets, vdd, vbb, tech
        )

    def leakage_multipliers(self, tech: TechnologyParameters) -> np.ndarray:
        """Per-gate leakage-power multipliers of the batch."""
        return variation_leakage_multipliers(
            self.current_multipliers, self.vt_offsets, tech
        )


class VariationSampler:
    """Deterministic per-gate variation sampler for one netlist size.

    Parameters
    ----------
    model:
        The mismatch model the draws follow.
    seed:
        Base seed; combined with each absolute sample index into an
        independent :class:`numpy.random.SeedSequence`, so instance ``i`` is
        reproducible in isolation.
    """

    def __init__(self, model: GateVariationModel, seed: int) -> None:
        self._model = model
        self._seed = int(seed)

    @property
    def model(self) -> GateVariationModel:
        """The mismatch model draws follow."""
        return self._model

    @property
    def seed(self) -> int:
        """Base seed of the sampler."""
        return self._seed

    def sample_instance(
        self, n_gates: int, sample_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw the ``(current multipliers, vt offsets)`` of one instance."""
        if sample_index < 0:
            raise ValueError("sample_index must be non-negative")
        rng = np.random.default_rng([self._seed, sample_index])
        return self._model.sample_gate_parameters(n_gates, rng)

    def sample_range(self, n_gates: int, start: int, stop: int) -> VariationBatch:
        """Draw a contiguous half-open range of instances as one batch."""
        if start < 0:
            raise ValueError("start must be non-negative")
        if stop <= start:
            raise ValueError("stop must exceed start")
        current = np.empty((stop - start, n_gates), dtype=float)
        offsets = np.empty((stop - start, n_gates), dtype=float)
        for row, index in enumerate(range(start, stop)):
            current[row], offsets[row] = self.sample_instance(n_gates, index)
        return VariationBatch(
            start=start,
            stop=stop,
            current_multipliers=current,
            vt_offsets=offsets,
        )
