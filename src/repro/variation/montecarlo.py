"""Monte Carlo variation characterization at scale.

The paper reports BER/energy at nominal process conditions; this module asks
the manufacturing question instead: *across sampled process variation, what
fraction of dies meets a BER margin at each operating triad?*  One Monte
Carlo run draws ``n_samples`` per-gate mismatch instances
(:class:`~repro.variation.sampler.VariationSampler`), lowers each contiguous
*sample-index range* as a vectorized batch dimension through the packed
timing engine (one batched arrival pass evaluates the whole range per
``(vdd, vbb)`` group -- no Python loop over instances), and condenses the
per-instance BER/energy into distribution statistics and yield
(:mod:`repro.variation.stats`).

Scale comes from the PR-2 orchestration layer, reused wholesale:

* **Sharding.**  Sample ranges are fixed-size chunks (independent of the
  worker count), distributed over a ``ProcessPoolExecutor``.  Workers rebuild
  the circuit from its verified generator spec
  (:func:`repro.core.sweep.verified_spec`), and every per-instance number
  depends only on ``(seed, absolute sample index)`` -- so serial and sharded
  runs are byte-identical, entry for entry.
* **Result store.**  Each ``(triad, sample range)`` summary persists in the
  content-addressed :class:`~repro.core.store.SweepResultStore`, keyed by
  (netlist fingerprint, corner-shifted library fingerprint, stimulus,
  corner, variation model + seed, sample-index range, triad, engine
  version).  A warm rerun -- or a resumed run extending ``n_samples`` --
  fetches completed ranges and performs **zero** timing simulations for
  them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

import numpy as np

from repro.circuits.multipliers import MultiplierCircuit
from repro.circuits.signals import int_to_bits
from repro.core.resilience import ExecutionPolicy, ExecutionReport, run_shards
from repro.core.shm import SharedArrayRef, share_arrays
from repro.core.store import (
    SweepResultStore,
    decode_float64_array,
    library_fingerprint,
    netlist_fingerprint,
    pack_float64_array,
)
from repro.core.sweep import CircuitSpec, record_simulated_units, verified_spec
from repro.core.triad import OperatingTriad, TriadGrid
from repro.obs.trace import TraceContext, current_context, span, worker_scope
from repro.simulation.engine import ENGINE_VERSION
from repro.simulation.timing_sim import VosTimingSimulator
from repro.technology.corners import (
    GateVariationModel,
    ProcessCorner,
    corner_library,
)
from repro.technology.library import DEFAULT_LIBRARY, StandardCellLibrary
from repro.testing.chaos import ChaosPlan
from repro.variation.sampler import VariationSampler
from repro.variation.stats import TriadVariationResult

#: Version of the Monte Carlo payload dict layout (part of stored entries).
MC_PAYLOAD_VERSION = 1

#: Samples per shard/store entry.  Fixed (not derived from the worker count)
#: so the sample-range decomposition -- and therefore every store entry -- is
#: identical for any ``jobs`` value, and bounded so one range's batched
#: arrival matrix stays comfortably in memory.
DEFAULT_SAMPLE_CHUNK = 32


@dataclasses.dataclass(frozen=True)
class MonteCarloConfig:
    """Parameters of one Monte Carlo characterization run.

    Attributes
    ----------
    corner:
        Process corner the nominal die is shifted to before sampling local
        mismatch around it.
    model:
        The per-gate mismatch model.
    n_samples:
        Number of sampled netlist instances.
    seed:
        Variation seed; instance ``i`` depends only on ``(seed, i)``.
    chunk:
        Samples per shard / store entry (see :data:`DEFAULT_SAMPLE_CHUNK`).
    """

    corner: ProcessCorner = ProcessCorner.TYPICAL
    model: GateVariationModel = dataclasses.field(
        default_factory=GateVariationModel
    )
    n_samples: int = 64
    seed: int = 2017
    chunk: int = DEFAULT_SAMPLE_CHUNK

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if self.chunk <= 0:
            raise ValueError("chunk must be positive")

    def sample_ranges(self) -> tuple[tuple[int, int], ...]:
        """Half-open sample-index ranges the run decomposes into."""
        return tuple(
            (start, min(start + self.chunk, self.n_samples))
            for start in range(0, self.n_samples, self.chunk)
        )

    def key_components(self) -> dict[str, Any]:
        """JSON-serialisable identity of the run (result-store key part)."""
        return {**self.model.key_components(), "seed": self.seed}


def supply_scaling_grid(
    flow: Any, supply_voltages: Sequence[float]
) -> TriadGrid:
    """Fig. 5 style grid: the matched nominal clock across a supply sweep.

    Holds the flow's nominal clock
    (:meth:`~repro.core.characterization.CharacterizationFlow.nominal_clock_period`,
    the same rule :func:`repro.analysis.figures.fig5_ber_per_bit` sweeps at)
    with no body bias -- the axis a yield-vs-Vdd analysis scales.
    """
    nominal = flow.nominal_clock_period()
    return TriadGrid(
        [
            OperatingTriad(tclk=nominal, vdd=vdd, vbb=0.0)
            for vdd in supply_voltages
        ]
    )


# ---------------------------------------------------------------------------
# Range simulation (the worker body)
# ---------------------------------------------------------------------------


def _exact_words(circuit: Any, in1: np.ndarray, in2: np.ndarray) -> np.ndarray:
    if isinstance(circuit, MultiplierCircuit):
        return circuit.exact_product(in1, in2)
    return circuit.exact_sum(in1, in2)


def _simulate_range(
    circuit: Any,
    library: StandardCellLibrary,
    triads: Sequence[OperatingTriad],
    in1: np.ndarray,
    in2: np.ndarray,
    model: GateVariationModel,
    seed: int,
    start: int,
    stop: int,
    simulator: VosTimingSimulator | None = None,
) -> list[dict[str, Any]]:
    """Simulate one sample range over every triad; payloads in triad order.

    Triads are grouped by operating point so the batched arrival pass -- the
    expensive part -- runs once per ``(vdd, vbb)`` for the whole range, and
    clock periods within a group cost one latch comparison each.
    """
    if simulator is None:
        simulator = VosTimingSimulator(
            circuit.netlist,
            output_ports=circuit.output_ports(),
            library=library,
        )
    tech = library.technology
    sampler = VariationSampler(model, seed)
    batch = sampler.sample_range(circuit.netlist.gate_count, start, stop)
    leakage_multipliers = batch.leakage_multipliers(tech)
    assignment = circuit.input_assignment(in1, in2)
    exact = _exact_words(circuit, in1, in2)
    exact_bits = int_to_bits(exact, circuit.output_width)
    n_vectors = int(np.asarray(in1).size)

    groups: dict[tuple[float, float], list[tuple[int, float]]] = {}
    for index, triad in enumerate(triads):
        groups.setdefault((triad.vdd, triad.vbb), []).append(
            (index, triad.tclk)
        )

    payloads: dict[int, dict[str, Any]] = {}
    for (vdd, vbb), entries in groups.items():
        delay_multipliers = batch.delay_multipliers(vdd, vbb, tech)
        results = simulator.run_variation_sweep(
            assignment,
            [tclk for _, tclk in entries],
            vdd,
            vbb,
            delay_multipliers=delay_multipliers,
            leakage_multipliers=leakage_multipliers,
        )
        for (index, tclk), result in zip(entries, results):
            errors = result.latched_bits != exact_bits[None, :, :]
            ber = errors.mean(axis=(1, 2))
            faulty = errors.any(axis=2).mean(axis=1)
            dynamic = float(result.dynamic_energy.mean())
            static = result.static_energy_per_operation
            triad = triads[index]
            payloads[index] = {
                "payload_version": MC_PAYLOAD_VERSION,
                "triad": {"tclk": triad.tclk, "vdd": triad.vdd, "vbb": triad.vbb},
                "n_vectors": n_vectors,
                "samples": {"start": start, "stop": stop},
                "ber_samples": pack_float64_array(ber),
                "faulty_fraction_samples": pack_float64_array(faulty),
                "energy_samples": pack_float64_array(dynamic + static),
                "static_energy_samples": pack_float64_array(static),
                "dynamic_energy_per_operation": dynamic,
            }
    return [payloads[index] for index in range(len(triads))]


@dataclasses.dataclass(frozen=True)
class _MonteCarloShard:
    spec: CircuitSpec
    library: StandardCellLibrary
    stimulus: SharedArrayRef
    triads: tuple[tuple[float, float, float], ...]
    model: GateVariationModel
    seed: int
    start: int
    stop: int
    trace: TraceContext | None = None


def _run_montecarlo_shard(task: _MonteCarloShard) -> list[dict[str, Any]]:
    with worker_scope(
        task.trace,
        "sweep.shard",
        kind="montecarlo",
        units=len(task.triads),
        samples=task.stop - task.start,
    ):
        circuit = task.spec.build()
        operands = task.stimulus.load()
        triads = [
            OperatingTriad(tclk=t, vdd=v, vbb=b) for t, v, b in task.triads
        ]
        return _simulate_range(
            circuit,
            task.library,
            triads,
            operands["in1"],
            operands["in2"],
            task.model,
            task.seed,
            task.start,
            task.stop,
        )


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


def _payload_usable(
    payload: Mapping[str, Any] | None, n_vectors: int, start: int, stop: int
) -> bool:
    if payload is None:
        return False
    if payload.get("payload_version") != MC_PAYLOAD_VERSION:
        return False
    if payload.get("n_vectors") != n_vectors:
        return False
    samples = payload.get("samples") or {}
    return samples.get("start") == start and samples.get("stop") == stop


def _validate_montecarlo_shard(task: _MonteCarloShard, result: Any) -> bool:
    """Parent-side shard-result check: one versioned payload per triad."""
    if not isinstance(result, list) or len(result) != len(task.triads):
        return False
    return all(
        isinstance(payload, Mapping)
        and payload.get("payload_version") == MC_PAYLOAD_VERSION
        for payload in result
    )


def run_montecarlo_sweep(
    circuit: Any,
    grid: TriadGrid | Sequence[OperatingTriad],
    in1: np.ndarray,
    in2: np.ndarray,
    stimulus: Mapping[str, Any],
    *,
    config: MonteCarloConfig,
    library: StandardCellLibrary = DEFAULT_LIBRARY,
    jobs: int = 1,
    store: SweepResultStore | None = None,
    policy: ExecutionPolicy | None = None,
    chaos: ChaosPlan | None = None,
    report: ExecutionReport | None = None,
    shm: bool | None = None,
) -> list[TriadVariationResult]:
    """Monte Carlo characterize a circuit over a triad grid, sharded + cached.

    Parameters
    ----------
    circuit:
        :class:`AdderCircuit` or :class:`MultiplierCircuit` under test.
    grid:
        Operating triads to characterize at.
    in1, in2:
        Operand streams (already resolved from the pattern config).
    stimulus:
        Cache-key components of the stimulus
        (:func:`repro.core.sweep.pattern_stimulus` or
        :func:`repro.core.sweep.operand_stimulus`).
    config:
        Corner, mismatch model, sample count, variation seed and chunking.
    library:
        *Base* standard-cell library; the run shifts it to ``config.corner``
        before sampling local mismatch around the corner nominal.
    jobs:
        Worker processes; sample ranges shard across them.  ``1`` executes
        in-process.  Results are byte-identical for every value.
    store:
        Optional result store; completed ``(triad, range)`` entries are
        fetched from / persisted to it (warm reruns simulate nothing).
        Every completed range flushes immediately -- sharded or in-process
        -- so an interrupted run resumes warm.
    policy / chaos / report / shm:
        Fault-tolerance and stimulus-transport knobs of the shard engine,
        as in :func:`repro.core.sweep.run_characterization_sweep`.
        Sample-range shards are never split on retry (the range
        decomposition *is* the store-key layout), but all other recovery
        actions apply.

    Returns
    -------
    One :class:`~repro.variation.stats.TriadVariationResult` per triad, in
    grid order, each carrying the full per-sample arrays in absolute
    sample-index order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    with span("sweep", kind="montecarlo", jobs=jobs) as sweep_span:
        return _montecarlo_sweep_body(
            circuit,
            grid,
            in1,
            in2,
            stimulus,
            config=config,
            library=library,
            jobs=jobs,
            store=store,
            policy=policy,
            chaos=chaos,
            report=report,
            shm=shm,
            sweep_span=sweep_span,
        )


def _montecarlo_sweep_body(
    circuit: Any,
    grid: TriadGrid | Sequence[OperatingTriad],
    in1: np.ndarray,
    in2: np.ndarray,
    stimulus: Mapping[str, Any],
    *,
    config: MonteCarloConfig,
    library: StandardCellLibrary,
    jobs: int,
    store: SweepResultStore | None,
    policy: ExecutionPolicy | None,
    chaos: ChaosPlan | None,
    report: ExecutionReport | None,
    shm: bool | None,
    sweep_span: Any,
) -> list[TriadVariationResult]:
    """Body of :func:`run_montecarlo_sweep` under its ``sweep`` span."""
    in1_arr = np.asarray(in1, dtype=np.int64)
    in2_arr = np.asarray(in2, dtype=np.int64)
    triads = list(grid)
    if not triads:
        raise ValueError("the triad grid must not be empty")
    shifted = corner_library(config.corner, library)
    fingerprint = netlist_fingerprint(circuit.netlist)
    base_components: dict[str, Any] = {
        "scenario": "montecarlo",
        "engine_version": ENGINE_VERSION,
        "circuit": fingerprint,
        "circuit_name": circuit.name,
        "library": library_fingerprint(shifted),
        "stimulus": dict(stimulus),
        "corner": config.corner.value,
        "variation": config.key_components(),
    }
    n_vectors = int(in1_arr.size)
    ranges = config.sample_ranges()

    keys: dict[tuple[int, int], str] = {}
    payloads: dict[tuple[int, int], dict[str, Any]] = {}
    for range_index, (start, stop) in enumerate(ranges):
        for triad_index, triad in enumerate(triads):
            keys[(range_index, triad_index)] = SweepResultStore.entry_key(
                {
                    **base_components,
                    "triad": {
                        "tclk": triad.tclk,
                        "vdd": triad.vdd,
                        "vbb": triad.vbb,
                    },
                    "samples": {"start": start, "stop": stop},
                }
            )
    if store is not None:
        with span("store.lookup", requested=len(keys)) as lookup_span:
            cached_batch = store.get_many(list(keys.values()))
            for (range_index, triad_index), key in keys.items():
                start, stop = ranges[range_index]
                cached = cached_batch.get(key)
                if _payload_usable(cached, n_vectors, start, stop):
                    payloads[(range_index, triad_index)] = cached  # type: ignore[assignment]
            lookup_span.set(
                hits=len(payloads), misses=len(keys) - len(payloads)
            )

    missing = [
        range_index
        for range_index in range(len(ranges))
        if any(
            (range_index, triad_index) not in payloads
            for triad_index in range(len(triads))
        )
    ]
    sweep_span.set(
        units=len(keys),
        cached=len(payloads),
        simulated=len(missing) * len(triads),
    )
    if missing:
        record_simulated_units(len(missing) * len(triads))
        spec = verified_spec(circuit, fingerprint) if jobs > 1 else None
        if spec is not None and jobs > 1 and len(missing) > 1:
            bundle = share_arrays({"in1": in1_arr, "in2": in2_arr}, enabled=shm)
            trace_context = current_context()
            tasks = [
                _MonteCarloShard(
                    spec=spec,
                    library=shifted,
                    stimulus=bundle.ref,
                    triads=tuple((t.tclk, t.vdd, t.vbb) for t in triads),
                    model=config.model,
                    seed=config.seed,
                    start=ranges[range_index][0],
                    stop=ranges[range_index][1],
                    trace=trace_context,
                )
                for range_index in missing
            ]
            range_index_by_start = {
                ranges[range_index][0]: range_index for range_index in missing
            }

            def flush(task: _MonteCarloShard, result: list) -> None:
                if store is None:
                    return
                range_index = range_index_by_start[task.start]
                with span("store.flush", entries=len(result)):
                    for triad_index, payload in enumerate(result):
                        store.put(keys[(range_index, triad_index)], payload)

            range_payloads = run_shards(
                tasks,
                _run_montecarlo_shard,
                policy=policy,
                max_workers=min(jobs, len(tasks)),
                units=lambda task: len(task.triads),
                # No split: the sample-range decomposition is the store-key
                # layout, so a halved shard would store nothing reusable.
                split=None,
                validate=_validate_montecarlo_shard,
                on_result=flush,
                chaos=chaos,
                report=report,
                cleanup=bundle.unlink,
            )
            for range_index, payload_list in zip(missing, range_payloads):
                for triad_index, payload in enumerate(payload_list):
                    payloads[(range_index, triad_index)] = payload
        else:
            simulator = VosTimingSimulator(
                circuit.netlist,
                output_ports=circuit.output_ports(),
                library=shifted,
            )
            for range_index in missing:
                payload_list = _simulate_range(
                    circuit,
                    shifted,
                    triads,
                    in1_arr,
                    in2_arr,
                    config.model,
                    config.seed,
                    ranges[range_index][0],
                    ranges[range_index][1],
                    simulator=simulator,
                )
                for triad_index, payload in enumerate(payload_list):
                    payloads[(range_index, triad_index)] = payload
                if store is not None:
                    with span("store.flush", entries=len(payload_list)):
                        for triad_index in range(len(payload_list)):
                            store.put(
                                keys[(range_index, triad_index)],
                                payloads[(range_index, triad_index)],
                            )

    results: list[TriadVariationResult] = []
    for triad_index, triad in enumerate(triads):
        parts = [
            payloads[(range_index, triad_index)]
            for range_index in range(len(ranges))
        ]
        results.append(
            TriadVariationResult(
                triad=triad,
                n_vectors=n_vectors,
                ber_samples=np.concatenate(
                    [decode_float64_array(p["ber_samples"]) for p in parts]
                ),
                faulty_fraction_samples=np.concatenate(
                    [
                        decode_float64_array(p["faulty_fraction_samples"])
                        for p in parts
                    ]
                ),
                energy_samples=np.concatenate(
                    [decode_float64_array(p["energy_samples"]) for p in parts]
                ),
                static_energy_samples=np.concatenate(
                    [
                        decode_float64_array(p["static_energy_samples"])
                        for p in parts
                    ]
                ),
                dynamic_energy_per_operation=float(
                    parts[0]["dynamic_energy_per_operation"]
                ),
            )
        )
    return results
