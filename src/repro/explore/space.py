"""Declarative design spaces over operator configuration and triad ranges.

A *candidate* is one operator configuration: an adder architecture, an
operand bit-width, and optionally a carry-speculation window.  A *design
point* is a candidate evaluated at one operating triad; the triad axes are
part of the space too, either as the paper's matched Table III grid or as
dense clock-scale x supply x body-bias ranges beyond it.

The space is purely declarative: iteration order is deterministic, nothing
is simulated here.  Lowering a candidate to a circuit is
:func:`build_operator`; lowering the triad axes to a concrete grid (which
depends on the candidate's own critical path) is :meth:`TriadSpec.grid_for`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, Sequence

from repro.circuits.adders import (
    ADDER_GENERATORS,
    AdderCircuit,
    SPECULATIVE_ARCHITECTURE,
    build_adder,
    speculative_adder,
)
from repro.circuits.operators import OperatorSpec
from repro.core.characterization import CharacterizationFlow
from repro.core.triad import (
    PAPER_BODY_BIAS_VOLTAGES,
    PAPER_SUPPLY_VOLTAGES,
    TriadGrid,
)
from repro.technology.library import SUPPORTED_BODY_BIAS_RANGE

@dataclasses.dataclass(frozen=True, order=True)
class OperatorCandidate:
    """One operator configuration of the design space.

    Attributes
    ----------
    architecture:
        Adder architecture tag (``"rca"`` ... or ``"spa"`` for the
        speculative window-bounded family).
    width:
        Operand width in bits.
    window:
        Carry-speculation window; ``None`` for non-speculative candidates.
    """

    architecture: str
    width: int
    window: int | None = None

    def __post_init__(self) -> None:
        # Validation (including the spa<width>w<window> structural rules)
        # lives in one place: repro.circuits.operators.OperatorSpec.  The
        # validated spec is cached so the frequently read name/build
        # accessors do not re-validate.
        object.__setattr__(
            self,
            "_spec_cache",
            OperatorSpec(self.architecture, self.width, self.window),
        )

    def _spec(self) -> OperatorSpec:
        return self._spec_cache

    @property
    def name(self) -> str:
        """The candidate circuit's name (``"rca8"``, ``"spa16w4"`` ...)."""
        return self._spec().name

    def build(self) -> AdderCircuit:
        """Lower the candidate to its gate-level circuit."""
        return self._spec().build()


def build_operator(
    architecture: str, width: int, window: int | None = None
) -> AdderCircuit:
    """Build an operator circuit from its design-space coordinates."""
    if window is not None:
        return speculative_adder(width, window)
    return build_adder(architecture, width)


@dataclasses.dataclass(frozen=True)
class TriadSpec:
    """The triad axes of a design space.

    With ``clock_scales=None`` (the default) every candidate uses its
    benchmark's matched Table III grid
    (:meth:`repro.core.characterization.CharacterizationFlow.default_triad_grid`),
    which is exactly what ``repro characterize`` sweeps -- exploration and
    characterization then share warm result-store entries.

    With explicit ``clock_scales`` the grid is the dense Cartesian product of
    ``clock_scales`` (relative to the candidate's guard-banded critical path,
    so "0.7" means 30 % over-clocked for *every* candidate regardless of its
    absolute speed) with the supply and body-bias ranges.
    """

    clock_scales: tuple[float, ...] | None = None
    supply_voltages: tuple[float, ...] = PAPER_SUPPLY_VOLTAGES
    body_bias_voltages: tuple[float, ...] = PAPER_BODY_BIAS_VOLTAGES

    def __post_init__(self) -> None:
        if self.clock_scales is not None:
            if not self.clock_scales:
                raise ValueError("clock_scales must not be empty")
            if any(scale <= 0 for scale in self.clock_scales):
                raise ValueError("clock scales must be positive")
        if not self.supply_voltages or any(v <= 0 for v in self.supply_voltages):
            raise ValueError("supply_voltages must be positive and non-empty")
        if not self.body_bias_voltages:
            raise ValueError("body_bias_voltages must not be empty")
        low, high = SUPPORTED_BODY_BIAS_RANGE
        for vbb in self.body_bias_voltages:
            # Fail at declaration time with the same contract OperatingTriad
            # enforces, not deep inside the first candidate's grid.
            if not low <= vbb <= high:
                raise ValueError(
                    f"body bias {vbb:g} V is outside the library's supported "
                    f"range [{low:g}, {high:g}] V"
                )

    def grid_for(self, flow: CharacterizationFlow) -> TriadGrid:
        """Concrete triad grid of one candidate's characterization flow."""
        if self.clock_scales is None:
            return flow.default_triad_grid()
        critical_ns = flow.guard_banded_critical_path() * 1e9
        periods = tuple(
            round(critical_ns * scale, 4) for scale in sorted(set(self.clock_scales))
        )
        return TriadGrid.from_product(
            periods, self.supply_voltages, self.body_bias_voltages
        )


@dataclasses.dataclass(frozen=True)
class DesignSpace:
    """A declarative operator design space.

    The candidate set is the product ``architectures x widths`` for the
    non-speculative axis plus ``widths x speculation_windows`` for the
    speculative family (the window-bounded carry structure replaces the base
    prefix network, so speculative candidates collapse the architecture
    axis).  Windows that do not fit a width (``window >= width``) are
    skipped.

    Attributes
    ----------
    architectures:
        Adder architecture tags drawn from
        :data:`repro.circuits.adders.ADDER_GENERATORS`.
    widths:
        Operand widths (the paper uses 8/16; 32/64 stress the generators).
    speculation_windows:
        ``None`` entries select the plain architectures; integer entries add
        the speculative operator with that carry window.
    triads:
        The triad axes, shared by every candidate.
    """

    architectures: tuple[str, ...] = ("rca", "bka")
    widths: tuple[int, ...] = (8, 16)
    speculation_windows: tuple[int | None, ...] = (None,)
    triads: TriadSpec = dataclasses.field(default_factory=TriadSpec)

    def __post_init__(self) -> None:
        if not self.architectures:
            raise ValueError("architectures must not be empty")
        for architecture in self.architectures:
            if architecture not in ADDER_GENERATORS:
                raise ValueError(
                    f"unknown adder architecture {architecture!r}; "
                    f"available: {', '.join(sorted(ADDER_GENERATORS))}"
                )
        if not self.widths or any(width <= 0 for width in self.widths):
            raise ValueError("widths must be positive and non-empty")
        if not self.speculation_windows:
            raise ValueError("speculation_windows must not be empty")
        for window in self.speculation_windows:
            if window is not None and window <= 0:
                raise ValueError("speculation windows must be positive (or None)")

    def candidates(self) -> tuple[OperatorCandidate, ...]:
        """All candidates in deterministic (sorted, deduplicated) order."""
        seen: set[OperatorCandidate] = set()
        for architecture, width, window in itertools.product(
            sorted(set(self.architectures)),
            sorted(set(self.widths)),
            sorted(set(self.speculation_windows), key=lambda w: (w is not None, w or 0)),
        ):
            if window is None:
                seen.add(OperatorCandidate(architecture, width))
            elif window < width:
                seen.add(
                    OperatorCandidate(SPECULATIVE_ARCHITECTURE, width, window)
                )
        return tuple(sorted(seen))

    def skipped_windows(self) -> tuple[tuple[int, int], ...]:
        """``(width, window)`` pairs dropped because the window does not fit.

        Exposed so front-ends can tell the user which speculative
        configurations the declared axes did *not* produce instead of
        silently shrinking the space.
        """
        skipped = [
            (width, window)
            for width in sorted(set(self.widths))
            for window in sorted({w for w in self.speculation_windows if w})
            if window >= width
        ]
        return tuple(skipped)

    def __len__(self) -> int:
        return len(self.candidates())

    def __iter__(self) -> Iterator[OperatorCandidate]:
        return iter(self.candidates())

    @classmethod
    def table3_subspace(cls, triads: TriadSpec | None = None) -> "DesignSpace":
        """The paper's Table III configurations (RCA/BKA at 8 and 16 bits)."""
        return cls(
            architectures=("rca", "bka"),
            widths=(8, 16),
            speculation_windows=(None,),
            triads=triads or TriadSpec(),
        )

    @classmethod
    def from_axes(
        cls,
        architectures: Sequence[str],
        widths: Sequence[int],
        speculation_windows: Sequence[int | None] = (None,),
        triads: TriadSpec | None = None,
    ) -> "DesignSpace":
        """Convenience constructor from plain sequences (CLI entry point)."""
        return cls(
            architectures=tuple(architectures),
            widths=tuple(widths),
            speculation_windows=tuple(speculation_windows),
            triads=triads or TriadSpec(),
        )
